#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace appx::obs {

namespace {

// Stable per-thread stripe slot, shared by every Counter instance.
std::size_t thread_stripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void update_min(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void update_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- Counter --------------------------------------------------------------------------

void Counter::add(std::int64_t delta) {
  cells_[thread_stripe() % kStripes].v.fetch_add(delta, std::memory_order_relaxed);
}

std::int64_t Counter::value() const {
  std::int64_t total = 0;
  for (const Cell& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
  return total;
}

// --- Histogram ------------------------------------------------------------------------

std::size_t Histogram::bucket_index(std::int64_t value) {
  if (value < kSub) return value < 0 ? 0 : static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(value));
  const int octave = msb - kSubBits + 1;
  const std::int64_t sub = (value >> (msb - kSubBits)) & (kSub - 1);
  return static_cast<std::size_t>(octave) * kSub + static_cast<std::size_t>(sub);
}

std::pair<std::int64_t, std::int64_t> Histogram::bucket_bounds(std::size_t index) {
  if (index < static_cast<std::size_t>(kSub)) {
    const auto lo = static_cast<std::int64_t>(index);
    return {lo, lo + 1};
  }
  const int octave = static_cast<int>(index) / kSub;
  const std::int64_t sub = static_cast<std::int64_t>(index) % kSub;
  const std::int64_t width = std::int64_t{1} << (octave - 1);
  const std::int64_t lo = (kSub + sub) << (octave - 1);
  // The topmost bucket's upper bound would be 2^63; saturate instead.
  constexpr auto kMax = std::numeric_limits<std::int64_t>::max();
  const std::int64_t hi = (lo > kMax - width) ? kMax : lo + width;
  return {lo, hi};
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  update_min(min_, value);
  update_max(max_, value);
}

std::int64_t Histogram::min() const {
  const std::int64_t v = min_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::max() ? 0 : v;
}

std::int64_t Histogram::max() const {
  const std::int64_t v = max_.load(std::memory_order_relaxed);
  return v == std::numeric_limits<std::int64_t>::min() ? 0 : v;
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::int64_t Histogram::quantile(double q) const {
  // Snapshot the buckets once so the rank and the walk agree even while
  // other threads keep recording.
  std::array<std::uint64_t, kBucketCount> snap;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += snap[i];
    if (seen >= rank) {
      const auto [lo, hi] = bucket_bounds(i);
      return lo + (hi - lo) / 2;
    }
  }
  return max();
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n > 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  if (other.count() > 0) {
    update_min(min_, other.min());
    update_max(max_, other.max());
  }
}

// --- naming ---------------------------------------------------------------------------

namespace {

std::string escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Splits a stored name into (base, labels-without-braces).
std::pair<std::string_view, std::string_view> split_name(std::string_view full) {
  const auto brace = full.find('{');
  if (brace == std::string_view::npos) return {full, {}};
  std::string_view labels = full.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.remove_suffix(1);
  return {full.substr(0, brace), labels};
}

}  // namespace

std::string labeled(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  std::string out(name);
  out += '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += escape_label(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

// --- MetricsRegistry ------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

void MetricsRegistry::gauge_callback(std::string_view name,
                                     std::function<std::int64_t()> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  callbacks_.insert_or_assign(std::string(name), std::move(fn));
}

std::int64_t MetricsRegistry::counter_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second->value();
  const auto cb = callbacks_.find(name);
  return cb == callbacks_.end() ? 0 : cb->second();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  std::string_view last_base;

  const auto type_line = [&](std::string_view full, std::string_view type) {
    const auto [base, labels] = split_name(full);
    (void)labels;
    if (base != last_base) {
      out << "# TYPE " << base << ' ' << type << '\n';
      last_base = base;
    }
  };

  for (const auto& [name, counter] : counters_) {
    type_line(name, "counter");
    out << name << ' ' << counter->value() << '\n';
  }
  last_base = {};
  for (const auto& [name, gauge] : gauges_) {
    type_line(name, "gauge");
    out << name << ' ' << gauge->value() << '\n';
  }
  last_base = {};
  for (const auto& [name, fn] : callbacks_) {
    type_line(name, "gauge");
    out << name << ' ' << fn() << '\n';
  }
  last_base = {};
  for (const auto& [name, hist] : histograms_) {
    type_line(name, "summary");
    const auto [base, labels] = split_name(name);
    const auto with_quantile = [&, base = base, labels = labels](double q) {
      std::ostringstream n;
      n << base << '{' << labels << (labels.empty() ? "" : ",") << "quantile=\"" << q
        << "\"}";
      return n.str();
    };
    const auto suffixed = [&, base = base, labels = labels](std::string_view suffix) {
      std::ostringstream n;
      n << base << suffix;
      if (!labels.empty()) n << '{' << labels << '}';
      return n.str();
    };
    // 0.999 included: macro-scale latency gates key on p99.9 — the tail the
    // paper's user-perceived-latency goal actually lives in.
    for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
      out << with_quantile(q) << ' ' << hist->quantile(q) << '\n';
    }
    out << suffixed("_sum") << ' ' << hist->sum() << '\n';
    out << suffixed("_count") << ' ' << hist->count() << '\n';
  }
  return out.str();
}

json::Value MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  json::Object counters;
  for (const auto& [name, counter] : counters_) counters[name] = counter->value();
  json::Object gauges;
  for (const auto& [name, gauge] : gauges_) gauges[name] = gauge->value();
  for (const auto& [name, fn] : callbacks_) gauges[name] = fn();
  json::Object histograms;
  for (const auto& [name, hist] : histograms_) {
    json::Object h;
    h["count"] = hist->count();
    h["sum"] = hist->sum();
    h["min"] = hist->min();
    h["max"] = hist->max();
    h["mean"] = hist->mean();
    h["p50"] = hist->quantile(0.5);
    h["p90"] = hist->quantile(0.9);
    h["p95"] = hist->quantile(0.95);
    h["p99"] = hist->quantile(0.99);
    h["p999"] = hist->quantile(0.999);
    histograms[name] = std::move(h);
  }
  json::Object root;
  root["counters"] = std::move(counters);
  root["gauges"] = std::move(gauges);
  root["histograms"] = std::move(histograms);
  return json::Value(std::move(root));
}

}  // namespace appx::obs
