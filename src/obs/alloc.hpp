// Heap-allocation instrumentation for bench/test builds (DESIGN.md §5h).
//
// The counters here are always present (and cost nothing when unused); they
// only move when the replacement operator new/delete in obs/hook/
// alloc_hook.cpp is linked into the binary. bench_alloc and test_alloc link
// that hook to measure allocations/request on the serving data plane;
// production binaries never do.
//
// Counters are thread-local: a measurement loop reads its own thread's
// counts and is immune to allocator traffic on other threads.
#pragma once

#include <cstdint>

namespace appx::obs {

struct AllocCounters {
  std::uint64_t allocations = 0;  // operator new calls
  std::uint64_t bytes = 0;        // bytes requested from operator new
};

// Snapshot of the calling thread's counters since thread start.
AllocCounters thread_alloc_counters();

// True when the counting operator new/delete replacement is linked into this
// binary (and not compiled out by a sanitizer build). Callers should skip
// allocation assertions when false.
bool alloc_counting_active();

namespace detail {
// Written by the hook TU only; reads race nothing (thread-local).
extern thread_local AllocCounters t_alloc;
extern bool g_hook_active;
}  // namespace detail

}  // namespace appx::obs
