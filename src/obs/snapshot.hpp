// Observability: periodic snapshots to disk.
//
// A SnapshotWriter writes a byte blob to a path on a fixed cadence
// (write-to-temp + rename, so readers never observe a torn file). Two
// producers exist today: the original MetricsRegistry JSON dump (post-mortem
// analysis of a proxy that was never scraped), and the engine's binary
// learned-state snapshot (DESIGN.md §5k warm restart) — the latter plugs in
// through the generic producer constructor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace appx::obs {

class SnapshotWriter {
 public:
  // Bytes to persist. Runs on the writer's background thread (and inline from
  // write_now()); must be internally synchronised. May throw appx::Error — the
  // snapshot is skipped and a warning logged.
  using Producer = std::function<std::vector<std::uint8_t>()>;

  // Metrics mode: serialise `registry` to pretty JSON each interval.
  // `registry` must outlive the writer.
  SnapshotWriter(const MetricsRegistry* registry, std::string path, Duration interval);
  // Generic mode: persist whatever `producer` returns each interval.
  SnapshotWriter(Producer producer, std::string path, Duration interval);
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Write one snapshot now (also used by the background loop). Returns false
  // when the producer failed or the file could not be written.
  bool write_now();

  void stop();

  std::size_t snapshots_written() const { return written_.load(); }
  // Size of the last successfully written snapshot (0 before the first).
  std::size_t last_bytes() const { return last_bytes_.load(); }
  const std::string& path() const { return path_; }

 private:
  void run();

  Producer producer_;
  const std::string path_;
  const Duration interval_;
  std::atomic<std::size_t> written_{0};
  std::atomic<std::size_t> last_bytes_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace appx::obs
