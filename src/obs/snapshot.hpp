// Observability: periodic metrics snapshots to disk.
//
// A SnapshotWriter serialises a MetricsRegistry to JSON on a fixed cadence
// (write-to-temp + rename, so readers never observe a torn file). Useful for
// post-mortem analysis of a proxy that was never scraped, and as the
// file-based sibling of the /appx/metrics endpoint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace appx::obs {

class SnapshotWriter {
 public:
  // `registry` must outlive the writer. Starts the background thread
  // immediately; the first snapshot is written after `interval`.
  SnapshotWriter(const MetricsRegistry* registry, std::string path, Duration interval);
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Write one snapshot now (also used by the background loop). Returns false
  // when the file could not be written.
  bool write_now();

  void stop();

  std::size_t snapshots_written() const { return written_.load(); }
  const std::string& path() const { return path_; }

 private:
  void run();

  const MetricsRegistry* registry_;
  const std::string path_;
  const Duration interval_;
  std::atomic<std::size_t> written_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace appx::obs
