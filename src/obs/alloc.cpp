#include "obs/alloc.hpp"

namespace appx::obs {

namespace detail {
thread_local AllocCounters t_alloc;
bool g_hook_active = false;
}  // namespace detail

AllocCounters thread_alloc_counters() { return detail::t_alloc; }

bool alloc_counting_active() { return detail::g_hook_active; }

}  // namespace appx::obs
