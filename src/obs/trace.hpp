// Observability: lightweight per-request lifecycle tracing.
//
// A RequestTrace records the spans of one proxied transaction — receive →
// signature match + cache lookup → forward or serve → respond — plus the
// background prefetch fetches the live proxy issues. Completed traces land
// in a bounded ring buffer (oldest evicted first), dumpable as JSON from the
// /appx/trace admin endpoint. Recording is mutex-guarded and happens once
// per request, off the byte-level hot path.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/units.hpp"

namespace appx::obs {

struct TraceSpan {
  std::string name;      // "decide", "upstream", "learn", "respond", ...
  SimTime start_us = 0;  // on the owner's monotonic clock
  SimTime end_us = 0;
  std::string detail;    // optional annotation ("hit", "status 504", ...)

  json::Value to_json() const;
};

struct RequestTrace {
  std::uint64_t id = 0;  // assigned by the ring on push
  std::string user;
  std::string method;
  std::string target;     // host + path of the traced request
  std::string outcome;    // "hit" | "miss" | "prefetch" | "admin" | "error"
  SimTime start_us = 0;
  SimTime end_us = 0;
  std::vector<TraceSpan> spans;

  // Convenience: append a span covering [start, end].
  void add_span(std::string name, SimTime start_us_, SimTime end_us_,
                std::string detail = {});

  json::Value to_json() const;
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 256);

  // Stamps the trace with the next id and appends it; evicts the oldest
  // trace when full. Returns the assigned id.
  std::uint64_t push(RequestTrace trace);

  std::vector<RequestTrace> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  // Total traces ever pushed (>= size()).
  std::uint64_t recorded() const;

  // {"capacity": N, "recorded": M, "traces": [...]}
  json::Value to_json() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 1;
  std::uint64_t recorded_ = 0;
  std::deque<RequestTrace> ring_;  // back = newest
};

}  // namespace appx::obs
