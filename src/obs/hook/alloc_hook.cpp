// Replacement global operator new/delete that counts allocations into
// obs::thread_alloc_counters(). Linked ONLY into measurement binaries
// (bench_alloc, test_alloc) via the appx::alloc_hook object library — never
// into the production libraries.
//
// Compiled out under ASan/TSan: the sanitizer runtimes install their own
// allocator interceptors, and replacing operator new underneath them would
// bypass their bookkeeping. alloc_counting_active() stays false there and
// measurement code skips its assertions.
#include "obs/alloc.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define APPX_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define APPX_ALLOC_HOOK_DISABLED 1
#endif
#endif

#ifndef APPX_ALLOC_HOOK_DISABLED

#include <cstdlib>
#include <new>

namespace {

void* counted_alloc(std::size_t n) {
  ++appx::obs::detail::t_alloc.allocations;
  appx::obs::detail::t_alloc.bytes += n;
  // malloc(0) may return null; operator new must not.
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  ++appx::obs::detail::t_alloc.allocations;
  appx::obs::detail::t_alloc.bytes += n;
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, n == 0 ? 1 : n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

const bool g_activated = [] {
  appx::obs::detail::g_hook_active = true;
  return true;
}();

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t n, std::align_val_t align) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t n, std::align_val_t align) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // APPX_ALLOC_HOOK_DISABLED
