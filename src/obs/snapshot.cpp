#include "obs/snapshot.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::obs {

namespace {

SnapshotWriter::Producer metrics_producer(const MetricsRegistry* registry) {
  if (registry == nullptr) throw InvalidArgumentError("SnapshotWriter: null registry");
  return [registry] {
    const std::string text = registry->to_json().dump(2) + '\n';
    return std::vector<std::uint8_t>(text.begin(), text.end());
  };
}

}  // namespace

SnapshotWriter::SnapshotWriter(const MetricsRegistry* registry, std::string path,
                               Duration interval)
    : SnapshotWriter(metrics_producer(registry), std::move(path), interval) {}

SnapshotWriter::SnapshotWriter(Producer producer, std::string path, Duration interval)
    : producer_(std::move(producer)), path_(std::move(path)), interval_(interval) {
  if (!producer_) throw InvalidArgumentError("SnapshotWriter: null producer");
  if (path_.empty()) throw InvalidArgumentError("SnapshotWriter: empty path");
  if (interval_ <= 0) throw InvalidArgumentError("SnapshotWriter: non-positive interval");
  thread_ = std::thread([this] { run(); });
}

SnapshotWriter::~SnapshotWriter() { stop(); }

void SnapshotWriter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool SnapshotWriter::write_now() {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = producer_();
  } catch (const Error& e) {
    log_warn("obs.snapshot") << "producer failed for " << path_ << ": " << e.what();
    return false;
  }
  const std::string temp = path_ + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      log_warn("obs.snapshot") << "cannot open " << temp;
      return false;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      log_warn("obs.snapshot") << "short write to " << temp;
      return false;
    }
  }
  if (std::rename(temp.c_str(), path_.c_str()) != 0) {
    log_warn("obs.snapshot") << "rename " << temp << " -> " << path_ << " failed";
    return false;
  }
  last_bytes_.store(bytes.size());
  ++written_;
  return true;
}

void SnapshotWriter::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, std::chrono::microseconds(interval_),
                     [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    write_now();
    lock.lock();
  }
}

}  // namespace appx::obs
