#include "obs/trace.hpp"

#include <algorithm>
#include <utility>

namespace appx::obs {

json::Value TraceSpan::to_json() const {
  json::Object out;
  out["name"] = name;
  out["start_us"] = start_us;
  out["end_us"] = end_us;
  out["duration_us"] = end_us - start_us;
  if (!detail.empty()) out["detail"] = detail;
  return json::Value(std::move(out));
}

void RequestTrace::add_span(std::string name, SimTime start_us_, SimTime end_us_,
                            std::string detail) {
  spans.push_back(TraceSpan{std::move(name), start_us_, end_us_, std::move(detail)});
}

json::Value RequestTrace::to_json() const {
  json::Object out;
  out["id"] = static_cast<std::int64_t>(id);
  out["user"] = user;
  out["method"] = method;
  out["target"] = target;
  out["outcome"] = outcome;
  out["start_us"] = start_us;
  out["end_us"] = end_us;
  out["duration_us"] = end_us - start_us;
  json::Array span_array;
  span_array.reserve(spans.size());
  for (const TraceSpan& span : spans) span_array.push_back(span.to_json());
  out["spans"] = std::move(span_array);
  return json::Value(std::move(out));
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::uint64_t TraceRing::push(RequestTrace trace) {
  const std::lock_guard<std::mutex> lock(mutex_);
  trace.id = next_id_++;
  ++recorded_;
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
  return next_id_ - 1;
}

std::vector<RequestTrace> TraceRing::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::size_t TraceRing::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t TraceRing::recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

json::Value TraceRing::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  json::Object out;
  out["capacity"] = static_cast<std::int64_t>(capacity_);
  out["recorded"] = static_cast<std::int64_t>(recorded_);
  json::Array traces;
  traces.reserve(ring_.size());
  for (const RequestTrace& trace : ring_) traces.push_back(trace.to_json());
  out["traces"] = std::move(traces);
  return json::Value(std::move(out));
}

}  // namespace appx::obs
