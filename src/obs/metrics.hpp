// Observability: thread-safe metrics registry (paper §6 methodology).
//
// The paper's evaluation is distributional — per-transaction latency CDFs
// (Fig. 13–15), hit ratios (Table 2), data usage (Table 3) — so the runtime
// needs first-class counters, gauges and latency histograms, scrapeable from
// a live proxy. This module provides:
//
//   * Counter   — monotonic, lock-free; increments land on striped cells
//                 (one per thread slot) so concurrent hot paths never share
//                 a cache line. value() sums the stripes.
//   * Gauge     — a settable/delta-updated level (cache entries, queue depth).
//   * Histogram — fixed-memory log-linear buckets: 16 linear sub-buckets per
//                 power-of-two octave, so any recorded value lands in a
//                 bucket whose width is at most 1/16 of its lower bound
//                 (quantile estimates carry ≤ 6.25% relative error). All
//                 updates are relaxed atomics; record() is a handful of bit
//                 ops plus four uncontended atomic RMWs. Histograms merge.
//   * MetricsRegistry — named metrics with stable addresses; callers resolve
//                 a metric once and keep the pointer (the hot path never
//                 touches the registry lock). Exports Prometheus text
//                 (histograms as quantile summaries) and JSON.
//
// Naming scheme (DESIGN.md §5e): appx_<subsystem>_<what>[_total|_us|_bytes],
// labels rendered into the stored name via labeled(): name{k="v",...}.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/json.hpp"

namespace appx::obs {

class Counter {
 public:
  void add(std::int64_t delta = 1);
  void inc() { add(1); }
  std::int64_t value() const;

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  static constexpr std::size_t kStripes = 8;
  std::array<Cell, kStripes> cells_;
};

class Gauge {
 public:
  void set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(std::int64_t delta) { add(-delta); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Log-linear histogram over non-negative int64 values (negative values are
// clamped to 0). Unit-agnostic; the proxy records microseconds.
class Histogram {
 public:
  static constexpr int kSubBits = 4;             // 16 sub-buckets per octave
  static constexpr std::int64_t kSub = 1 << kSubBits;
  // Values 0..15 map to buckets 0..15; each further octave [2^n, 2^(n+1))
  // adds 16 buckets. 63-bit values end at octave 59.
  static constexpr std::size_t kBucketCount = 960;

  void record(std::int64_t value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const;  // 0 when empty
  std::int64_t max() const;  // 0 when empty
  double mean() const;

  // q in [0,1]. Returns the midpoint of the bucket holding the q-th order
  // statistic: exact for values < 16, ≤ 6.25% relative error beyond.
  std::int64_t quantile(double q) const;

  // Adds `other`'s recordings into this histogram (bucket-exact).
  void merge(const Histogram& other);

  // Bucket geometry (exposed for property tests).
  static std::size_t bucket_index(std::int64_t value);
  // [lo, hi) of bucket `index`.
  static std::pair<std::int64_t, std::int64_t> bucket_bounds(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

// "name" + labels -> `name{k1="v1",k2="v2"}` with Prometheus label escaping.
using Labels = std::vector<std::pair<std::string, std::string>>;
std::string labeled(std::string_view name, const Labels& labels);

class MetricsRegistry {
 public:
  // Resolve-or-create by full (possibly labeled) name. Returned references
  // are stable for the registry's lifetime; resolve once, keep the pointer.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // A gauge whose value is sampled at export time (for monotonic state that
  // already lives in someone else's atomics, e.g. the signature index).
  // The callback must stay valid for the registry's lifetime and must be
  // safe to call from any thread.
  void gauge_callback(std::string_view name, std::function<std::int64_t()> fn);

  // Test/tooling reads; 0 / nullptr when the metric does not exist.
  std::int64_t counter_value(std::string_view name) const;
  std::int64_t gauge_value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Prometheus text exposition (counters/gauges verbatim, histograms as
  // quantile summaries with _sum/_count).
  std::string to_prometheus() const;
  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  //  min, max, mean, p50, p90, p95, p99}}}
  json::Value to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::function<std::int64_t()>, std::less<>> callbacks_;
};

}  // namespace appx::obs
