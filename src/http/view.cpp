#include "http/view.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::http {

namespace strings = appx::strings;

std::optional<std::string_view> RequestView::header(std::string_view name) const {
  for (std::size_t i = 0; i < header_count; ++i) {
    if (strings::iequals(headers[i].name, name)) return headers[i].value;
  }
  return std::nullopt;
}

RequestView parse_request_view(std::string_view wire, util::Arena& arena) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    throw ParseError("http request: missing header terminator");
  }
  const std::string_view head = wire.substr(0, head_end);
  RequestView out;
  out.body = wire.substr(head_end + 4);

  // Request line: method SP target SP version, exactly two spaces.
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      head.substr(0, line_end == std::string_view::npos ? head.size() : line_end);
  if (request_line.empty()) throw ParseError("http request: empty start line");
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    throw ParseError("http request: bad request line");
  }
  out.method = request_line.substr(0, sp1);
  out.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = request_line.substr(sp2 + 1);
  if (!strings::starts_with(out.version, "HTTP/")) {
    throw ParseError("http request: bad version '" + std::string(out.version) + "'");
  }

  // Header lines: count, then fill an arena array (no reallocation).
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{} : head.substr(line_end + 2);
  std::size_t count = 0;
  for (std::string_view scan = rest; !scan.empty();) {
    const std::size_t eol = scan.find("\r\n");
    ++count;
    scan = eol == std::string_view::npos ? std::string_view{} : scan.substr(eol + 2);
  }
  HeaderView* headers = count == 0 ? nullptr : arena.alloc_array<HeaderView>(count);
  std::size_t filled = 0;
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    const std::string_view line =
        rest.substr(0, eol == std::string_view::npos ? rest.size() : eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError("http request: malformed header line '" + std::string(line) + "'");
    }
    headers[filled].name = strings::trim(line.substr(0, colon));
    headers[filled].value = strings::trim(line.substr(colon + 1));
    ++filled;
  }
  out.headers = headers;
  out.header_count = filled;
  return out;
}

void materialize(const RequestView& view, Request& out) {
  out.method.assign(view.method);
  Uri::parse_into(view.target, out.uri);

  // Host-header promotion (origin-form targets carry no authority).
  if (out.uri.host.empty()) {
    if (const auto host = view.header("Host")) {
      const std::size_t colon = host->rfind(':');
      if (colon != std::string_view::npos && strings::to_int(host->substr(colon + 1))) {
        out.uri.host.clear();
        strings::to_lower_into(host->substr(0, colon), out.uri.host);
        out.uri.port = static_cast<int>(*strings::to_int(host->substr(colon + 1)));
      } else {
        out.uri.host.clear();
        strings::to_lower_into(*host, out.uri.host);
      }
    }
  }

  // Headers minus the wire-framing fields (Host promoted above,
  // Content-Length re-derived from the body on serialization), assigned into
  // reused slots.
  std::size_t slot = 0;
  for (std::size_t i = 0; i < view.header_count; ++i) {
    const HeaderView& h = view.headers[i];
    if (strings::iequals(h.name, "Host") || strings::iequals(h.name, "Content-Length")) {
      continue;
    }
    out.headers.set_slot(slot++, h.name, h.value);
  }
  out.headers.truncate(slot);

  out.body.assign(view.body);
}

}  // namespace appx::http
