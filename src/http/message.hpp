// HTTP/1.1 message model: headers, requests, responses, wire formats.
//
// Messages carry an optional `opaque_payload` byte count in addition to the
// textual body. Large static objects (product images, ~315 KB in the paper's
// Wish workload) are simulated: the simulator charges their bandwidth cost
// without materialising the bytes. The wire format encodes the count in an
// "X-Appx-Opaque-Bytes" header so parse/serialize round-trips.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "http/uri.hpp"
#include "util/units.hpp"

namespace appx::http {

// Case-insensitive header map preserving insertion order. Duplicate names
// are allowed (the paper's add_header policy can add repeated fields).
class Headers {
 public:
  void set(std::string_view name, std::string_view value);  // replace-or-insert
  void add(std::string_view name, std::string_view value);  // always append
  std::optional<std::string> get(std::string_view name) const;
  std::vector<std::string> get_all(std::string_view name) const;
  bool has(std::string_view name) const;
  void remove(std::string_view name);
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& items() const { return items_; }

  bool operator==(const Headers& other) const { return items_ == other.items_; }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

// Ordered key/value pairs of an application/x-www-form-urlencoded body.
// Repeated keys (e.g. Wish's "_cap[]" fields, Fig. 5) are preserved.
using FormFields = std::vector<std::pair<std::string, std::string>>;

FormFields parse_form(std::string_view body);
std::string serialize_form(const FormFields& fields);

struct Request {
  std::string method = "GET";
  Uri uri;
  Headers headers;
  std::string body;

  // Full request line + headers + body in HTTP/1.1 wire form.
  std::string serialize() const;
  // The wire head only: request line + headers + blank line. The message on
  // the wire is serialize_head() followed by `body`; writers batch the two
  // as one iovec instead of concatenating (no body copy).
  std::string serialize_head() const;
  static Request parse(std::string_view wire);

  // Total simulated size on the wire.
  Bytes wire_size() const;

  FormFields form_fields() const { return parse_form(body); }
  void set_form_fields(const FormFields& fields);

  // Canonical identity used for exact-match serving (paper §4.5: "URI, query
  // string, header, and body"). Headers listed in `ignored_headers` (the
  // proxy's own add_header marks) are excluded; header order is normalised.
  std::string cache_key(const std::vector<std::string>& ignored_headers = {}) const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  std::string body;
  // Simulated extra payload bytes (images/video stills); charged to the
  // network but not materialised.
  Bytes opaque_payload = 0;

  bool ok() const { return status >= 200 && status < 300; }

  std::string serialize() const;
  // Status line + headers + blank line; the full message is this + `body`.
  std::string serialize_head() const;
  static Response parse(std::string_view wire);

  Bytes wire_size() const;
};

// Standard reason phrase for a status code ("OK", "Not Found", ...).
std::string_view reason_phrase(int status);

}  // namespace appx::http
