// HTTP/1.1 message model: headers, requests, responses, wire formats.
//
// Messages carry an optional `opaque_payload` byte count in addition to the
// textual body. Large static objects (product images, ~315 KB in the paper's
// Wish workload) are simulated: the simulator charges their bandwidth cost
// without materialising the bytes. The wire format encodes the count in an
// "X-Appx-Opaque-Bytes" header so parse/serialize round-trips.
//
// Allocation discipline (DESIGN.md §5h): response bodies are refcounted
// immutable BodySlabs, so caching, queueing and serving a response never
// copies the payload. The _into serializers append into caller-owned buffers
// that hot paths reuse across requests; the string-returning forms remain as
// conveniences built on top of them.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "http/slab.hpp"
#include "http/uri.hpp"
#include "util/units.hpp"

namespace appx::http {

// One header as a pair of views over externally owned bytes (the parser's
// pinned connection buffer, or another message's storage).
struct HeaderView {
  std::string_view name;
  std::string_view value;
};

// Case-insensitive header map preserving insertion order. Duplicate names
// are allowed (the paper's add_header policy can add repeated fields).
class Headers {
 public:
  void set(std::string_view name, std::string_view value);  // replace-or-insert
  void add(std::string_view name, std::string_view value);  // always append
  std::optional<std::string> get(std::string_view name) const;
  // View form for hot paths: no copy; the view lives as long as the entry.
  std::optional<std::string_view> get_view(std::string_view name) const;
  std::vector<std::string> get_all(std::string_view name) const;
  bool has(std::string_view name) const;
  void remove(std::string_view name);
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<std::pair<std::string, std::string>>& items() const { return items_; }

  // Capacity-reusing bulk assignment (the zero-alloc materialize path):
  // overwrite slot `i` in place — extending by one when i == size() — then
  // truncate to the slots written. Existing string capacity is retained, so
  // steady-state keep-alive traffic assigns headers without allocating.
  void set_slot(std::size_t i, std::string_view name, std::string_view value);
  void truncate(std::size_t n);

  bool operator==(const Headers& other) const { return items_ == other.items_; }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

// Ordered key/value pairs of an application/x-www-form-urlencoded body.
// Repeated keys (e.g. Wish's "_cap[]" fields, Fig. 5) are preserved.
using FormFields = std::vector<std::pair<std::string, std::string>>;

FormFields parse_form(std::string_view body);
std::string serialize_form(const FormFields& fields);

struct Request {
  std::string method = "GET";
  Uri uri;
  Headers headers;
  std::string body;

  // Full request line + headers + body in HTTP/1.1 wire form.
  std::string serialize() const;
  // The wire head only: request line + headers + blank line. The message on
  // the wire is serialize_head() followed by `body`; writers batch the two
  // as one iovec instead of concatenating (no body copy).
  std::string serialize_head() const;
  // Append the head into a reused buffer (no per-message string).
  void serialize_head_into(std::string& out) const;
  static Request parse(std::string_view wire);

  // Total simulated size on the wire.
  Bytes wire_size() const;

  FormFields form_fields() const { return parse_form(body); }
  void set_form_fields(const FormFields& fields);

  // Canonical identity used for exact-match serving (paper §4.5: "URI, query
  // string, header, and body"). Headers listed in `ignored_headers` (the
  // proxy's own add_header marks) are excluded; header order is normalised.
  std::string cache_key(const std::vector<std::string>& ignored_headers = {}) const;
  // Same bytes appended into a reused buffer (out is cleared first); the
  // hit path renders its lookup key with zero allocations.
  void cache_key_into(std::string& out,
                      const std::vector<std::string>& ignored_headers = {}) const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  // Refcounted immutable payload: assigning rebinds the slab; copying a
  // Response shares the bytes.
  BodySlab body;
  // Simulated extra payload bytes (images/video stills); charged to the
  // network but not materialised.
  Bytes opaque_payload = 0;

  bool ok() const { return status >= 200 && status < 300; }

  std::string serialize() const;
  // Status line + headers + blank line; the full message is this + `body`.
  std::string serialize_head() const;
  // Append the head into a reused buffer. `extra_header_line`, when
  // non-empty, is a complete "Name: value" line emitted after the stored
  // headers — the live proxy stamps "X-Appx-Cache: hit" on shared cached
  // responses this way instead of copying the message to mutate it.
  void serialize_head_into(std::string& out, std::string_view extra_header_line = {}) const;
  static Response parse(std::string_view wire);

  Bytes wire_size() const;
};

// Standard reason phrase for a status code ("OK", "Not Found", ...).
std::string_view reason_phrase(int status);

}  // namespace appx::http
