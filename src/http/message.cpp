#include "http/message.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::http {

namespace strings = appx::strings;

namespace {
constexpr std::string_view kOpaqueHeader = "X-Appx-Opaque-Bytes";
}

// --- Headers -----------------------------------------------------------------

void Headers::set(std::string_view name, std::string_view value) {
  for (auto& [k, v] : items_) {
    if (strings::iequals(k, name)) {
      v = std::string(value);
      return;
    }
  }
  items_.emplace_back(std::string(name), std::string(value));
}

void Headers::add(std::string_view name, std::string_view value) {
  items_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [k, v] : items_) {
    if (strings::iequals(k, name)) return v;
  }
  return std::nullopt;
}

std::vector<std::string> Headers::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : items_) {
    if (strings::iequals(k, name)) out.push_back(v);
  }
  return out;
}

bool Headers::has(std::string_view name) const { return get(name).has_value(); }

void Headers::remove(std::string_view name) {
  std::erase_if(items_, [&](const auto& kv) { return strings::iequals(kv.first, name); });
}

// --- form bodies --------------------------------------------------------------

FormFields parse_form(std::string_view body) {
  FormFields out;
  if (body.empty()) return out;
  for (const std::string& pair : strings::split(body, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(strings::url_decode(pair), "");
    } else {
      out.emplace_back(strings::url_decode(pair.substr(0, eq)),
                       strings::url_decode(pair.substr(eq + 1)));
    }
  }
  return out;
}

std::string serialize_form(const FormFields& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += '&';
    out += strings::url_encode(fields[i].first);
    out += '=';
    out += strings::url_encode(fields[i].second);
  }
  return out;
}

// --- wire helpers --------------------------------------------------------------

namespace {

struct WireHead {
  std::string start_line;
  Headers headers;
  std::string body;
};

WireHead parse_head(std::string_view wire, const char* what) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    throw ParseError(std::string(what) + ": missing header terminator");
  }
  WireHead out;
  const std::string_view head = wire.substr(0, head_end);
  out.body = std::string(wire.substr(head_end + 4));

  const auto lines = strings::split(head, "\r\n");
  if (lines.empty() || lines[0].empty()) {
    throw ParseError(std::string(what) + ": empty start line");
  }
  out.start_line = lines[0];
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      throw ParseError(std::string(what) + ": malformed header line '" + line + "'");
    }
    out.headers.add(strings::trim(line.substr(0, colon)), strings::trim(line.substr(colon + 1)));
  }
  return out;
}

void write_headers(const Headers& headers, std::string& out) {
  for (const auto& [k, v] : headers.items()) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
}

}  // namespace

// --- Request -------------------------------------------------------------------

std::string Request::serialize_head() const {
  std::string out = method;
  out += ' ';
  out += uri.path_and_query();
  out += " HTTP/1.1\r\n";
  if (!uri.host.empty() && !headers.has("Host")) {
    out += "Host: " + uri.host_port() + "\r\n";  // Host goes first per convention
  }
  write_headers(headers, out);
  if (!body.empty() && !headers.has("Content-Length")) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string Request::serialize() const {
  std::string out = serialize_head();
  out += body;
  return out;
}

Request Request::parse(std::string_view wire) {
  WireHead head = parse_head(wire, "http request");
  const auto parts = strings::split(head.start_line, ' ');
  if (parts.size() != 3) throw ParseError("http request: bad request line");
  if (!strings::starts_with(parts[2], "HTTP/")) {
    throw ParseError("http request: bad version '" + parts[2] + "'");
  }
  Request req;
  req.method = parts[0];
  req.uri = Uri::parse(parts[1]);
  if (req.uri.host.empty()) {
    if (const auto host = head.headers.get("Host")) {
      const auto colon = host->rfind(':');
      if (colon != std::string::npos && strings::to_int(host->substr(colon + 1))) {
        req.uri.host = strings::to_lower(host->substr(0, colon));
        req.uri.port = static_cast<int>(*strings::to_int(host->substr(colon + 1)));
      } else {
        req.uri.host = strings::to_lower(*host);
      }
    }
  }
  head.headers.remove("Host");
  head.headers.remove("Content-Length");
  req.headers = std::move(head.headers);
  req.body = std::move(head.body);
  return req;
}

Bytes Request::wire_size() const { return static_cast<Bytes>(serialize().size()); }

void Request::set_form_fields(const FormFields& fields) {
  body = serialize_form(fields);
  if (!headers.has("Content-Type")) {
    headers.set("Content-Type", "application/x-www-form-urlencoded");
  }
}

std::string Request::cache_key(const std::vector<std::string>& ignored_headers) const {
  std::string key = method;
  key += ' ';
  key += uri.serialize();
  key += '\n';
  std::vector<std::string> lines;
  for (const auto& [k, v] : headers.items()) {
    const bool ignored =
        std::any_of(ignored_headers.begin(), ignored_headers.end(),
                    [&, &name = k](const std::string& ig) { return strings::iequals(ig, name); });
    if (ignored) continue;
    lines.push_back(strings::to_lower(k) + ":" + v);
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) {
    key += line;
    key += '\n';
  }
  key += body;
  return key;
}

// --- Response ------------------------------------------------------------------

std::string Response::serialize_head() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  write_headers(headers, out);
  if (!body.empty() && !headers.has("Content-Length")) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  if (opaque_payload > 0) {
    out += std::string(kOpaqueHeader) + ": " + std::to_string(opaque_payload) + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string Response::serialize() const {
  std::string out = serialize_head();
  out += body;
  return out;
}

Response Response::parse(std::string_view wire) {
  WireHead head = parse_head(wire, "http response");
  // Status line: HTTP/1.1 SP code SP reason (reason may contain spaces).
  const std::string& line = head.start_line;
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || !strings::starts_with(line, "HTTP/")) {
    throw ParseError("http response: bad status line");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view code =
      std::string_view(line).substr(sp1 + 1, (sp2 == std::string::npos ? line.size() : sp2) - sp1 - 1);
  const auto status = strings::to_int(code);
  if (!status || *status < 100 || *status > 599) {
    throw ParseError("http response: bad status code");
  }
  Response resp;
  resp.status = static_cast<int>(*status);
  resp.reason = (sp2 == std::string::npos) ? std::string(reason_phrase(resp.status))
                                           : line.substr(sp2 + 1);
  if (const auto opaque = head.headers.get(kOpaqueHeader)) {
    const auto n = strings::to_int(*opaque);
    if (!n || *n < 0) throw ParseError("http response: bad opaque byte count");
    resp.opaque_payload = *n;
    head.headers.remove(kOpaqueHeader);
  }
  head.headers.remove("Content-Length");
  resp.headers = std::move(head.headers);
  resp.body = std::move(head.body);
  return resp;
}

Bytes Response::wire_size() const {
  return static_cast<Bytes>(serialize().size()) + opaque_payload;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace appx::http
