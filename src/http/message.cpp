#include "http/message.hpp"

#include <algorithm>

#include "http/view.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::http {

namespace strings = appx::strings;

namespace {
constexpr std::string_view kOpaqueHeader = "X-Appx-Opaque-Bytes";
}

// --- Headers -----------------------------------------------------------------

void Headers::set(std::string_view name, std::string_view value) {
  for (auto& [k, v] : items_) {
    if (strings::iequals(k, name)) {
      v = std::string(value);
      return;
    }
  }
  items_.emplace_back(std::string(name), std::string(value));
}

void Headers::add(std::string_view name, std::string_view value) {
  items_.emplace_back(std::string(name), std::string(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [k, v] : items_) {
    if (strings::iequals(k, name)) return v;
  }
  return std::nullopt;
}

std::optional<std::string_view> Headers::get_view(std::string_view name) const {
  for (const auto& [k, v] : items_) {
    if (strings::iequals(k, name)) return std::string_view(v);
  }
  return std::nullopt;
}

std::vector<std::string> Headers::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : items_) {
    if (strings::iequals(k, name)) out.push_back(v);
  }
  return out;
}

bool Headers::has(std::string_view name) const { return get_view(name).has_value(); }

void Headers::remove(std::string_view name) {
  std::erase_if(items_, [&](const auto& kv) { return strings::iequals(kv.first, name); });
}

void Headers::set_slot(std::size_t i, std::string_view name, std::string_view value) {
  if (i < items_.size()) {
    items_[i].first.assign(name);
    items_[i].second.assign(value);
  } else {
    items_.emplace_back(std::string(name), std::string(value));
  }
}

void Headers::truncate(std::size_t n) {
  if (n < items_.size()) items_.resize(n);
}

// --- form bodies --------------------------------------------------------------

FormFields parse_form(std::string_view body) {
  FormFields out;
  if (body.empty()) return out;
  for (const std::string& pair : strings::split(body, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(strings::url_decode(pair), "");
    } else {
      out.emplace_back(strings::url_decode(pair.substr(0, eq)),
                       strings::url_decode(pair.substr(eq + 1)));
    }
  }
  return out;
}

std::string serialize_form(const FormFields& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += '&';
    out += strings::url_encode(fields[i].first);
    out += '=';
    out += strings::url_encode(fields[i].second);
  }
  return out;
}

// --- wire helpers --------------------------------------------------------------

namespace {

struct WireHead {
  std::string_view start_line;
  Headers headers;
  std::string body;
};

// View-based head parsing: header names/values are copied only when stored
// into the owning Headers map, never into intermediate line strings.
WireHead parse_head(std::string_view wire, const char* what) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    throw ParseError(std::string(what) + ": missing header terminator");
  }
  WireHead out;
  const std::string_view head = wire.substr(0, head_end);
  out.body = std::string(wire.substr(head_end + 4));

  const std::size_t line_end = head.find("\r\n");
  out.start_line = head.substr(0, line_end == std::string_view::npos ? head.size() : line_end);
  if (out.start_line.empty()) {
    throw ParseError(std::string(what) + ": empty start line");
  }
  std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{} : head.substr(line_end + 2);
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    const std::string_view line =
        rest.substr(0, eol == std::string_view::npos ? rest.size() : eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw ParseError(std::string(what) + ": malformed header line '" + std::string(line) +
                       "'");
    }
    out.headers.add(strings::trim(line.substr(0, colon)), strings::trim(line.substr(colon + 1)));
  }
  return out;
}

void write_headers(const Headers& headers, std::string& out) {
  for (const auto& [k, v] : headers.items()) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
}

}  // namespace

// --- Request -------------------------------------------------------------------

void Request::serialize_head_into(std::string& out) const {
  out += method;
  out += ' ';
  uri.path_and_query_into(out);
  out += " HTTP/1.1\r\n";
  if (!uri.host.empty() && !headers.has("Host")) {
    out += "Host: ";  // Host goes first per convention
    uri.host_port_into(out);
    out += "\r\n";
  }
  write_headers(headers, out);
  if (!body.empty() && !headers.has("Content-Length")) {
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  out += "\r\n";
}

std::string Request::serialize_head() const {
  std::string out;
  serialize_head_into(out);
  return out;
}

std::string Request::serialize() const {
  std::string out = serialize_head();
  out += body;
  return out;
}

Request Request::parse(std::string_view wire) {
  // One implementation for both paths: the zero-copy view parser feeds the
  // capacity-reusing materializer (http/view.cpp), so the live servers'
  // pinned-buffer path and this convenience API cannot diverge.
  thread_local util::Arena arena;
  arena.reset();
  Request req;
  materialize(parse_request_view(wire, arena), req);
  return req;
}

Bytes Request::wire_size() const {
  thread_local std::string scratch;
  scratch.clear();
  serialize_head_into(scratch);
  return static_cast<Bytes>(scratch.size() + body.size());
}

void Request::set_form_fields(const FormFields& fields) {
  body = serialize_form(fields);
  if (!headers.has("Content-Type")) {
    headers.set("Content-Type", "application/x-www-form-urlencoded");
  }
}

void Request::cache_key_into(std::string& out,
                             const std::vector<std::string>& ignored_headers) const {
  out.clear();
  out += method;
  out += ' ';
  uri.serialize_into(out);
  out += '\n';
  // Normalised header lines are rendered into a reused scratch block and
  // sorted as (offset, length) ranges — no per-line strings.
  thread_local std::string scratch;
  thread_local std::vector<std::pair<std::size_t, std::size_t>> lines;
  scratch.clear();
  lines.clear();
  for (const auto& [k, v] : headers.items()) {
    const bool ignored =
        std::any_of(ignored_headers.begin(), ignored_headers.end(),
                    [&, &name = k](const std::string& ig) { return strings::iequals(ig, name); });
    if (ignored) continue;
    const std::size_t start = scratch.size();
    strings::to_lower_into(k, scratch);
    scratch += ':';
    scratch += v;
    lines.emplace_back(start, scratch.size() - start);
  }
  const auto line_at = [&](const std::pair<std::size_t, std::size_t>& r) {
    return std::string_view(scratch).substr(r.first, r.second);
  };
  std::sort(lines.begin(), lines.end(),
            [&](const auto& a, const auto& b) { return line_at(a) < line_at(b); });
  for (const auto& range : lines) {
    out += line_at(range);
    out += '\n';
  }
  out += body;
}

std::string Request::cache_key(const std::vector<std::string>& ignored_headers) const {
  std::string key;
  cache_key_into(key, ignored_headers);
  return key;
}

// --- Response ------------------------------------------------------------------

void Response::serialize_head_into(std::string& out, std::string_view extra_header_line) const {
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += "\r\n";
  write_headers(headers, out);
  if (!extra_header_line.empty()) {
    out += extra_header_line;
    out += "\r\n";
  }
  if (!body.empty() && !headers.has("Content-Length")) {
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  if (opaque_payload > 0) {
    out += kOpaqueHeader;
    out += ": ";
    out += std::to_string(opaque_payload);
    out += "\r\n";
  }
  out += "\r\n";
}

std::string Response::serialize_head() const {
  std::string out;
  serialize_head_into(out);
  return out;
}

std::string Response::serialize() const {
  std::string out = serialize_head();
  out.append(body.view());
  return out;
}

Response Response::parse(std::string_view wire) {
  WireHead head = parse_head(wire, "http response");
  // Status line: HTTP/1.1 SP code SP reason (reason may contain spaces).
  const std::string_view line = head.start_line;
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || !strings::starts_with(line, "HTTP/")) {
    throw ParseError("http response: bad status line");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view code =
      line.substr(sp1 + 1, (sp2 == std::string_view::npos ? line.size() : sp2) - sp1 - 1);
  const auto status = strings::to_int(code);
  if (!status || *status < 100 || *status > 599) {
    throw ParseError("http response: bad status code");
  }
  Response resp;
  resp.status = static_cast<int>(*status);
  resp.reason = (sp2 == std::string_view::npos) ? std::string(reason_phrase(resp.status))
                                                : std::string(line.substr(sp2 + 1));
  if (const auto opaque = head.headers.get_view(kOpaqueHeader)) {
    const auto n = strings::to_int(*opaque);
    if (!n || *n < 0) throw ParseError("http response: bad opaque byte count");
    resp.opaque_payload = *n;
    head.headers.remove(kOpaqueHeader);
  }
  head.headers.remove("Content-Length");
  resp.headers = std::move(head.headers);
  // The single body copy of the upstream leg: wire bytes -> refcounted slab.
  resp.body = std::move(head.body);
  return resp;
}

Bytes Response::wire_size() const {
  thread_local std::string scratch;
  scratch.clear();
  serialize_head_into(scratch);
  return static_cast<Bytes>(scratch.size() + body.size()) + opaque_payload;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

}  // namespace appx::http
