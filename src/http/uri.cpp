#include "http/uri.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::http {

namespace strings = appx::strings;

Uri Uri::parse(std::string_view text) {
  Uri uri;
  uri.path.clear();

  std::string_view rest = text;
  const std::size_t scheme_end = rest.find("://");
  if (scheme_end != std::string_view::npos) {
    uri.scheme = strings::to_lower(rest.substr(0, scheme_end));
    rest = rest.substr(scheme_end + 3);
    const std::size_t authority_end = rest.find_first_of("/?");
    std::string_view authority = rest.substr(0, authority_end);
    rest = (authority_end == std::string_view::npos) ? std::string_view{}
                                                     : rest.substr(authority_end);
    const std::size_t colon = authority.rfind(':');
    if (colon != std::string_view::npos) {
      const auto port = strings::to_int(authority.substr(colon + 1));
      if (!port || *port <= 0 || *port > 65535) {
        throw ParseError("uri: bad port in '" + std::string(text) + "'");
      }
      uri.port = static_cast<int>(*port);
      authority = authority.substr(0, colon);
    }
    if (authority.empty()) throw ParseError("uri: empty host in '" + std::string(text) + "'");
    uri.host = strings::to_lower(authority);
  }

  const std::size_t qmark = rest.find('?');
  std::string_view path = rest.substr(0, qmark);
  uri.path = path.empty() ? "/" : std::string(path);
  if (uri.path[0] != '/') throw ParseError("uri: path must start with '/': '" + std::string(text) + "'");

  if (qmark != std::string_view::npos) {
    const std::string_view qs = rest.substr(qmark + 1);
    if (!qs.empty()) {
      for (const std::string& pair : strings::split(qs, '&')) {
        if (pair.empty()) continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          uri.query.emplace_back(strings::url_decode(pair), "");
        } else {
          uri.query.emplace_back(strings::url_decode(pair.substr(0, eq)),
                                 strings::url_decode(pair.substr(eq + 1)));
        }
      }
    }
  }
  return uri;
}

std::string Uri::serialize() const {
  std::string out;
  if (!host.empty()) {
    out += scheme.empty() ? "http" : scheme;
    out += "://";
    out += host_port();
  }
  out += path_and_query();
  return out;
}

std::string Uri::path_and_query() const {
  std::string out = path;
  const std::string qs = query_string();
  if (!qs.empty()) {
    out += '?';
    out += qs;
  }
  return out;
}

std::string Uri::query_string() const {
  std::string out;
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i != 0) out += '&';
    out += strings::url_encode(query[i].first);
    if (!query[i].second.empty()) {
      out += '=';
      out += strings::url_encode(query[i].second);
    }
  }
  return out;
}

std::string Uri::host_port() const {
  if (port == 0 || port == effective_port_default()) return host;
  return host + ":" + std::to_string(port);
}

namespace {
int default_port_for(const std::string& scheme) {
  if (scheme == "https") return 443;
  return 80;
}
}  // namespace

int Uri::effective_port() const { return port != 0 ? port : default_port_for(scheme); }

// Keep host_port() compact when the explicit port equals the scheme default.
int Uri::effective_port_default() const { return default_port_for(scheme); }

std::optional<std::string> Uri::query_param(std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return std::nullopt;
}

void Uri::set_query_param(std::string_view key, std::string_view value) {
  for (auto& [k, v] : query) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  query.emplace_back(std::string(key), std::string(value));
}

void Uri::add_query_param(std::string_view key, std::string_view value) {
  query.emplace_back(std::string(key), std::string(value));
}

void Uri::remove_query_param(std::string_view key) {
  std::erase_if(query, [&](const auto& kv) { return kv.first == key; });
}

bool Uri::operator==(const Uri& other) const {
  return scheme == other.scheme && host == other.host &&
         effective_port() == other.effective_port() && path == other.path &&
         query == other.query;
}

}  // namespace appx::http
