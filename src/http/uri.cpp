#include "http/uri.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::http {

namespace strings = appx::strings;

Uri Uri::parse(std::string_view text) {
  Uri uri;
  parse_into(text, uri);
  return uri;
}

void Uri::parse_into(std::string_view text, Uri& out) {
  out.scheme.clear();
  out.host.clear();
  out.port = 0;
  out.path.clear();

  std::string_view rest = text;
  const std::size_t scheme_end = rest.find("://");
  if (scheme_end != std::string_view::npos) {
    strings::to_lower_into(rest.substr(0, scheme_end), out.scheme);
    rest = rest.substr(scheme_end + 3);
    const std::size_t authority_end = rest.find_first_of("/?");
    std::string_view authority = rest.substr(0, authority_end);
    rest = (authority_end == std::string_view::npos) ? std::string_view{}
                                                     : rest.substr(authority_end);
    const std::size_t colon = authority.rfind(':');
    if (colon != std::string_view::npos) {
      const auto port = strings::to_int(authority.substr(colon + 1));
      if (!port || *port <= 0 || *port > 65535) {
        throw ParseError("uri: bad port in '" + std::string(text) + "'");
      }
      out.port = static_cast<int>(*port);
      authority = authority.substr(0, colon);
    }
    if (authority.empty()) throw ParseError("uri: empty host in '" + std::string(text) + "'");
    strings::to_lower_into(authority, out.host);
  }

  const std::size_t qmark = rest.find('?');
  const std::string_view path = rest.substr(0, qmark);
  out.path.assign(path.empty() ? std::string_view("/") : path);
  if (out.path[0] != '/') {
    throw ParseError("uri: path must start with '/': '" + std::string(text) + "'");
  }

  // Query parameters are decoded into reused slots: existing pair strings
  // keep their capacity, extra slots are dropped at the end.
  std::size_t slot = 0;
  if (qmark != std::string_view::npos) {
    std::string_view qs = rest.substr(qmark + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      qs = amp == std::string_view::npos ? std::string_view{} : qs.substr(amp + 1);
      if (pair.empty()) continue;
      if (slot == out.query.size()) out.query.emplace_back();
      auto& [key, value] = out.query[slot++];
      key.clear();
      value.clear();
      const std::size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        strings::url_decode_into(pair, key);
      } else {
        strings::url_decode_into(pair.substr(0, eq), key);
        strings::url_decode_into(pair.substr(eq + 1), value);
      }
    }
  }
  out.query.resize(slot);
}

std::string Uri::serialize() const {
  std::string out;
  serialize_into(out);
  return out;
}

void Uri::serialize_into(std::string& out) const {
  if (!host.empty()) {
    out += scheme.empty() ? std::string_view("http") : std::string_view(scheme);
    out += "://";
    host_port_into(out);
  }
  path_and_query_into(out);
}

std::string Uri::path_and_query() const {
  std::string out;
  path_and_query_into(out);
  return out;
}

void Uri::path_and_query_into(std::string& out) const {
  out += path;
  if (!query.empty()) {
    out += '?';
    const std::size_t mark = out.size();
    query_string_into(out);
    if (out.size() == mark) out.pop_back();  // all-degenerate query: no '?'
  }
}

std::string Uri::query_string() const {
  std::string out;
  query_string_into(out);
  return out;
}

void Uri::query_string_into(std::string& out) const {
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (i != 0) out += '&';
    strings::url_encode_into(query[i].first, out);
    if (!query[i].second.empty()) {
      out += '=';
      strings::url_encode_into(query[i].second, out);
    }
  }
}

std::string Uri::host_port() const {
  std::string out;
  host_port_into(out);
  return out;
}

void Uri::host_port_into(std::string& out) const {
  out += host;
  if (port != 0 && port != effective_port_default()) {
    out += ':';
    out += std::to_string(port);
  }
}

namespace {
int default_port_for(const std::string& scheme) {
  if (scheme == "https") return 443;
  return 80;
}
}  // namespace

int Uri::effective_port() const { return port != 0 ? port : default_port_for(scheme); }

// Keep host_port() compact when the explicit port equals the scheme default.
int Uri::effective_port_default() const { return default_port_for(scheme); }

std::optional<std::string> Uri::query_param(std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return std::nullopt;
}

void Uri::set_query_param(std::string_view key, std::string_view value) {
  for (auto& [k, v] : query) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  query.emplace_back(std::string(key), std::string(value));
}

void Uri::add_query_param(std::string_view key, std::string_view value) {
  query.emplace_back(std::string(key), std::string(value));
}

void Uri::remove_query_param(std::string_view key) {
  std::erase_if(query, [&](const auto& kv) { return kv.first == key; });
}

bool Uri::operator==(const Uri& other) const {
  return scheme == other.scheme && host == other.host &&
         effective_port() == other.effective_port() && path == other.path &&
         query == other.query;
}

}  // namespace appx::http
