// Zero-copy parsed request over a pinned buffer (DESIGN.md §5h).
//
// RequestView is the data plane's working form of a request: every field is
// a std::string_view into the connection's parser buffer, and the header
// array lives in the connection's arena. Parsing a keep-alive request
// therefore allocates nothing once the connection is warm.
//
// Lifetime rules: a view is valid while (a) the wire bytes it was parsed
// from stay pinned (HttpParser::pin holds compaction and growth off the
// buffer) and (b) the arena is not reset. The event-loop Conn enforces both
// for the one request it keeps in flight.
//
// Where the engine needs an owning message (learning, cache keys), the view
// is materialized into an http::Request whose string/vector capacity is
// reused across requests — http::Request::parse is itself implemented as
// parse_request_view + materialize, so the two paths cannot drift.
#pragma once

#include <optional>
#include <string_view>

#include "http/message.hpp"
#include "util/arena.hpp"

namespace appx::http {

struct RequestView {
  std::string_view method;
  std::string_view target;   // raw request-target exactly as on the wire
  std::string_view version;  // "HTTP/1.1"
  const HeaderView* headers = nullptr;
  std::size_t header_count = 0;
  std::string_view body;

  // First case-insensitive match, whitespace-trimmed (same semantics as
  // Headers::get), without copying.
  std::optional<std::string_view> header(std::string_view name) const;

  // The path component of the target (up to '?'), for routing checks that
  // must not allocate (admin-path detection).
  std::string_view path() const {
    const std::size_t q = target.find('?');
    return q == std::string_view::npos ? target : target.substr(0, q);
  }
};

// Parse one complete wire message (as returned by HttpParser::next_message)
// into views. The header array is allocated from `arena`; the caller owns
// resetting it between requests. Throws ParseError on malformed messages —
// identical validation to http::Request::parse.
RequestView parse_request_view(std::string_view wire, util::Arena& arena);

// Build an owning Request from a view, reusing `out`'s existing string and
// vector capacity: a warm scratch Request absorbs a similar request with
// zero allocations. Applies the same normalisation as Request::parse (URI
// decoding, Host-header promotion, Host/Content-Length removal).
void materialize(const RequestView& view, Request& out);

}  // namespace appx::http
