// URI model with ordered query parameters.
//
// Query order is preserved because the proxy must reconstruct prefetch
// requests byte-identical to what the app would send (paper R2); reordering
// parameters would break exact-match serving.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace appx::http {

struct Uri {
  std::string scheme;  // "http" or "https"; may be empty for origin-form URIs
  std::string host;    // empty for origin-form ("/path?query") URIs
  int port = 0;        // 0 means scheme default
  std::string path = "/";
  std::vector<std::pair<std::string, std::string>> query;

  // Accepts absolute ("https://host:port/path?a=b") and origin-form
  // ("/path?a=b") URIs. Percent-decoding is applied to query keys/values.
  static Uri parse(std::string_view text);
  // Same parse, but assigns into `out`'s existing string/vector capacity —
  // a warm Uri absorbs a similar target with zero allocations (DESIGN.md §5h).
  static void parse_into(std::string_view text, Uri& out);

  std::string serialize() const;        // absolute if host set, else origin-form
  std::string path_and_query() const;   // "/path?a=b"
  std::string query_string() const;     // "a=b&c=d" (percent-encoded)
  std::string host_port() const;        // "host" or "host:port"

  // Append-style serializers backing the string forms above; hot paths call
  // these with a reused buffer.
  void serialize_into(std::string& out) const;
  void path_and_query_into(std::string& out) const;
  void query_string_into(std::string& out) const;
  void host_port_into(std::string& out) const;
  int effective_port() const;           // port or scheme default (80/443)
  int effective_port_default() const;   // the scheme's default port

  std::optional<std::string> query_param(std::string_view key) const;
  void set_query_param(std::string_view key, std::string_view value);  // add or replace first
  void add_query_param(std::string_view key, std::string_view value);
  void remove_query_param(std::string_view key);

  bool operator==(const Uri& other) const;
};

}  // namespace appx::http
