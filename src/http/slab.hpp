// Refcounted immutable body bytes (DESIGN.md §5h).
//
// A BodySlab is a (bytes, keepalive) pair: a view of the payload plus a
// shared owner of whatever storage backs it. Copying a slab bumps a refcount
// and never touches the payload, so one prefetched response body can sit in
// the PrefetchCache, ride a Decision to a worker thread, and wait in a
// connection's pending-write queue simultaneously — all the same bytes,
// freed when the last holder lets go. A slab held by a write queue keeps the
// body alive even if the cache entry is evicted (or the cache destroyed)
// mid-write.
//
// Slabs are immutable by construction: there is no mutating access to the
// payload. "Mutation" at call sites (resp.body = ...) rebinds the slab.
#pragma once

#include <cstddef>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace appx::http {

class BodySlab {
 public:
  BodySlab() = default;

  // Adopt a string's buffer: no byte copy, one shared-ownership allocation.
  // Implicit so `response.body = std::move(s)` keeps working at call sites.
  BodySlab(std::string bytes) {  // NOLINT(google-explicit-constructor)
    if (bytes.empty()) return;
    auto owner = std::make_shared<const std::string>(std::move(bytes));
    bytes_ = *owner;
    keepalive_ = std::move(owner);
  }
  BodySlab(std::string_view bytes)  // NOLINT(google-explicit-constructor)
      : BodySlab(std::string(bytes)) {}
  BodySlab(const char* bytes)  // NOLINT(google-explicit-constructor)
      : BodySlab(std::string(bytes)) {}

  // Copy bytes into a fresh slab (the miss path copies an upstream body out
  // of the parser's pinned buffer exactly once, here).
  static BodySlab copy(std::string_view bytes) { return BodySlab(std::string(bytes)); }

  // View over storage with static lifetime (canned error responses). No
  // refcount, no allocation.
  static BodySlab static_bytes(std::string_view bytes) {
    BodySlab slab;
    slab.bytes_ = bytes;
    return slab;
  }

  // View over caller-owned storage kept alive by `keepalive` (e.g. bytes
  // inside another refcounted object).
  static BodySlab alias(std::string_view bytes, std::shared_ptr<const void> keepalive) {
    BodySlab slab;
    slab.bytes_ = bytes;
    slab.keepalive_ = std::move(keepalive);
    return slab;
  }

  std::string_view view() const { return bytes_; }
  operator std::string_view() const { return bytes_; }  // NOLINT
  const char* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  std::string str() const { return std::string(bytes_); }

  // Slabs compare by content (cache keys and tests compare bodies). The
  // const char* overload is an exact match so string literals don't trip the
  // implicit-conversion candidates into ambiguity.
  friend bool operator==(const BodySlab& a, const BodySlab& b) { return a.bytes_ == b.bytes_; }
  friend bool operator==(const BodySlab& a, std::string_view b) { return a.bytes_ == b; }
  friend bool operator==(const BodySlab& a, const std::string& b) { return a.bytes_ == b; }
  friend bool operator==(const BodySlab& a, const char* b) {
    return a.bytes_ == std::string_view(b);
  }

  friend std::ostream& operator<<(std::ostream& os, const BodySlab& slab) {
    return os << slab.bytes_;
  }

 private:
  std::string_view bytes_;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace appx::http
