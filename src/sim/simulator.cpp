#include "sim/simulator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace appx::sim {

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) throw InvalidArgumentError("Simulator::schedule: negative delay");
  queue_.push(Event{now_ + delay, seq_++, std::move(fn)});
}

void Simulator::run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the function object must be moved
    // out before pop, so copy the header fields and steal the callable.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  now_ = std::max(now_, t);
}

Link::Link(Simulator* sim, Duration latency, double bits_per_second)
    : sim_(sim), latency_(latency), bits_per_second_(bits_per_second) {
  if (sim == nullptr) throw InvalidArgumentError("Link: null simulator");
  if (latency < 0) throw InvalidArgumentError("Link: negative latency");
}

void Link::send(Bytes size, std::function<void()> on_arrival) {
  if (size < 0) throw InvalidArgumentError("Link::send: negative size");
  bytes_carried_ += size;
  ++messages_carried_;

  const SimTime now = sim_->now();
  Duration serialization = 0;
  if (bits_per_second_ > 0) serialization = transmission_delay(size, bits_per_second_);

  // FIFO bottleneck: a transfer starts when the link is free.
  const SimTime start = std::max(now, busy_until_);
  const SimTime done_sending = start + serialization;
  busy_until_ = done_sending;

  const SimTime arrival = done_sending + latency_;
  sim_->schedule(arrival - now, std::move(on_arrival));
}

}  // namespace appx::sim
