// Discrete-event network simulation substrate.
//
// Replaces the paper's physical testbed (Nexus 6 on a wired LAN, mitmproxy
// host, commercial origin servers). The evaluation metric — user-perceived
// latency — is a function of propagation delay (RTT), serialisation delay
// (bandwidth), server processing time and request chain structure; a DES
// reproduces that arithmetic exactly and deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace appx::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedule `fn` to run `delay` microseconds from now (delay >= 0).
  void schedule(Duration delay, std::function<void()> fn);

  // Run until the event queue is empty.
  void run();

  // Run events with time <= t, then advance the clock to t.
  void run_until(SimTime t);

  std::size_t events_processed() const { return processed_; }
  std::size_t events_pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO among simultaneous events
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

// A unidirectional link with fixed propagation latency and a serialising
// bandwidth bottleneck: transfers queue FIFO behind each other, so a 315 KB
// image delays the requests behind it — matching access-link behaviour.
class Link {
 public:
  // bits_per_second <= 0 means infinite bandwidth.
  Link(Simulator* sim, Duration latency, double bits_per_second);

  // Deliver `size` bytes; `on_arrival` fires at the receiver.
  void send(Bytes size, std::function<void()> on_arrival);

  Duration latency() const { return latency_; }
  Bytes bytes_carried() const { return bytes_carried_; }
  std::size_t messages_carried() const { return messages_carried_; }

 private:
  Simulator* sim_;
  Duration latency_;
  double bits_per_second_;
  SimTime busy_until_ = 0;
  Bytes bytes_carried_ = 0;
  std::size_t messages_carried_ = 0;
};

// A bidirectional channel: paired links with shared parameters, as the
// experiments configure them ("RTT of 55 ms and bandwidth of 25 Mbps between
// the client and proxy").
class Channel {
 public:
  Channel(Simulator* sim, Duration rtt, double bits_per_second)
      : up_(sim, rtt / 2, bits_per_second), down_(sim, rtt / 2, bits_per_second) {}

  Link& up() { return up_; }      // client -> server direction
  Link& down() { return down_; }  // server -> client direction
  Duration rtt() const { return up_.latency() + down_.latency(); }

 private:
  Link up_;
  Link down_;
};

}  // namespace appx::sim
