// Concrete execution of SAPK programs.
//
// The analysis (analysis/analyzer.hpp) interprets programs *abstractly*; this
// interpreter runs them for real: environment values resolve to strings, HTTP
// sends hit a transport, JSON responses are parsed and json-get walks real
// documents, flatMap iterates real arrays, Intents carry real values.
//
// Its main role is differential testing of the static analysis: every request
// a concretely-executed app binary emits must match one of the statically
// extracted signatures (soundness), and conversely executing all entry points
// should visit every signature (completeness for our generated apps). It also
// demonstrates that SAPK is a real program format, not just an analysis input.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "http/message.hpp"
#include "ir/program.hpp"

namespace appx::ir {

// Concrete runtime environment: what the device knows.
struct ConcreteEnv {
  std::map<std::string, std::string> values;  // env name -> value
  std::set<std::string> flags;                // enabled kIfEnv conditions
};

class Interpreter {
 public:
  // Synchronous transport: the interpreter blocks on each transaction.
  using Transport = std::function<http::Response(const http::Request&)>;

  Interpreter(const Program* program, ConcreteEnv env, Transport transport);
  ~Interpreter();
  Interpreter(const Interpreter&) = delete;
  Interpreter& operator=(const Interpreter&) = delete;

  // Execute one entry point (no arguments).
  void run_entry(const std::string& method_name);
  // Execute every entry point of the program in order.
  void run_all_entries();

  // Every request issued so far, in order.
  const std::vector<http::Request>& requests() const;
  std::size_t instructions_executed() const;

  // Bound on total requests (the generated apps fan out one request per list
  // element; this guards against runaway programs). Exceeding it throws.
  void set_request_limit(std::size_t limit);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace appx::ir
