#include "ir/interpreter.hpp"

#include <algorithm>

#include "json/json.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace appx::ir {

namespace {

// Concrete runtime values.
struct Value;
using ValuePtr = std::shared_ptr<Value>;

struct BuilderState {
  std::string verb = "GET";
  ValuePtr url;
  // (location, name, value): 0=query 1=header 2=body.
  std::vector<std::tuple<int, std::string, ValuePtr>> fields;
};

struct Value {
  enum class Kind { kNull, kStr, kJson, kList, kObject };
  Kind kind = Kind::kNull;
  std::string str;
  json::Value json;                          // kJson (includes parsed responses)
  std::vector<ValuePtr> list;                // kList: per-element values
  std::map<std::string, ValuePtr> fields;    // kObject
  std::unique_ptr<BuilderState> builder;     // kObject created by http_new
};

ValuePtr make_null() {
  return std::make_shared<Value>();
}

ValuePtr make_str(std::string s) {
  auto v = std::make_shared<Value>();
  v->kind = Value::Kind::kStr;
  v->str = std::move(s);
  return v;
}

ValuePtr make_json(json::Value j) {
  auto v = std::make_shared<Value>();
  v->kind = Value::Kind::kJson;
  v->json = std::move(j);
  return v;
}

ValuePtr make_list(std::vector<ValuePtr> elems) {
  auto v = std::make_shared<Value>();
  v->kind = Value::Kind::kList;
  v->list = std::move(elems);
  return v;
}

std::string to_text(const ValuePtr& v, const char* context) {
  if (!v) throw InvalidStateError(std::string("interpreter: null value in ") + context);
  switch (v->kind) {
    case Value::Kind::kStr:
      return v->str;
    case Value::Kind::kJson:
      if (!v->json.is_array() && !v->json.is_object()) return v->json.scalar_to_string();
      break;
    default:
      break;
  }
  throw InvalidStateError(std::string("interpreter: value not stringifiable in ") + context);
}

// Resolve a JSON path on a value; '[*]' yields a list value.
ValuePtr json_get(const ValuePtr& src, const std::string& path_text) {
  const json::Path path(path_text);
  const auto resolve_on = [&](const json::Value& root) -> ValuePtr {
    const auto nodes = path.resolve(root);
    if (nodes.empty()) return make_null();
    if (path.is_multi()) {
      std::vector<ValuePtr> elems;
      elems.reserve(nodes.size());
      for (const json::Value* node : nodes) elems.push_back(make_json(*node));
      return make_list(std::move(elems));
    }
    return make_json(*nodes.front());
  };
  switch (src->kind) {
    case Value::Kind::kJson:
      return resolve_on(src->json);
    case Value::Kind::kList: {
      std::vector<ValuePtr> out;
      out.reserve(src->list.size());
      for (const ValuePtr& elem : src->list) out.push_back(json_get(elem, path_text));
      return make_list(std::move(out));
    }
    default:
      return make_null();
  }
}

}  // namespace

// --- Impl --------------------------------------------------------------------------

struct Interpreter::Impl {
  const Program* program;
  ConcreteEnv env;
  Transport transport;
  std::map<std::string, ValuePtr> intents;
  std::vector<http::Request> requests;
  std::size_t executed = 0;
  std::size_t nonce_counter = 0;
  std::size_t request_limit = 100000;

  ValuePtr env_value(const std::string& name) {
    if (name == "nonce") {
      return make_str("nc_" + short_digest("interp|" + std::to_string(nonce_counter++), 10));
    }
    const auto it = env.values.find(name);
    if (it == env.values.end()) {
      throw InvalidStateError("interpreter: environment value '" + name + "' not set");
    }
    return make_str(it->second);
  }

  ValuePtr call(const std::string& name, std::vector<ValuePtr> args, std::size_t depth) {
    if (depth > 128) throw InvalidStateError("interpreter: call depth exceeded");
    const Method* method = program->find_method(name);
    if (method == nullptr) throw NotFoundError("interpreter: no method " + name);

    // Replication: a list-valued argument fans the call out per element
    // (the concrete counterpart of the analysis' [*] dependency paths and of
    // dynamic learning's instance replication).
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] && args[i]->kind == Value::Kind::kList) {
        const std::size_t n = args[i]->list.size();
        std::vector<ValuePtr> results;
        for (std::size_t e = 0; e < n; ++e) {
          std::vector<ValuePtr> element_args = args;
          for (std::size_t j = 0; j < element_args.size(); ++j) {
            if (element_args[j] && element_args[j]->kind == Value::Kind::kList) {
              // Zip when sizes agree; broadcast the first element otherwise.
              const auto& lst = element_args[j]->list;
              element_args[j] = lst.empty() ? make_null()
                                            : lst[lst.size() == n ? e : 0];
            }
          }
          results.push_back(call(name, std::move(element_args), depth + 1));
        }
        return make_list(std::move(results));
      }
    }
    return execute(*method, std::move(args), depth);
  }

  ValuePtr execute(const Method& method, std::vector<ValuePtr> args, std::size_t depth) {
    std::vector<ValuePtr> regs(static_cast<std::size_t>(method.reg_count));
    for (auto& r : regs) r = make_null();
    for (std::size_t i = 0; i < args.size() && i < static_cast<std::size_t>(method.param_count);
         ++i) {
      regs[i] = std::move(args[i]);
    }
    const auto reg = [&](Reg r) -> ValuePtr& { return regs[static_cast<std::size_t>(r)]; };

    for (std::size_t pc = 0; pc < method.code.size(); ++pc) {
      const Instruction& instr = method.code[pc];
      ++executed;
      switch (instr.op) {
        case OpCode::kConst:
          reg(instr.dst) = make_str(instr.s);
          break;
        case OpCode::kEnv:
          reg(instr.dst) = env_value(instr.s);
          break;
        case OpCode::kMove:
          reg(instr.dst) = reg(instr.a);  // concrete moves are always aliases
          break;
        case OpCode::kConcat:
          reg(instr.dst) =
              make_str(to_text(reg(instr.a), "concat") + to_text(reg(instr.b), "concat"));
          break;
        case OpCode::kNewObject: {
          auto v = std::make_shared<Value>();
          v->kind = Value::Kind::kObject;
          reg(instr.dst) = std::move(v);
          break;
        }
        case OpCode::kGetField: {
          const ValuePtr obj = reg(instr.a);
          if (obj->kind == Value::Kind::kObject) {
            const auto it = obj->fields.find(instr.s);
            reg(instr.dst) = it == obj->fields.end() ? make_null() : it->second;
          } else {
            reg(instr.dst) = json_get(obj, instr.s);
          }
          break;
        }
        case OpCode::kPutField: {
          const ValuePtr obj = reg(instr.a);
          if (obj->kind != Value::Kind::kObject) {
            throw InvalidStateError("interpreter: putfield on non-object");
          }
          obj->fields[instr.s] = reg(instr.b);
          break;
        }
        case OpCode::kInvoke: {
          std::vector<ValuePtr> call_args;
          call_args.reserve(instr.args.size());
          for (Reg r : instr.args) call_args.push_back(reg(r));
          reg(instr.dst) = call(instr.s, std::move(call_args), depth + 1);
          break;
        }
        case OpCode::kIntentPut:
          intents[instr.s] = reg(instr.a);
          break;
        case OpCode::kIntentGet: {
          const auto it = intents.find(instr.s);
          reg(instr.dst) = it == intents.end() ? make_null() : it->second;
          break;
        }
        case OpCode::kRxMap:
          reg(instr.dst) = call(instr.s, {reg(instr.a)}, depth + 1);
          break;
        case OpCode::kRxFlatMap: {
          const ValuePtr src = reg(instr.a);
          std::vector<ValuePtr> elems;
          if (src->kind == Value::Kind::kList) {
            elems = src->list;
          } else if (src->kind == Value::Kind::kJson && src->json.is_array()) {
            for (const json::Value& e : src->json.as_array()) elems.push_back(make_json(e));
          } else if (src->kind != Value::Kind::kNull) {
            elems.push_back(src);
          }
          std::vector<ValuePtr> results;
          results.reserve(elems.size());
          for (const ValuePtr& e : elems) results.push_back(call(instr.s, {e}, depth + 1));
          reg(instr.dst) = make_list(std::move(results));
          break;
        }
        case OpCode::kRxDefer:
          reg(instr.dst) = call(instr.s, {}, depth + 1);
          break;
        case OpCode::kHttpNew: {
          auto v = std::make_shared<Value>();
          v->kind = Value::Kind::kObject;
          v->builder = std::make_unique<BuilderState>();
          reg(instr.dst) = std::move(v);
          break;
        }
        case OpCode::kHttpMethod:
        case OpCode::kHttpUrl:
        case OpCode::kHttpQuery:
        case OpCode::kHttpHeader:
        case OpCode::kHttpBody: {
          const ValuePtr obj = reg(instr.a);
          if (obj->kind != Value::Kind::kObject || !obj->builder) {
            throw InvalidStateError("interpreter: HTTP op on non-builder");
          }
          BuilderState& b = *obj->builder;
          switch (instr.op) {
            case OpCode::kHttpMethod: b.verb = instr.s; break;
            case OpCode::kHttpUrl: b.url = reg(instr.b); break;
            case OpCode::kHttpQuery: b.fields.emplace_back(0, instr.s, reg(instr.b)); break;
            case OpCode::kHttpHeader: b.fields.emplace_back(1, instr.s, reg(instr.b)); break;
            case OpCode::kHttpBody: b.fields.emplace_back(2, instr.s, reg(instr.b)); break;
            default: break;
          }
          break;
        }
        case OpCode::kHttpSend: {
          const ValuePtr obj = reg(instr.a);
          if (obj->kind != Value::Kind::kObject || !obj->builder) {
            throw InvalidStateError("interpreter: send on non-builder");
          }
          reg(instr.dst) = send(*obj->builder, instr.s2 == "json");
          break;
        }
        case OpCode::kJsonGet:
          reg(instr.dst) = json_get(reg(instr.a), instr.s);
          break;
        case OpCode::kIfEnv: {
          if (env.flags.contains(instr.s)) break;  // condition holds: fall through
          // Skip to the matching kEndIf.
          int nesting = 1;
          while (nesting > 0) {
            ++pc;
            if (pc >= method.code.size()) {
              throw InvalidStateError("interpreter: unbalanced if in " + method.name);
            }
            if (method.code[pc].op == OpCode::kIfEnv) ++nesting;
            if (method.code[pc].op == OpCode::kEndIf) --nesting;
          }
          break;
        }
        case OpCode::kEndIf:
          break;
        case OpCode::kFormat: {
          std::string out;
          std::size_t arg_index = 0;
          for (std::size_t i = 0; i < instr.s.size(); ++i) {
            if (instr.s[i] == '%' && i + 1 < instr.s.size() && instr.s[i + 1] == 's') {
              if (arg_index >= instr.args.size()) {
                throw InvalidStateError("interpreter: format placeholder without argument");
              }
              out += to_text(reg(instr.args[arg_index++]), "format");
              ++i;
            } else {
              out += instr.s[i];
            }
          }
          reg(instr.dst) = make_str(std::move(out));
          break;
        }
        case OpCode::kReturn:
          return reg(instr.a);
      }
    }
    return make_null();
  }

  ValuePtr send(BuilderState& builder, bool json_body) {
    http::Request req;
    req.method = builder.verb;
    req.uri = http::Uri::parse(to_text(builder.url, "url"));
    http::FormFields body_fields;
    for (const auto& [loc, name, value] : builder.fields) {
      if (!value || value->kind == Value::Kind::kNull) {
        throw InvalidStateError("interpreter: unresolved request field " + name);
      }
      const std::string text = to_text(value, name.c_str());
      switch (loc) {
        case 0: req.uri.add_query_param(name, text); break;
        case 1: req.headers.add(name, text); break;
        case 2: body_fields.emplace_back(name, text); break;
      }
    }
    if (!body_fields.empty()) req.set_form_fields(body_fields);

    if (requests.size() >= request_limit) {
      throw InvalidStateError("interpreter: request limit exceeded");
    }
    requests.push_back(req);
    const http::Response resp = transport(req);
    if (!resp.ok() || !json_body || resp.body.empty()) return make_null();
    return make_json(json::parse(resp.body));
  }
};

// --- public API --------------------------------------------------------------------

Interpreter::Interpreter(const Program* program, ConcreteEnv env, Transport transport)
    : impl_(std::make_unique<Impl>()) {
  if (program == nullptr) throw InvalidArgumentError("Interpreter: null program");
  if (!transport) throw InvalidArgumentError("Interpreter: null transport");
  impl_->program = program;
  impl_->env = std::move(env);
  impl_->transport = std::move(transport);
}

Interpreter::~Interpreter() = default;

void Interpreter::run_entry(const std::string& method_name) {
  impl_->call(method_name, {}, 0);
}

void Interpreter::run_all_entries() {
  for (const std::string& entry : impl_->program->entry_points) run_entry(entry);
}

const std::vector<http::Request>& Interpreter::requests() const { return impl_->requests; }

std::size_t Interpreter::instructions_executed() const { return impl_->executed; }

void Interpreter::set_request_limit(std::size_t limit) { impl_->request_limit = limit; }

}  // namespace appx::ir
