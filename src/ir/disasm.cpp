#include "ir/disasm.hpp"

#include <sstream>

namespace appx::ir {

namespace {

void append_reg(std::ostringstream& out, Reg r) {
  if (r == kNoReg) {
    out << "_";
  } else {
    out << "r" << r;
  }
}

void append_quoted(std::ostringstream& out, const std::string& s) {
  out << '\'';
  for (char c : s) {
    if (c == '\'' || c == '\\') out << '\\';
    out << c;
  }
  out << '\'';
}

}  // namespace

std::string disassemble(const Instruction& instr) {
  std::ostringstream out;
  out << to_string(instr.op);
  if (instr.dst != kNoReg) {
    out << "  ";
    append_reg(out, instr.dst);
    out << " <-";
  }
  if (instr.a != kNoReg) {
    out << ' ';
    append_reg(out, instr.a);
  }
  if (instr.b != kNoReg) {
    out << ' ';
    append_reg(out, instr.b);
  }
  if (!instr.s.empty()) {
    out << ' ';
    append_quoted(out, instr.s);
  }
  if (!instr.s2.empty()) {
    out << ' ';
    append_quoted(out, instr.s2);
  }
  if (!instr.args.empty()) {
    out << " (";
    for (std::size_t i = 0; i < instr.args.size(); ++i) {
      if (i != 0) out << ", ";
      append_reg(out, instr.args[i]);
    }
    out << ')';
  }
  return out.str();
}

std::string disassemble(const Method& method) {
  std::ostringstream out;
  out << "method " << method.name << " (params=" << method.param_count
      << ", regs=" << method.reg_count << ")\n";
  int indent = 1;
  for (std::size_t pc = 0; pc < method.code.size(); ++pc) {
    const Instruction& instr = method.code[pc];
    if (instr.op == OpCode::kEndIf && indent > 1) --indent;
    out << "  ";
    const std::string pc_text = std::to_string(pc);
    out << std::string(4 > pc_text.size() ? 4 - pc_text.size() : 0, ' ') << pc_text << ": ";
    out << std::string(static_cast<std::size_t>(indent - 1) * 2, ' ');
    out << disassemble(instr) << '\n';
    if (instr.op == OpCode::kIfEnv) ++indent;
  }
  return out.str();
}

std::string disassemble(const Program& program) {
  std::ostringstream out;
  out << "sapk " << program.app << " (" << program.methods.size() << " methods, "
      << program.instruction_count() << " instructions)\n";
  out << "entry points:\n";
  for (const std::string& entry : program.entry_points) out << "  " << entry << '\n';
  out << '\n';
  for (const Method& method : program.methods) out << disassemble(method) << '\n';
  return out.str();
}

}  // namespace appx::ir
