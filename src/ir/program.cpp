#include "ir/program.hpp"

#include <numeric>

#include "util/error.hpp"

namespace appx::ir {

std::string_view to_string(OpCode op) {
  switch (op) {
    case OpCode::kConst: return "const";
    case OpCode::kEnv: return "env";
    case OpCode::kMove: return "move";
    case OpCode::kConcat: return "concat";
    case OpCode::kNewObject: return "new";
    case OpCode::kGetField: return "getfield";
    case OpCode::kPutField: return "putfield";
    case OpCode::kInvoke: return "invoke";
    case OpCode::kIntentPut: return "intent-put";
    case OpCode::kIntentGet: return "intent-get";
    case OpCode::kRxMap: return "rx-map";
    case OpCode::kRxFlatMap: return "rx-flatmap";
    case OpCode::kRxDefer: return "rx-defer";
    case OpCode::kHttpNew: return "http-new";
    case OpCode::kHttpMethod: return "http-method";
    case OpCode::kHttpUrl: return "http-url";
    case OpCode::kHttpQuery: return "http-query";
    case OpCode::kHttpHeader: return "http-header";
    case OpCode::kHttpBody: return "http-body";
    case OpCode::kHttpSend: return "http-send";
    case OpCode::kJsonGet: return "json-get";
    case OpCode::kIfEnv: return "if-env";
    case OpCode::kEndIf: return "end-if";
    case OpCode::kReturn: return "return";
    case OpCode::kFormat: return "format";
  }
  return "?";
}

// --- Program ----------------------------------------------------------------------

const Method* Program::find_method(std::string_view name) const {
  for (const Method& m : methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const Method& Program::get_method(std::string_view name) const {
  const Method* m = find_method(name);
  if (m == nullptr) throw NotFoundError("Program: no method " + std::string(name));
  return *m;
}

std::size_t Program::instruction_count() const {
  return std::accumulate(methods.begin(), methods.end(), std::size_t{0},
                         [](std::size_t acc, const Method& m) { return acc + m.code.size(); });
}

namespace {
constexpr std::uint32_t kSapkMagic = 0x4b504153;  // 'SAPK'
constexpr std::uint32_t kSapkVersion = 1;
}  // namespace

std::vector<std::uint8_t> Program::serialize() const {
  ByteWriter out;
  out.u32(kSapkMagic);
  out.u32(kSapkVersion);
  out.str(app);
  out.u32(static_cast<std::uint32_t>(methods.size()));
  for (const Method& m : methods) {
    out.str(m.name);
    out.u32(static_cast<std::uint32_t>(m.param_count));
    out.u32(static_cast<std::uint32_t>(m.reg_count));
    out.u32(static_cast<std::uint32_t>(m.code.size()));
    for (const Instruction& instr : m.code) {
      out.u8(static_cast<std::uint8_t>(instr.op));
      out.u32(static_cast<std::uint32_t>(instr.dst));
      out.u32(static_cast<std::uint32_t>(instr.a));
      out.u32(static_cast<std::uint32_t>(instr.b));
      out.str(instr.s);
      out.str(instr.s2);
      out.u32(static_cast<std::uint32_t>(instr.args.size()));
      for (Reg r : instr.args) out.u32(static_cast<std::uint32_t>(r));
    }
  }
  out.u32(static_cast<std::uint32_t>(entry_points.size()));
  for (const std::string& entry : entry_points) out.str(entry);
  return out.take();
}

Program Program::deserialize(const std::vector<std::uint8_t>& data) {
  ByteReader in(data);
  if (in.u32() != kSapkMagic) throw ParseError("SAPK: bad magic");
  if (in.u32() != kSapkVersion) throw ParseError("SAPK: unsupported version");
  Program program;
  program.app = in.str();
  const std::uint32_t nmethods = in.u32();
  program.methods.reserve(nmethods);
  for (std::uint32_t i = 0; i < nmethods; ++i) {
    Method m;
    m.name = in.str();
    m.param_count = static_cast<std::int32_t>(in.u32());
    m.reg_count = static_cast<std::int32_t>(in.u32());
    const std::uint32_t ninstr = in.u32();
    m.code.reserve(ninstr);
    for (std::uint32_t j = 0; j < ninstr; ++j) {
      Instruction instr;
      const std::uint8_t op = in.u8();
      if (op > static_cast<std::uint8_t>(OpCode::kFormat)) {
        throw ParseError("SAPK: bad opcode " + std::to_string(op));
      }
      instr.op = static_cast<OpCode>(op);
      instr.dst = static_cast<Reg>(in.u32());
      instr.a = static_cast<Reg>(in.u32());
      instr.b = static_cast<Reg>(in.u32());
      instr.s = in.str();
      instr.s2 = in.str();
      const std::uint32_t nargs = in.u32();
      instr.args.reserve(nargs);
      for (std::uint32_t k = 0; k < nargs; ++k) instr.args.push_back(static_cast<Reg>(in.u32()));
      m.code.push_back(std::move(instr));
    }
    program.methods.push_back(std::move(m));
  }
  const std::uint32_t nentries = in.u32();
  for (std::uint32_t i = 0; i < nentries; ++i) program.entry_points.push_back(in.str());
  return program;
}

// --- MethodBuilder -----------------------------------------------------------------

MethodBuilder::MethodBuilder(std::string name, std::int32_t param_count) {
  method_.name = std::move(name);
  method_.param_count = param_count;
  method_.reg_count = param_count;
}

Reg MethodBuilder::param(std::int32_t index) const {
  if (index < 0 || index >= method_.param_count) {
    throw InvalidArgumentError("MethodBuilder: parameter index out of range");
  }
  return index;
}

Reg MethodBuilder::fresh() { return method_.reg_count++; }

Instruction& MethodBuilder::emit(Instruction instr) {
  method_.code.push_back(std::move(instr));
  return method_.code.back();
}

Reg MethodBuilder::const_str(std::string_view value) {
  const Reg dst = fresh();
  emit({OpCode::kConst, dst, kNoReg, kNoReg, std::string(value), "", {}});
  return dst;
}

Reg MethodBuilder::env(std::string_view name) {
  const Reg dst = fresh();
  emit({OpCode::kEnv, dst, kNoReg, kNoReg, std::string(name), "", {}});
  return dst;
}

Reg MethodBuilder::move(Reg src) {
  const Reg dst = fresh();
  emit({OpCode::kMove, dst, src, kNoReg, "", "", {}});
  return dst;
}

Reg MethodBuilder::concat(Reg a, Reg b) {
  const Reg dst = fresh();
  emit({OpCode::kConcat, dst, a, b, "", "", {}});
  return dst;
}

Reg MethodBuilder::concat(std::initializer_list<Reg> parts) {
  if (parts.size() == 0) throw InvalidArgumentError("MethodBuilder::concat: empty");
  auto it = parts.begin();
  Reg acc = *it++;
  while (it != parts.end()) acc = concat(acc, *it++);
  return acc;
}

Reg MethodBuilder::format(std::string_view fmt, std::vector<Reg> args) {
  // Validate the arity up front: one %s per argument.
  std::size_t placeholders = 0;
  for (std::size_t i = 0; i + 1 < fmt.size(); ++i) {
    if (fmt[i] == '%' && fmt[i + 1] == 's') ++placeholders;
  }
  if (placeholders != args.size()) {
    throw InvalidArgumentError("MethodBuilder::format: placeholder/argument count mismatch");
  }
  const Reg dst = fresh();
  Instruction instr{OpCode::kFormat, dst, kNoReg, kNoReg, std::string(fmt), "", {}};
  instr.args = std::move(args);
  emit(std::move(instr));
  return dst;
}

Reg MethodBuilder::new_object(std::string_view class_name) {
  const Reg dst = fresh();
  emit({OpCode::kNewObject, dst, kNoReg, kNoReg, std::string(class_name), "", {}});
  return dst;
}

Reg MethodBuilder::get_field(Reg obj, std::string_view field) {
  const Reg dst = fresh();
  emit({OpCode::kGetField, dst, obj, kNoReg, std::string(field), "", {}});
  return dst;
}

void MethodBuilder::put_field(Reg obj, std::string_view field, Reg value) {
  emit({OpCode::kPutField, kNoReg, obj, value, std::string(field), "", {}});
}

Reg MethodBuilder::invoke(std::string_view method, std::vector<Reg> args) {
  const Reg dst = fresh();
  Instruction instr{OpCode::kInvoke, dst, kNoReg, kNoReg, std::string(method), "", {}};
  instr.args = std::move(args);
  emit(std::move(instr));
  return dst;
}

void MethodBuilder::intent_put(std::string_view key, Reg value) {
  emit({OpCode::kIntentPut, kNoReg, value, kNoReg, std::string(key), "", {}});
}

Reg MethodBuilder::intent_get(std::string_view key) {
  const Reg dst = fresh();
  emit({OpCode::kIntentGet, dst, kNoReg, kNoReg, std::string(key), "", {}});
  return dst;
}

Reg MethodBuilder::rx_map(Reg source, std::string_view method_ref) {
  const Reg dst = fresh();
  emit({OpCode::kRxMap, dst, source, kNoReg, std::string(method_ref), "", {}});
  return dst;
}

Reg MethodBuilder::rx_flat_map(Reg source, std::string_view method_ref) {
  const Reg dst = fresh();
  emit({OpCode::kRxFlatMap, dst, source, kNoReg, std::string(method_ref), "", {}});
  return dst;
}

Reg MethodBuilder::rx_defer(std::string_view method_ref) {
  const Reg dst = fresh();
  emit({OpCode::kRxDefer, dst, kNoReg, kNoReg, std::string(method_ref), "", {}});
  return dst;
}

Reg MethodBuilder::http_new() {
  const Reg dst = fresh();
  emit({OpCode::kHttpNew, dst, kNoReg, kNoReg, "", "", {}});
  return dst;
}

void MethodBuilder::http_method(Reg builder, std::string_view verb) {
  emit({OpCode::kHttpMethod, kNoReg, builder, kNoReg, std::string(verb), "", {}});
}

void MethodBuilder::http_url(Reg builder, Reg url) {
  emit({OpCode::kHttpUrl, kNoReg, builder, url, "", "", {}});
}

void MethodBuilder::http_query(Reg builder, std::string_view name, Reg value) {
  emit({OpCode::kHttpQuery, kNoReg, builder, value, std::string(name), "", {}});
}

void MethodBuilder::http_header(Reg builder, std::string_view name, Reg value) {
  emit({OpCode::kHttpHeader, kNoReg, builder, value, std::string(name), "", {}});
}

void MethodBuilder::http_body(Reg builder, std::string_view name, Reg value) {
  emit({OpCode::kHttpBody, kNoReg, builder, value, std::string(name), "", {}});
}

Reg MethodBuilder::http_send(Reg builder, std::string_view label, std::string_view body_kind) {
  if (body_kind != "json" && body_kind != "opaque") {
    throw InvalidArgumentError("MethodBuilder::http_send: body_kind must be json|opaque");
  }
  const Reg dst = fresh();
  emit({OpCode::kHttpSend, dst, builder, kNoReg, std::string(label), std::string(body_kind), {}});
  return dst;
}

Reg MethodBuilder::json_get(Reg source, std::string_view path) {
  const Reg dst = fresh();
  emit({OpCode::kJsonGet, dst, source, kNoReg, std::string(path), "", {}});
  return dst;
}

void MethodBuilder::if_env(std::string_view flag) {
  ++open_ifs_;
  emit({OpCode::kIfEnv, kNoReg, kNoReg, kNoReg, std::string(flag), "", {}});
}

void MethodBuilder::end_if() {
  if (open_ifs_ == 0) throw InvalidStateError("MethodBuilder: end_if without if_env");
  --open_ifs_;
  emit({OpCode::kEndIf, kNoReg, kNoReg, kNoReg, "", "", {}});
}

void MethodBuilder::ret(Reg value) {
  emit({OpCode::kReturn, kNoReg, value, kNoReg, "", "", {}});
}

Method MethodBuilder::build() {
  if (open_ifs_ != 0) throw InvalidStateError("MethodBuilder: unbalanced if_env/end_if");
  return std::move(method_);
}

}  // namespace appx::ir
