// Textual disassembly of SAPK programs — the tooling view of the app binary.
//
// Produces a stable, human-readable listing used by the analyze_app example
// and by tests that want to assert on program shape without binary diffing.
#pragma once

#include <string>

#include "ir/program.hpp"

namespace appx::ir {

// One instruction, e.g. "  12: http-query  r5 <- r3  'offset'".
std::string disassemble(const Instruction& instruction);

// A whole method with header and numbered instructions.
std::string disassemble(const Method& method);

// The whole program: header, entry points, every method.
std::string disassemble(const Program& program);

}  // namespace appx::ir
