// The SAPK app intermediate representation.
//
// The paper's framework consumes Android APKs (dex bytecode) and runs
// Extractocol/FlowDroid-style static analysis over them. An Android
// toolchain is out of scope here, so SAPK is our substitute app binary: a
// compact register-based IR that models exactly the constructs the paper's
// analysis must handle:
//
//   * string building (const / concat) for URLs and field values,
//   * heap objects with fields, aliases via moves, and chained derivations
//     (the paper's "precise alias and complex heap object analysis"),
//   * Intents: put/get through a component-crossing key-value channel,
//   * RxAndroid-style operators (map / flatMap / defer) with method refs,
//   * HTTP request builders and send sites (network sinks),
//   * JSON path reads on responses (network sources),
//   * environment values only known at run time (device id, cookie, ...),
//   * structured conditionals guarding optional request fields (Fig. 8).
//
// Programs serialise to a binary "SAPK" blob, the unit the analysis loads.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/byte_io.hpp"

namespace appx::ir {

using Reg = std::int32_t;
constexpr Reg kNoReg = -1;

enum class OpCode : std::uint8_t {
  kConst,         // dst <- string literal `s`
  kEnv,           // dst <- run-time environment value named `s` (cookie, ua...)
  kMove,          // dst <- a (object moves create aliases)
  kConcat,        // dst <- a ++ b
  kNewObject,     // dst <- new heap object (class name `s`, informational)
  kGetField,      // dst <- a.`s`
  kPutField,      // a.`s` <- b
  kInvoke,        // dst <- call method `s`(args = regs listed in `args`)
  kIntentPut,     // intent[`s`] <- a
  kIntentGet,     // dst <- intent[`s`]
  kRxMap,         // dst <- a.map(`s` = method ref)
  kRxFlatMap,     // dst <- a.flatMap(`s` = method ref); result is per-element
  kRxDefer,       // dst <- Observable.defer(`s` = method ref)
  kHttpNew,       // dst <- new HTTP request builder
  kHttpMethod,    // builder a: method <- `s` ("GET"/"POST")
  kHttpUrl,       // builder a: url <- b
  kHttpQuery,     // builder a: query[`s`] <- b
  kHttpHeader,    // builder a: header[`s`] <- b
  kHttpBody,      // builder a: body form field [`s`] <- b
  kHttpSend,      // dst(response) <- send(builder a); `s` = transaction label,
                  // `s2` = response body kind ("json"/"opaque")
  kJsonGet,       // dst <- json_get(a, path `s`); a is a response or json value
  kIfEnv,         // begin conditional region guarded by env flag `s`
  kEndIf,         // end innermost conditional region
  kReturn,        // return a
  kFormat,        // dst <- printf-style `s` with %s placeholders filled from args
};

std::string_view to_string(OpCode op);

struct Instruction {
  OpCode op = OpCode::kConst;
  Reg dst = kNoReg;
  Reg a = kNoReg;
  Reg b = kNoReg;
  std::string s;   // primary string operand (literal, field, key, label, ref)
  std::string s2;  // secondary string operand
  std::vector<Reg> args;  // kInvoke arguments
};

struct Method {
  std::string name;  // fully qualified, "Class.method"
  std::int32_t param_count = 0;
  std::int32_t reg_count = 0;  // registers 0..param_count-1 hold parameters
  std::vector<Instruction> code;
};

struct Program {
  std::string app;  // package name, e.g. "com.wish.app"
  std::vector<Method> methods;
  // Entry points (activity lifecycle handlers, click handlers, ...). The
  // analysis explores every entry point.
  std::vector<std::string> entry_points;

  const Method* find_method(std::string_view name) const;
  const Method& get_method(std::string_view name) const;  // throws NotFoundError

  std::size_t instruction_count() const;

  std::vector<std::uint8_t> serialize() const;  // SAPK blob
  static Program deserialize(const std::vector<std::uint8_t>& data);
};

// Fluent builder for authoring methods in tests and the app compiler.
class MethodBuilder {
 public:
  explicit MethodBuilder(std::string name, std::int32_t param_count = 0);

  Reg param(std::int32_t index) const;  // register holding parameter `index`
  Reg fresh();                          // allocate a new register

  Reg const_str(std::string_view value);
  Reg env(std::string_view name);
  Reg move(Reg src);
  Reg concat(Reg a, Reg b);
  Reg concat(std::initializer_list<Reg> parts);  // left fold; needs >= 1 part
  // String.format-style: "https://%s/item/%s" with one arg per %s.
  Reg format(std::string_view fmt, std::vector<Reg> args);
  Reg new_object(std::string_view class_name);
  Reg get_field(Reg obj, std::string_view field);
  void put_field(Reg obj, std::string_view field, Reg value);
  Reg invoke(std::string_view method, std::vector<Reg> args = {});
  void intent_put(std::string_view key, Reg value);
  Reg intent_get(std::string_view key);
  Reg rx_map(Reg source, std::string_view method_ref);
  Reg rx_flat_map(Reg source, std::string_view method_ref);
  Reg rx_defer(std::string_view method_ref);
  Reg http_new();
  void http_method(Reg builder, std::string_view verb);
  void http_url(Reg builder, Reg url);
  void http_query(Reg builder, std::string_view name, Reg value);
  void http_header(Reg builder, std::string_view name, Reg value);
  void http_body(Reg builder, std::string_view name, Reg value);
  Reg http_send(Reg builder, std::string_view label, std::string_view body_kind = "json");
  Reg json_get(Reg source, std::string_view path);
  void if_env(std::string_view flag);
  void end_if();
  void ret(Reg value);

  Method build();  // finalises (validates balanced if/endif)

 private:
  Instruction& emit(Instruction instr);

  Method method_;
  std::int32_t open_ifs_ = 0;
};

}  // namespace appx::ir
