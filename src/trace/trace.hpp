// User-study traces (paper §6: 30 participants x 3 minutes per app).
//
// The paper recorded real user event streams with Appetizer and replayed
// them on a phone. We generate statistically-shaped synthetic sessions
// instead: a launch, then interactions picked by user preference weights
// with exponential think times and Zipf-distributed item selections, each
// session honouring interaction prerequisites (you cannot open a merchant
// page before viewing an item). Traces serialise to a binary format so
// experiments replay the identical workload across proxy configurations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "apps/client.hpp"
#include "apps/spec.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace appx::trace {

struct TraceEvent {
  Duration at = 0;  // offset from session start
  std::string interaction;
  std::size_t selection = 0;
};

struct UserTrace {
  std::string user_id;
  std::vector<TraceEvent> events;
};

struct TraceParams {
  int users = 30;
  Duration session_length = minutes(3);
  Duration mean_think_time = seconds(6);
  double selection_zipf_skew = 1.1;  // users favour top-of-list items
  std::uint64_t seed = 7;
};

// Generate one session per user.
std::vector<UserTrace> generate_traces(const apps::AppSpec& spec, const TraceParams& params);

// Serialisation for experiment reproducibility.
std::vector<std::uint8_t> serialize_traces(const std::vector<UserTrace>& traces);
std::vector<UserTrace> deserialize_traces(const std::vector<std::uint8_t>& data);

// Replays one user's trace through a client. Results for every interaction
// are appended to `results` (tagged by interaction name); skipped events
// (dependencies unavailable at replay time) are counted.
class TraceReplayer {
 public:
  TraceReplayer(apps::AppClient* client, sim::Simulator* sim);

  void replay(const UserTrace& trace, std::function<void()> done = {});

  const std::vector<apps::InteractionResult>& results() const { return results_; }
  std::size_t skipped() const { return skipped_; }

 private:
  void run_event(const UserTrace& trace, std::size_t index, std::function<void()> done);

  apps::AppClient* client_;
  sim::Simulator* sim_;
  std::vector<apps::InteractionResult> results_;
  std::size_t skipped_ = 0;
};

}  // namespace appx::trace
