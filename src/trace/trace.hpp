// User-study traces (paper §6: 30 participants x 3 minutes per app).
//
// The paper recorded real user event streams with Appetizer and replayed
// them on a phone. We generate statistically-shaped synthetic sessions
// instead: a launch, then interactions picked by user preference weights
// with exponential think times and Zipf-distributed item selections, each
// session honouring interaction prerequisites (you cannot open a merchant
// page before viewing an item). Traces serialise to a binary format so
// experiments replay the identical workload across proxy configurations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/catalog.hpp"
#include "apps/client.hpp"
#include "apps/spec.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"

namespace appx::trace {

struct TraceEvent {
  Duration at = 0;  // offset from session start
  std::string interaction;
  std::size_t selection = 0;
};

struct UserTrace {
  std::string user_id;
  std::vector<TraceEvent> events;
};

struct TraceParams {
  int users = 30;
  Duration session_length = minutes(3);
  Duration mean_think_time = seconds(6);
  double selection_zipf_skew = 1.1;  // users favour top-of-list items
  std::uint64_t seed = 7;
};

// Generate one session per user.
std::vector<UserTrace> generate_traces(const apps::AppSpec& spec, const TraceParams& params);

// --- macro-scale replay scheduling (ROADMAP item 1) -------------------------
//
// The 30-user study trace scaled up ×1000s for the open-loop load harness:
// every base user is replicated `replicas` times, each replica getting its
// own user id, a ramped session start, and independently jittered inter-event
// gaps (per-replica seed), so 10k concurrent sessions do not move in lockstep
// and arrival times are fixed BEFORE the run — a stalled server accrues
// latency against the schedule instead of silently slowing the offered load
// (no coordinated omission).
struct ScaleParams {
  std::size_t replicas = 1;     // sessions per base user
  std::uint64_t seed = 1;       // master seed for per-replica jitter streams
  double think_jitter = 0.25;   // ± fraction applied to each inter-event gap
  Duration ramp = seconds(10);  // session starts spread uniformly over [0, ramp)
  double time_dilation = 1.0;   // stretch (>1) / compress (<1) all gaps
};

// One scheduled replica session: the base trace's events with jittered,
// dilated ABSOLUTE times (offsets from the harness epoch). event_at[i]
// corresponds to base.events[i]; times are non-decreasing.
struct ScheduledSession {
  std::string user_id;      // "<base-user>#<replica>"
  std::size_t base_index;   // into the base-trace vector
  Duration start = 0;       // ramped session start (connect time)
  std::vector<Duration> event_at;
};

// Deterministic for a given (base, params): the per-replica jitter stream is
// derived from params.seed, the base index and the replica index only.
std::vector<ScheduledSession> scale_traces(const std::vector<UserTrace>& base,
                                           const ScaleParams& params);

// Serialisation for experiment reproducibility.
std::vector<std::uint8_t> serialize_traces(const std::vector<UserTrace>& traces);
std::vector<UserTrace> deserialize_traces(const std::vector<std::uint8_t>& data);

// Replays one user's trace through a client. Results for every interaction
// are appended to `results` (tagged by interaction name); skipped events
// (dependencies unavailable at replay time) are counted.
class TraceReplayer {
 public:
  TraceReplayer(apps::AppClient* client, sim::Simulator* sim);

  void replay(const UserTrace& trace, std::function<void()> done = {});

  const std::vector<apps::InteractionResult>& results() const { return results_; }
  std::size_t skipped() const { return skipped_; }

 private:
  void run_event(const UserTrace& trace, std::size_t index, std::function<void()> done);

  apps::AppClient* client_;
  sim::Simulator* sim_;
  std::vector<apps::InteractionResult> results_;
  std::size_t skipped_ = 0;
};

}  // namespace appx::trace
