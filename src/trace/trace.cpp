#include "trace/trace.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace appx::trace {

using apps::Interaction;

namespace {

// Offline prerequisite check mirroring AppClient::can_run: an interaction is
// runnable when every external dependency endpoint has been fetched by a
// previous interaction of the session.
bool runnable(const apps::AppSpec& spec, const Interaction& interaction,
              const std::set<std::string>& fetched) {
  std::set<std::string> will_have = fetched;
  for (const auto& wave : interaction.waves) {
    for (const apps::WaveStep& step : wave) {
      const apps::EndpointSpec& ep = spec.endpoint(step.endpoint);
      for (const apps::FieldSpec* f : ep.dep_fields()) {
        if (!will_have.contains(f->value.dep_endpoint)) return false;
      }
    }
    for (const apps::WaveStep& step : wave) will_have.insert(step.endpoint);
  }
  return true;
}

void mark_fetched(const apps::AppSpec& spec, const Interaction& interaction,
                  std::set<std::string>& fetched) {
  for (const auto& wave : interaction.waves) {
    for (const apps::WaveStep& step : wave) {
      const apps::EndpointSpec& ep = spec.endpoint(step.endpoint);
      if (!ep.opaque) fetched.insert(ep.label);
    }
  }
}

}  // namespace

std::vector<UserTrace> generate_traces(const apps::AppSpec& spec, const TraceParams& params) {
  std::vector<UserTrace> traces;
  Rng master(params.seed);

  for (int u = 0; u < params.users; ++u) {
    Rng rng = master.fork();
    UserTrace trace;
    trace.user_id = "user" + std::to_string(u);

    std::set<std::string> fetched;
    Duration t = 0;
    trace.events.push_back({t, apps::kLaunchInteraction, 0});
    mark_fetched(spec, spec.interaction(apps::kLaunchInteraction), fetched);
    // Launch itself takes a few seconds of session time.
    t += seconds(3);

    while (t < params.session_length) {
      t += static_cast<Duration>(rng.exponential(static_cast<double>(params.mean_think_time)));
      if (t >= params.session_length) break;

      // Weighted pick over user-visible interactions that are runnable now.
      double total = 0;
      for (const Interaction& it : spec.interactions) {
        if (it.user_weight <= 0) continue;
        if (!runnable(spec, it, fetched)) continue;
        total += it.user_weight;
      }
      if (total <= 0) break;
      double draw = rng.uniform(0, total);
      const Interaction* chosen = nullptr;
      for (const Interaction& it : spec.interactions) {
        if (it.user_weight <= 0 || !runnable(spec, it, fetched)) continue;
        draw -= it.user_weight;
        if (draw <= 0) {
          chosen = &it;
          break;
        }
      }
      if (chosen == nullptr) break;

      std::size_t selection = 0;
      const auto& first_wave = chosen->waves.front();
      if (!first_wave.empty()) {
        const apps::EndpointSpec& ep = spec.endpoint(first_wave.front().endpoint);
        for (const apps::FieldSpec* f : ep.dep_fields()) {
          std::string prefix, remainder;
          if (apps::split_wildcard_path(f->value.dep_path, prefix, remainder)) {
            const apps::EndpointSpec& pred = spec.endpoint(f->value.dep_endpoint);
            if (pred.list_count > 0) {
              selection = rng.zipf(static_cast<std::size_t>(pred.list_count),
                                   params.selection_zipf_skew);
            }
            break;
          }
        }
      }
      trace.events.push_back({t, chosen->name, selection});
      mark_fetched(spec, *chosen, fetched);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

std::vector<ScheduledSession> scale_traces(const std::vector<UserTrace>& base,
                                           const ScaleParams& params) {
  if (params.replicas == 0) throw InvalidArgumentError("scale_traces: replicas must be >= 1");
  if (params.time_dilation <= 0) {
    throw InvalidArgumentError("scale_traces: time_dilation must be > 0");
  }
  if (params.think_jitter < 0 || params.think_jitter >= 1) {
    throw InvalidArgumentError("scale_traces: think_jitter must be in [0, 1)");
  }
  std::vector<ScheduledSession> sessions;
  sessions.reserve(base.size() * params.replicas);
  for (std::size_t b = 0; b < base.size(); ++b) {
    const UserTrace& trace = base[b];
    for (std::size_t r = 0; r < params.replicas; ++r) {
      // Mix (seed, base, replica) into one 64-bit stream id; the golden-ratio
      // constants decorrelate adjacent replicas the way splitmix64 does.
      const std::uint64_t stream = params.seed ^ (static_cast<std::uint64_t>(b + 1) *
                                                 0x9e3779b97f4a7c15ULL) ^
                                   (static_cast<std::uint64_t>(r + 1) * 0xbf58476d1ce4e5b9ULL);
      Rng rng(stream);
      ScheduledSession session;
      session.user_id = trace.user_id + "#" + std::to_string(r);
      session.base_index = b;
      session.start = params.ramp > 0
                          ? static_cast<Duration>(rng.uniform(0, static_cast<double>(params.ramp)))
                          : 0;
      session.event_at.reserve(trace.events.size());
      Duration t = session.start;
      Duration prev_at = 0;
      for (const TraceEvent& event : trace.events) {
        const Duration gap = std::max<Duration>(0, event.at - prev_at);
        prev_at = event.at;
        double scaled = static_cast<double>(gap) * params.time_dilation;
        if (params.think_jitter > 0) {
          scaled *= rng.uniform(1.0 - params.think_jitter, 1.0 + params.think_jitter);
        }
        t += static_cast<Duration>(scaled);
        session.event_at.push_back(t);
      }
      sessions.push_back(std::move(session));
    }
  }
  return sessions;
}

std::vector<std::uint8_t> serialize_traces(const std::vector<UserTrace>& traces) {
  ByteWriter out;
  out.u32(0x53435254);  // 'TRCS'
  out.u32(1);
  out.u32(static_cast<std::uint32_t>(traces.size()));
  for (const UserTrace& trace : traces) {
    out.str(trace.user_id);
    out.u32(static_cast<std::uint32_t>(trace.events.size()));
    for (const TraceEvent& event : trace.events) {
      out.i64(event.at);
      out.str(event.interaction);
      out.u32(static_cast<std::uint32_t>(event.selection));
    }
  }
  return out.take();
}

std::vector<UserTrace> deserialize_traces(const std::vector<std::uint8_t>& data) {
  ByteReader in(data);
  if (in.u32() != 0x53435254) throw ParseError("traces: bad magic");
  if (in.u32() != 1) throw ParseError("traces: unsupported version");
  std::vector<UserTrace> traces;
  const std::uint32_t ntraces = in.u32();
  traces.reserve(ntraces);
  for (std::uint32_t i = 0; i < ntraces; ++i) {
    UserTrace trace;
    trace.user_id = in.str();
    const std::uint32_t nevents = in.u32();
    trace.events.reserve(nevents);
    for (std::uint32_t j = 0; j < nevents; ++j) {
      TraceEvent event;
      event.at = in.i64();
      event.interaction = in.str();
      event.selection = in.u32();
      trace.events.push_back(std::move(event));
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

TraceReplayer::TraceReplayer(apps::AppClient* client, sim::Simulator* sim)
    : client_(client), sim_(sim) {
  if (client == nullptr) throw InvalidArgumentError("TraceReplayer: null client");
  if (sim == nullptr) throw InvalidArgumentError("TraceReplayer: null simulator");
}

void TraceReplayer::replay(const UserTrace& trace, std::function<void()> done) {
  run_event(trace, 0, std::move(done));
}

void TraceReplayer::run_event(const UserTrace& trace, std::size_t index,
                              std::function<void()> done) {
  if (index >= trace.events.size()) {
    if (done) done();
    return;
  }
  const TraceEvent& event = trace.events[index];
  // Honour the recorded think time: wait out the event's offset relative to
  // the previous event. (The caller must keep `trace` alive until `done`.)
  const Duration gap =
      index == 0 ? event.at : std::max<Duration>(0, event.at - trace.events[index - 1].at);
  sim_->schedule(gap, [this, &trace, index, done] {
    const TraceEvent& ev = trace.events[index];
    if (!client_->can_run(ev.interaction, ev.selection)) {
      ++skipped_;
      run_event(trace, index + 1, done);
      return;
    }
    client_->run_interaction(ev.interaction, ev.selection,
                             [this, &trace, index, done](const apps::InteractionResult& r) {
                               results_.push_back(r);
                               run_event(trace, index + 1, done);
                             });
  });
}

}  // namespace appx::trace
