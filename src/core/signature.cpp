#include "core/signature.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "core/signature_index.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/strings.hpp"

namespace appx::core {

namespace strings = appx::strings;

std::string_view to_string(FieldLocation location) {
  switch (location) {
    case FieldLocation::kQuery: return "query";
    case FieldLocation::kHeader: return "header";
    case FieldLocation::kBody: return "body";
  }
  return "?";
}

// --- RequestSignature ---------------------------------------------------------

std::vector<std::string> RequestSignature::hole_names() const {
  std::vector<std::string> out;
  const auto absorb = [&out](const FieldTemplate& t) {
    for (const std::string& name : t.hole_names()) {
      if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
    }
  };
  absorb(scheme);
  absorb(host);
  absorb(path);
  for (const auto* group : {&query, &headers, &body}) {
    for (const RequestField& f : *group) absorb(f.value);
  }
  return out;
}

// --- TransactionSignature -------------------------------------------------------

namespace {

void serialize_template(ByteWriter& out, const FieldTemplate& t) { t.serialize(out); }

void serialize_fields(ByteWriter& out, const std::vector<RequestField>& fields) {
  out.u32(static_cast<std::uint32_t>(fields.size()));
  for (const RequestField& f : fields) {
    out.u8(static_cast<std::uint8_t>(f.location));
    out.str(f.name);
    f.value.serialize(out);
    out.u8(f.optional ? 1 : 0);
  }
}

std::vector<RequestField> deserialize_fields(ByteReader& in) {
  std::vector<RequestField> fields;
  const std::uint32_t n = in.u32();
  fields.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RequestField f;
    f.location = static_cast<FieldLocation>(in.u8());
    f.name = in.str();
    f.value = FieldTemplate::deserialize(in);
    f.optional = in.u8() != 0;
    fields.push_back(std::move(f));
  }
  return fields;
}

std::string canonical_form(const TransactionSignature& sig) {
  // A deterministic rendering of everything except id/label, used for the
  // stable content hash.
  std::string out = sig.app;
  out += '\x1f';
  out += sig.request.method;
  out += '\x1f';
  out += sig.request.scheme.to_display_string();
  out += '\x1f';
  out += sig.request.host.to_display_string();
  out += '\x1f';
  out += sig.request.path.to_display_string();
  const auto emit_fields = [&out](const std::vector<RequestField>& fields) {
    for (const RequestField& f : fields) {
      out += '\x1e';
      out += to_string(f.location);
      out += ':';
      out += f.name;
      out += '=';
      out += f.value.to_display_string();
      if (f.optional) out += '?';
    }
  };
  emit_fields(sig.request.query);
  emit_fields(sig.request.headers);
  out += '\x1f';
  out += std::to_string(static_cast<int>(sig.request.body_kind));
  emit_fields(sig.request.body);
  out += '\x1f';
  out += std::to_string(static_cast<int>(sig.response.body_kind));
  emit_fields(sig.response.headers);
  for (const ResponseField& f : sig.response.fields) {
    out += '\x1e';
    out += f.path;
    out += '~';
    out += f.shape;
  }
  return out;
}

}  // namespace

void TransactionSignature::finalize() { id = short_digest(canonical_form(*this)); }

std::string TransactionSignature::uri_regex() const {
  std::string out = request.scheme.to_regex_string();
  if (!out.empty()) out += "://";
  out += request.host.to_regex_string();
  out += request.path.to_regex_string();
  return out;
}

std::optional<Bindings> TransactionSignature::match(const http::Request& req) const {
  auto result = match_ex(req);
  if (!result) return std::nullopt;
  return std::move(result->bindings);
}

std::optional<TransactionSignature::MatchResult> TransactionSignature::match_ex(
    const http::Request& req) const {
  if (req.method != request.method) return std::nullopt;
  MatchResult result;
  Bindings& bindings = result.bindings;

  // Origin-form requests (the on-the-wire shape, "POST /x HTTP/1.1" + Host)
  // carry no scheme — the transport implies it — so an empty scheme matches
  // any scheme template.
  if (!request.scheme.segments().empty() && !req.uri.scheme.empty()) {
    const auto b = request.scheme.extract(req.uri.scheme);
    if (!b) return std::nullopt;
    bindings.insert(b->begin(), b->end());
  }
  // Host: match against the concrete host (without port).
  {
    const auto b = request.host.extract(req.uri.host);
    if (!b) return std::nullopt;
    for (const auto& [k, v] : *b) {
      const auto it = bindings.find(k);
      if (it != bindings.end() && it->second != v) return std::nullopt;
      bindings[k] = v;
    }
  }
  {
    const auto b = request.path.extract(req.uri.path);
    if (!b) return std::nullopt;
    for (const auto& [k, v] : *b) {
      const auto it = bindings.find(k);
      if (it != bindings.end() && it->second != v) return std::nullopt;
      bindings[k] = v;
    }
  }

  if (!match_fields(request.query, req.uri.query, /*case_insensitive_names=*/false,
                    /*allow_extra=*/false, bindings, &result.absent_optional)) {
    return std::nullopt;
  }
  // Headers: the signature enumerates interesting headers; live requests can
  // carry more (transport headers etc.), so extras are allowed.
  if (!match_fields(request.headers, req.headers.items(), /*case_insensitive_names=*/true,
                    /*allow_extra=*/true, bindings, &result.absent_optional)) {
    return std::nullopt;
  }
  if (request.body_kind == BodyKind::kNone) {
    if (!req.body.empty()) return std::nullopt;
  } else {
    if (!match_fields(request.body, req.form_fields(), /*case_insensitive_names=*/false,
                      /*allow_extra=*/false, bindings, &result.absent_optional)) {
      return std::nullopt;
    }
  }
  return result;
}

void TransactionSignature::serialize(ByteWriter& out) const {
  out.str(id);
  out.str(app);
  out.str(label);
  out.str(request.method);
  serialize_template(out, request.scheme);
  serialize_template(out, request.host);
  serialize_template(out, request.path);
  serialize_fields(out, request.query);
  serialize_fields(out, request.headers);
  out.u8(static_cast<std::uint8_t>(request.body_kind));
  serialize_fields(out, request.body);
  serialize_fields(out, response.headers);
  out.u8(static_cast<std::uint8_t>(response.body_kind));
  out.u32(static_cast<std::uint32_t>(response.fields.size()));
  for (const ResponseField& f : response.fields) {
    out.str(f.path);
    out.str(f.shape);
  }
}

TransactionSignature TransactionSignature::deserialize(ByteReader& in) {
  TransactionSignature sig;
  sig.id = in.str();
  sig.app = in.str();
  sig.label = in.str();
  sig.request.method = in.str();
  sig.request.scheme = FieldTemplate::deserialize(in);
  sig.request.host = FieldTemplate::deserialize(in);
  sig.request.path = FieldTemplate::deserialize(in);
  sig.request.query = deserialize_fields(in);
  sig.request.headers = deserialize_fields(in);
  sig.request.body_kind = static_cast<BodyKind>(in.u8());
  sig.request.body = deserialize_fields(in);
  sig.response.headers = deserialize_fields(in);
  sig.response.body_kind = static_cast<ResponseBodyKind>(in.u8());
  const std::uint32_t n = in.u32();
  sig.response.fields.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ResponseField f;
    f.path = in.str();
    f.shape = in.str();
    sig.response.fields.push_back(std::move(f));
  }
  return sig;
}

// --- field matching helper ------------------------------------------------------

std::string field_key(const RequestField& field) {
  return std::string(to_string(field.location)) + ":" + field.name;
}

bool match_fields(const std::vector<RequestField>& fields,
                  const std::vector<std::pair<std::string, std::string>>& concrete,
                  bool case_insensitive_names, bool allow_extra, Bindings& bindings,
                  std::vector<std::string>* absent_out) {
  const auto names_equal = [&](std::string_view a, std::string_view b) {
    return case_insensitive_names ? strings::iequals(a, b) : a == b;
  };
  const auto mark_absent = [&](const RequestField& field) {
    if (absent_out != nullptr) absent_out->push_back(field_key(field));
  };

  std::vector<bool> concrete_used(concrete.size(), false);
  // Repeated field names (e.g. "_cap[]") are matched positionally within the
  // name: the k-th signature field named N matches the k-th concrete pair
  // named N.
  for (const RequestField& field : fields) {
    std::size_t found = concrete.size();
    for (std::size_t i = 0; i < concrete.size(); ++i) {
      if (!concrete_used[i] && names_equal(concrete[i].first, field.name)) {
        found = i;
        break;
      }
    }
    if (found == concrete.size()) {
      if (field.optional) {
        mark_absent(field);
        continue;
      }
      return false;  // required field missing
    }
    // Try to match this concrete value with consistent bindings.
    Bindings trial = bindings;
    const auto extracted = field.value.extract(concrete[found].second);
    bool fits = false;
    if (extracted) {
      fits = true;
      for (const auto& [k, v] : *extracted) {
        const auto it = trial.find(k);
        if (it != trial.end() && it->second != v) {
          fits = false;
          break;
        }
        trial[k] = v;
      }
    }
    if (!fits) {
      if (field.optional) {
        mark_absent(field);  // treat mismatch of optional as absent
        continue;
      }
      return false;
    }
    concrete_used[found] = true;
    bindings = std::move(trial);
  }
  if (!allow_extra) {
    for (std::size_t i = 0; i < concrete.size(); ++i) {
      if (!concrete_used[i]) return false;
    }
  }
  return true;
}

// --- SignatureSet ----------------------------------------------------------------

SignatureSet::SignatureSet() = default;
SignatureSet::SignatureSet(SignatureSet&&) noexcept = default;
SignatureSet& SignatureSet::operator=(SignatureSet&&) noexcept = default;
SignatureSet::~SignatureSet() = default;

const TransactionSignature& SignatureSet::add(TransactionSignature sig) {
  if (sig.id.empty()) sig.finalize();
  if (by_id_.contains(sig.id)) {
    throw InvalidArgumentError("SignatureSet: duplicate signature id " + sig.id);
  }
  signatures_.push_back(std::make_unique<TransactionSignature>(std::move(sig)));
  const TransactionSignature& ref = *signatures_.back();
  by_id_.emplace(ref.id, &ref);
  index_.reset();  // the dispatch index no longer covers every signature
  return ref;
}

void SignatureSet::add_edge(DependencyEdge edge) {
  if (!by_id_.contains(edge.pred_id)) {
    throw InvalidArgumentError("SignatureSet: edge from unknown signature " + edge.pred_id);
  }
  if (!by_id_.contains(edge.succ_id)) {
    throw InvalidArgumentError("SignatureSet: edge to unknown signature " + edge.succ_id);
  }
  json::Path(edge.pred_path);  // validate
  edges_.push_back(std::move(edge));
}

const TransactionSignature* SignatureSet::find(std::string_view id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

const TransactionSignature& SignatureSet::get(std::string_view id) const {
  const TransactionSignature* sig = find(id);
  if (sig == nullptr) throw NotFoundError("SignatureSet: no signature " + std::string(id));
  return *sig;
}

const TransactionSignature* SignatureSet::find_by_label(std::string_view label) const {
  for (const auto& sig : signatures_) {
    if (sig->label == label) return sig.get();
  }
  return nullptr;
}

std::vector<const DependencyEdge*> SignatureSet::edges_from(std::string_view pred_id) const {
  std::vector<const DependencyEdge*> out;
  for (const DependencyEdge& e : edges_) {
    if (e.pred_id == pred_id) out.push_back(&e);
  }
  return out;
}

std::vector<const DependencyEdge*> SignatureSet::edges_to(std::string_view succ_id) const {
  std::vector<const DependencyEdge*> out;
  for (const DependencyEdge& e : edges_) {
    if (e.succ_id == succ_id) out.push_back(&e);
  }
  return out;
}

bool SignatureSet::is_successor(std::string_view id) const {
  return std::any_of(edges_.begin(), edges_.end(),
                     [&](const DependencyEdge& e) { return e.succ_id == id; });
}

bool SignatureSet::is_predecessor(std::string_view id) const {
  return std::any_of(edges_.begin(), edges_.end(),
                     [&](const DependencyEdge& e) { return e.pred_id == id; });
}

std::vector<const TransactionSignature*> SignatureSet::prefetchable() const {
  std::vector<const TransactionSignature*> out;
  for (const auto& sig : signatures_) {
    if (is_successor(sig->id)) out.push_back(sig.get());
  }
  return out;
}

std::vector<std::string> SignatureSet::runtime_holes(std::string_view id) const {
  const TransactionSignature& sig = get(id);
  std::set<std::string> bound;
  for (const DependencyEdge* e : edges_to(id)) bound.insert(e->hole);
  std::vector<std::string> out;
  for (const std::string& hole : sig.request.hole_names()) {
    if (!bound.contains(hole)) out.push_back(hole);
  }
  return out;
}

std::vector<std::string> SignatureSet::dependency_holes(std::string_view id) const {
  const TransactionSignature& sig = get(id);
  std::set<std::string> bound;
  for (const DependencyEdge* e : edges_to(id)) bound.insert(e->hole);
  std::vector<std::string> out;
  for (const std::string& hole : sig.request.hole_names()) {
    if (bound.contains(hole)) out.push_back(hole);
  }
  return out;
}

std::size_t SignatureSet::max_chain_length() const {
  // Longest path in edge count over the dependency graph. The graph is a DAG
  // in practice; we guard against cycles with a visiting mark.
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const DependencyEdge& e : edges_) adjacency[e.pred_id].push_back(e.succ_id);

  std::map<std::string, std::size_t> memo;
  std::set<std::string> visiting;

  // Depth = longest edge-path starting at node.
  const std::function<std::size_t(const std::string&)> depth =
      [&](const std::string& node) -> std::size_t {
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    if (visiting.contains(node)) return 0;  // cycle guard
    visiting.insert(node);
    std::size_t best = 0;
    const auto adj = adjacency.find(node);
    if (adj != adjacency.end()) {
      for (const std::string& next : adj->second) best = std::max(best, 1 + depth(next));
    }
    visiting.erase(node);
    memo[node] = best;
    return best;
  };

  std::size_t best = 0;
  for (const auto& sig : signatures_) best = std::max(best, depth(sig->id));
  return best;
}

const TransactionSignature* SignatureSet::match_request(const http::Request& request,
                                                        std::string_view app) const {
  return index().match(request, app);
}

const TransactionSignature* SignatureSet::match_request_linear(const http::Request& request,
                                                               std::string_view app) const {
  for (const auto& sig : signatures_) {
    if (!app.empty() && sig->app != app) continue;
    if (sig->match(request)) return sig.get();
  }
  return nullptr;
}

const SignatureIndex& SignatureSet::index() const {
  if (!index_) index_ = std::make_unique<SignatureIndex>(signatures_);
  return *index_;
}

SignatureSet SignatureSet::subset_for_app(std::string_view app) const {
  SignatureSet out;
  for (const auto& sig : signatures_) {
    if (sig->app == app) out.add(*sig);
  }
  for (const DependencyEdge& e : edges_) {
    if (out.find(e.pred_id) != nullptr && out.find(e.succ_id) != nullptr) out.add_edge(e);
  }
  return out;
}

void SignatureSet::absorb(const SignatureSet& other) {
  for (const auto& sig : other.all()) add(*sig);
  for (const DependencyEdge& e : other.edges()) add_edge(e);
}

std::vector<std::uint8_t> SignatureSet::serialize() const {
  ByteWriter out;
  out.u32(0x53474953);  // 'SIGS'
  out.u32(1);           // version
  out.u32(static_cast<std::uint32_t>(signatures_.size()));
  for (const auto& sig : signatures_) sig->serialize(out);
  out.u32(static_cast<std::uint32_t>(edges_.size()));
  for (const DependencyEdge& e : edges_) {
    out.str(e.pred_id);
    out.str(e.pred_path);
    out.str(e.succ_id);
    out.str(e.hole);
  }
  return out.take();
}

SignatureSet SignatureSet::deserialize(const std::vector<std::uint8_t>& data) {
  ByteReader in(data);
  if (in.u32() != 0x53474953) throw ParseError("SignatureSet: bad magic");
  if (in.u32() != 1) throw ParseError("SignatureSet: unsupported version");
  SignatureSet out;
  const std::uint32_t nsigs = in.u32();
  for (std::uint32_t i = 0; i < nsigs; ++i) out.add(TransactionSignature::deserialize(in));
  const std::uint32_t nedges = in.u32();
  for (std::uint32_t i = 0; i < nedges; ++i) {
    DependencyEdge e;
    e.pred_id = in.str();
    e.pred_path = in.str();
    e.succ_id = in.str();
    e.hole = in.str();
    out.add_edge(std::move(e));
  }
  return out;
}

}  // namespace appx::core
