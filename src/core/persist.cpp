#include "core/persist.hpp"

#include "util/hash.hpp"
#include "util/log.hpp"

namespace appx::core {

namespace {

constexpr char kMagic[8] = {'A', 'P', 'P', 'X', 'S', 'N', 'A', 'P'};

}  // namespace

void SnapshotBuilder::add(const Persistable& component) {
  ByteWriter payload;
  component.persist(payload);
  add_raw(component.section_name(), component.section_version(), payload);
}

void SnapshotBuilder::add_raw(std::string_view name, std::uint32_t version,
                              const ByteWriter& payload) {
  Section section;
  section.name = std::string(name);
  section.version = version;
  section.payload = payload.data();
  sections_.push_back(std::move(section));
}

std::vector<std::uint8_t> SnapshotBuilder::finish() const {
  ByteWriter out;
  out.raw(kMagic, sizeof(kMagic));
  out.u32(kSnapshotFormatVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& section : sections_) {
    out.str(section.name);
    out.u32(section.version);
    out.u64(section.payload.size());
    out.raw(section.payload.data(), section.payload.size());
  }
  const std::uint64_t checksum = fnv1a(out.data().data(), out.size());
  out.u64(checksum);
  return out.take();
}

SnapshotView::SnapshotView(const std::vector<std::uint8_t>& blob) {
  // Envelope first: magic, then checksum over everything before the trailing
  // u64, so truncation and bit-rot are caught before any parsing.
  if (blob.size() < sizeof(kMagic) + 4 + 4 + 8 ||
      std::string_view(reinterpret_cast<const char*>(blob.data()), sizeof(kMagic)) !=
          std::string_view(kMagic, sizeof(kMagic))) {
    throw SnapshotCorruptError("snapshot: bad magic or short file (" +
                               std::to_string(blob.size()) + " bytes)");
  }
  const std::size_t body = blob.size() - 8;
  ByteReader tail(blob.data() + body, 8);
  if (tail.u64() != fnv1a(blob.data(), body)) {
    throw SnapshotCorruptError("snapshot: checksum mismatch (truncated or corrupt file)");
  }

  ByteReader in(blob.data(), body);
  try {
    in.skip(sizeof(kMagic));
    container_version_ = in.u32();
    if (container_version_ > kSnapshotFormatVersion) {
      throw SnapshotVersionError(
          "snapshot: container format v" + std::to_string(container_version_) +
          " is newer than supported v" + std::to_string(kSnapshotFormatVersion) +
          "; refusing to guess (cold start instead)");
    }
    const std::uint32_t count = in.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string name = in.str();
      Section section;
      section.version = in.u32();
      section.size = in.u64();
      if (section.size > in.remaining()) {
        throw ParseError("section '" + name + "' overruns the file");
      }
      section.data = in.cursor();
      in.skip(section.size);
      sections_.emplace(name, section);
    }
  } catch (const SnapshotError&) {
    throw;
  } catch (const Error& e) {
    throw SnapshotCorruptError(std::string("snapshot: malformed section table: ") + e.what());
  }
}

const SnapshotView::Section* SnapshotView::find(std::string_view name) const {
  const auto it = sections_.find(name);
  return it == sections_.end() ? nullptr : &it->second;
}

bool SnapshotView::restore_into(Persistable& component) const {
  const Section* section = find(component.section_name());
  if (section == nullptr) {
    log_info("persist") << "snapshot has no '" << component.section_name()
                        << "' section; component stays cold";
    return false;
  }
  if (section->version > component.section_version()) {
    log_warn("persist") << "section '" << component.section_name() << "' is v"
                        << section->version << " but this build supports v"
                        << component.section_version() << "; component stays cold";
    return false;
  }
  ByteReader in(section->data, section->size);
  try {
    component.restore(in, section->version);
  } catch (const Error& e) {
    throw SnapshotCorruptError("snapshot: section '" + std::string(component.section_name()) +
                               "' failed to decode: " + e.what());
  }
  return true;
}

}  // namespace appx::core
