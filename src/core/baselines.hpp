// Baseline prefetchers from the paper's related-work comparison (§7).
//
// LooxyEngine — Looxy (Guo et al., VTC'17) style: a local proxy that
// "prefetches using only the full URLs of HTTP requests contained in the
// response". It needs no program analysis: it scans response bodies for
// absolute URLs and issues GETs for them. The paper's criticism — which the
// evaluation reproduces — is that most dependencies live in *parts* of
// requests (the 'cid' form field of POST /product/get), which URL scanning
// can never reconstruct; Looxy therefore accelerates embedded static assets
// (image URLs in feeds) but none of the API chains.
//
// StaticOnlyEngine — PALOMA-flavoured: prefetch only requests whose exact
// message is known from static analysis alone (no dynamic learning). Every
// real signature carries run-time holes (cookies, hosts, versions), so this
// degenerates to no prefetching at all — the quantitative form of the
// paper's §7 argument against static-only reconstruction.
//
// Both share BaselineEngine: the per-user state map, exact-match cache
// serving, and ProxyStats accounting live once here; a concrete baseline
// only supplies its prediction strategy via the seed_user()/learn() hooks.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/cache.hpp"
#include "core/session.hpp"
#include "core/signature.hpp"

namespace appx::core {

// Per-user cache-serving engine skeleton behind the session API. Not
// thread-safe (baselines are evaluation vehicles, not production runtimes).
class BaselineEngine : public ProxyLike {
 public:
  UserId resolve_user(std::string_view user, SimTime now) override;
  void on_request(UserId& user, const http::Request& request, SimTime now,
                  Decision* out) override;
  void on_response(UserId& user, const http::Request& request, const http::Response& response,
                   SimTime now, Decision* out) override;
  void on_prefetch_response(UserId& user, const PrefetchJob& job,
                            const http::Response& response, SimTime now,
                            double response_time_ms, Decision* out) override;
  // Baselines track no outstanding window; a dropped job needs no bookkeeping.
  void on_prefetch_dropped(UserId& user, const PrefetchJob& job, SimTime now) override;
  void pump(UserId& user, SimTime now, Decision* out) override;
  const ProxyStats& stats() const override { return stats_; }

 protected:
  explicit BaselineEngine(std::optional<Duration> expiration);

  struct UserState {
    UserId id;
    PrefetchCache cache;
    std::set<std::string> inflight;  // cache keys already handled
    bool seeded = false;             // seed_user() emitted for this user
  };

  // --- strategy hooks -------------------------------------------------------

  // Jobs to issue once on first contact with a user (static prediction).
  virtual void seed_user(UserState& state, std::vector<PrefetchJob>* out);
  // Learn from a forwarded origin response (dynamic prediction).
  virtual void learn(UserState& state, const http::Request& request,
                     const http::Response& response, SimTime now,
                     std::vector<PrefetchJob>* out);

  // Stamp identity, count the jobs as issued and move them onto the Decision.
  void issue(UserState& state, std::vector<PrefetchJob> jobs, Decision* out);

  UserState& state_for(UserId& id, SimTime now);

  std::optional<Duration> expiration_;
  ProxyStats stats_;

 private:
  void seed_once(UserState& state, Decision* out);

  std::map<std::string, std::unique_ptr<UserState>, std::less<>> users_;
};

// Extract the absolute http(s) URLs embedded in a response body.
std::vector<std::string> extract_urls(std::string_view body);

class LooxyEngine final : public BaselineEngine {
 public:
  // expiration: freshness window for prefetched responses (Looxy caches too).
  explicit LooxyEngine(std::optional<Duration> expiration = minutes(30));

 private:
  void learn(UserState& state, const http::Request& request, const http::Response& response,
             SimTime now, std::vector<PrefetchJob>* out) override;
};

// PALOMA-flavoured baseline: emits, once per user, the prefetch requests that
// are fully concrete in the signature set (no holes anywhere). Serves exact
// matches like the others.
class StaticOnlyEngine final : public BaselineEngine {
 public:
  explicit StaticOnlyEngine(const SignatureSet* signatures,
                            std::optional<Duration> expiration = minutes(30));

  // Requests reconstructible from static analysis alone.
  std::size_t statically_complete() const { return complete_.size(); }

 private:
  void seed_user(UserState& state, std::vector<PrefetchJob>* out) override;

  const SignatureSet* signatures_;
  std::vector<http::Request> complete_;
};

}  // namespace appx::core
