// Baseline prefetchers from the paper's related-work comparison (§7).
//
// LooxyEngine — Looxy (Guo et al., VTC'17) style: a local proxy that
// "prefetches using only the full URLs of HTTP requests contained in the
// response". It needs no program analysis: it scans response bodies for
// absolute URLs and issues GETs for them. The paper's criticism — which the
// evaluation reproduces — is that most dependencies live in *parts* of
// requests (the 'cid' form field of POST /product/get), which URL scanning
// can never reconstruct; Looxy therefore accelerates embedded static assets
// (image URLs in feeds) but none of the API chains.
//
// StaticOnlyEngine — PALOMA-flavoured: prefetch only requests whose exact
// message is known from static analysis alone (no dynamic learning). Every
// real signature carries run-time holes (cookies, hosts, versions), so this
// degenerates to no prefetching at all — the quantitative form of the
// paper's §7 argument against static-only reconstruction.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/cache.hpp"
#include "core/proxy.hpp"
#include "core/signature.hpp"

namespace appx::core {

// Shared shape of the proxy engines so the testbed can host any of them.
class ProxyLike {
 public:
  virtual ~ProxyLike() = default;
  virtual ClientDecision on_client_request(const std::string& user,
                                           const http::Request& request, SimTime now) = 0;
  virtual void on_origin_response(const std::string& user, const http::Request& request,
                                  const http::Response& response, SimTime now) = 0;
  virtual void on_prefetch_response(const std::string& user, const PrefetchJob& job,
                                    const http::Response& response, SimTime now,
                                    double response_time_ms) = 0;
  // A taken prefetch job was abandoned without a response (queue overflow,
  // shutdown). Engines tracking outstanding windows must release the slot
  // here; the default is a no-op for engines without such bookkeeping.
  virtual void on_prefetch_dropped(const std::string& user, const PrefetchJob& job,
                                   SimTime now) {
    (void)user;
    (void)job;
    (void)now;
  }
  virtual std::vector<PrefetchJob> take_prefetches(const std::string& user, SimTime now) = 0;
  virtual const ProxyStats& stats() const = 0;
  // Metrics registry behind stats(), when the engine has one. Baselines that
  // keep a plain ProxyStats return nullptr.
  virtual obs::MetricsRegistry* metrics() { return nullptr; }
};

// Adapter: the real APPx engine behind the ProxyLike interface.
class AppxProxy final : public ProxyLike {
 public:
  AppxProxy(const SignatureSet* signatures, const ProxyConfig* config, std::uint64_t seed)
      : engine_(signatures, config, seed) {}

  ClientDecision on_client_request(const std::string& user, const http::Request& request,
                                   SimTime now) override {
    return engine_.on_client_request(user, request, now);
  }
  void on_origin_response(const std::string& user, const http::Request& request,
                          const http::Response& response, SimTime now) override {
    engine_.on_origin_response(user, request, response, now);
  }
  void on_prefetch_response(const std::string& user, const PrefetchJob& job,
                            const http::Response& response, SimTime now,
                            double response_time_ms) override {
    engine_.on_prefetch_response(user, job, response, now, response_time_ms);
  }
  void on_prefetch_dropped(const std::string& user, const PrefetchJob& job,
                           SimTime now) override {
    engine_.on_prefetch_dropped(user, job, now);
  }
  std::vector<PrefetchJob> take_prefetches(const std::string& user, SimTime now) override {
    return engine_.take_prefetches(user, now);
  }
  const ProxyStats& stats() const override { return engine_.stats(); }
  obs::MetricsRegistry* metrics() override { return &engine_.metrics(); }

  ProxyEngine& engine() { return engine_; }
  const ProxyEngine& engine() const { return engine_; }

 private:
  ProxyEngine engine_;
};

// Extract the absolute http(s) URLs embedded in a response body.
std::vector<std::string> extract_urls(std::string_view body);

class LooxyEngine final : public ProxyLike {
 public:
  // expiration: freshness window for prefetched responses (Looxy caches too).
  explicit LooxyEngine(std::optional<Duration> expiration = minutes(30));

  ClientDecision on_client_request(const std::string& user, const http::Request& request,
                                   SimTime now) override;
  void on_origin_response(const std::string& user, const http::Request& request,
                          const http::Response& response, SimTime now) override;
  void on_prefetch_response(const std::string& user, const PrefetchJob& job,
                            const http::Response& response, SimTime now,
                            double response_time_ms) override;
  std::vector<PrefetchJob> take_prefetches(const std::string& user, SimTime now) override;
  const ProxyStats& stats() const override { return stats_; }

 private:
  struct UserState {
    PrefetchCache cache;
    std::set<std::string> inflight;  // URLs already being prefetched
    std::vector<PrefetchJob> pending;
  };
  UserState& user_state(const std::string& user);

  std::optional<Duration> expiration_;
  std::map<std::string, std::unique_ptr<UserState>> users_;
  ProxyStats stats_;
};

// PALOMA-flavoured baseline: emits, once per user, the prefetch requests that
// are fully concrete in the signature set (no holes anywhere). Serves exact
// matches like the others.
class StaticOnlyEngine final : public ProxyLike {
 public:
  explicit StaticOnlyEngine(const SignatureSet* signatures,
                            std::optional<Duration> expiration = minutes(30));

  ClientDecision on_client_request(const std::string& user, const http::Request& request,
                                   SimTime now) override;
  void on_origin_response(const std::string& user, const http::Request& request,
                          const http::Response& response, SimTime now) override;
  void on_prefetch_response(const std::string& user, const PrefetchJob& job,
                            const http::Response& response, SimTime now,
                            double response_time_ms) override;
  std::vector<PrefetchJob> take_prefetches(const std::string& user, SimTime now) override;
  const ProxyStats& stats() const override { return stats_; }

  // Requests reconstructible from static analysis alone.
  std::size_t statically_complete() const { return complete_.size(); }

 private:
  struct UserState {
    PrefetchCache cache;
    bool seeded = false;
  };

  const SignatureSet* signatures_;
  std::optional<Duration> expiration_;
  std::vector<http::Request> complete_;
  std::map<std::string, std::unique_ptr<UserState>> users_;
  ProxyStats stats_;
};

}  // namespace appx::core
