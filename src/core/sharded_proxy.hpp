// Sharded proxy runtime: N independent ProxyEngines behind one session API.
//
// The paper keeps all run-time state per user (§2/§5), which makes the
// engine embarrassingly shardable: a user's every event touches only its own
// learning/cache/scheduler state. ShardedProxyEngine exploits that —
//
//   * users are assigned to shards by fnv1a(user) % shard_count (stable, so
//     a UserId's shard never changes);
//   * each shard is a full ProxyEngine with its own mutex, its own user
//     slot table, its own deep copy of the signature set (the pattern
//     layer's lazy match caches are unsynchronised by contract) and a
//     probability-coin stream seeded seed ^ shard;
//   * all shards contribute deltas into ONE shared obs::MetricsRegistry, so
//     /appx/metrics, stats() aggregation and the prefetch-accounting
//     invariant (responses + failures + dropped == issued) hold fleet-wide.
//
// Events for users on different shards proceed in parallel; the per-shard
// lock is held only for the engine event itself (microseconds), never for
// network I/O. thread_safe() is true: front ends drive sessions from many
// threads with no global engine lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine_options.hpp"
#include "core/proxy.hpp"
#include "core/session.hpp"
#include "obs/metrics.hpp"

namespace appx::core {

class ShardedProxyEngine final : public ProxyLike {
 public:
  // `signatures` and `config` must outlive the engine. options.shards == 0
  // picks hardware_concurrency (min 1). Throws on invalid options.
  ShardedProxyEngine(const SignatureSet* signatures, const ProxyConfig* config,
                     EngineOptions options = {});

  // --- session API (thread-safe; see core/session.hpp) ----------------------

  UserId resolve_user(std::string_view user, SimTime now) override;
  void on_request(UserId& user, const http::Request& request, SimTime now,
                  Decision* out) override;
  void on_response(UserId& user, const http::Request& request, const http::Response& response,
                   SimTime now, Decision* out) override;
  void on_prefetch_response(UserId& user, const PrefetchJob& job,
                            const http::Response& response, SimTime now,
                            double response_time_ms, Decision* out) override;
  void on_prefetch_dropped(UserId& user, const PrefetchJob& job, SimTime now) override;
  void pump(UserId& user, SimTime now, Decision* out) override;
  bool thread_safe() const override { return true; }

  // --- durable learned state (DESIGN.md §5k) --------------------------------
  //
  // User entries from EVERY shard merge into one "users" section: restore
  // re-routes each user by hash, so a snapshot taken under one shard layout
  // restores cleanly under another (and a single-shard snapshot restores
  // into a sharded engine). The shared per-app value model is snapshotted
  // once; per-shard sig stats keep per-shard sections.
  void snapshot_to(SnapshotBuilder& builder) const override;
  std::size_t restore_from(const SnapshotView& view, SimTime now) override;
  std::vector<std::uint8_t> export_user(std::string_view user) const override;
  bool import_user(const std::vector<std::uint8_t>& blob, SimTime now) override;

  // --- introspection --------------------------------------------------------

  // Fleet-wide stats: every shard's instruments point into the shared
  // registry, so any shard's compatibility view reads the aggregated totals.
  const ProxyStats& stats() const override { return shards_.front()->engine->stats(); }
  obs::MetricsRegistry* metrics() override { return &registry_; }
  const obs::MetricsRegistry* metrics() const { return &registry_; }

  std::size_t shard_count() const { return shards_.size(); }
  // Direct access to one shard (tests, stats drill-down). NOT synchronised;
  // use only while no other thread drives the engine.
  ProxyEngine& shard(std::size_t i) { return *shards_[i]->engine; }
  const ProxyEngine& shard(std::size_t i) const { return *shards_[i]->engine; }
  // Which shard owns this user name.
  std::size_t shard_index_for(std::string_view user) const;

  // Users resident across all shards, read from the shared registry gauge
  // every shard maintains by delta (safe concurrently with engine events;
  // users_.size() of individual shards would race with their locks).
  std::size_t user_count() const;

  // Per-user drill-down, routed to the owning shard under its lock.
  const LearningEngine* learning_for(const std::string& user) const;
  const PrefetchCache* cache_for(const std::string& user) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    // Per-shard deep copy of the signature set: the pattern layer's lazy
    // match caches are unsynchronised, so sharing one set across
    // concurrently-matching shards would race. Declared before engine (the
    // engine holds a pointer into it).
    SignatureSet signatures;
    std::unique_ptr<ProxyEngine> engine;
  };

  Shard& shard_for(const UserId& id) const;

  // Declared before shards_: shard engines and their per-user state hold
  // pointers into the registry and deposit gauge deltas on destruction.
  obs::MetricsRegistry registry_;
  // One per-app value model shared by all shards (internally synchronized):
  // a signature's worth is a property of the app's request graph, so
  // fleet-wide evidence pools here instead of each shard re-exploring it.
  // Declared before shards_: per-user cache destructors fire hooks into it.
  policy::SignatureModel sig_model_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace appx::core
