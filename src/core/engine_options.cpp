#include "core/engine_options.hpp"

#include <cmath>

#include "core/config.hpp"

namespace appx::core {

util::Error EngineOptions::validate() const {
  if (max_outstanding_prefetches == 0) {
    return util::Error::failure(
        "EngineOptions.max_outstanding_prefetches must be >= 1 (0 would silently "
        "disable prefetching)");
  }
  if (user_idle_timeout && *user_idle_timeout <= 0) {
    return util::Error::failure(
        "EngineOptions.user_idle_timeout must be positive (use nullopt to disable "
        "idle eviction)");
  }
  if (!std::isfinite(scheduler_time_weight) || scheduler_time_weight < 0) {
    return util::Error::failure("EngineOptions.scheduler_time_weight must be finite and >= 0");
  }
  if (!std::isfinite(scheduler_hit_weight) || scheduler_hit_weight < 0) {
    return util::Error::failure("EngineOptions.scheduler_hit_weight must be finite and >= 0");
  }
  if (util::Error err = policy.validate()) return err;
  if (connect_timeout < 0 || io_timeout < 0 || request_deadline < 0) {
    return util::Error::failure(
        "EngineOptions timeouts must be >= 0 (0 disables the corresponding bound)");
  }
  if (prefetch_workers == 0) {
    return util::Error::failure("EngineOptions.prefetch_workers must be >= 1");
  }
  if (listen_backlog < 0) {
    return util::Error::failure(
        "EngineOptions.listen_backlog must be >= 0 (0 = SOMAXCONN, the system "
        "maximum accept-queue depth)");
  }
  if (io_backend != "" && io_backend != "epoll" && io_backend != "uring" &&
      io_backend != "auto") {
    return util::Error::failure(
        "EngineOptions.io_backend must be \"\" (environment/default), \"epoll\", "
        "\"uring\" or \"auto\"");
  }
  if (conn_idle_timeout < 0) {
    return util::Error::failure(
        "EngineOptions.conn_idle_timeout must be >= 0 (0 disables the idle timer)");
  }
  if (upstream_idle_timeout < 0) {
    return util::Error::failure(
        "EngineOptions.upstream_idle_timeout must be >= 0 (0 = pooled connections never "
        "age out)");
  }
  if (reader_limits.max_head_bytes == 0) {
    return util::Error::failure("EngineOptions.reader_limits.max_head_bytes must be >= 1");
  }
  if (trace_ring_capacity == 0) {
    return util::Error::failure("EngineOptions.trace_ring_capacity must be >= 1");
  }
  if (metrics_snapshot_interval <= 0 && !metrics_snapshot_path.empty()) {
    return util::Error::failure(
        "EngineOptions.metrics_snapshot_interval must be positive when snapshots are "
        "enabled");
  }
  if (state_snapshot_interval <= 0 && !state_snapshot_path.empty()) {
    return util::Error::failure(
        "EngineOptions.state_snapshot_interval must be positive when state snapshots "
        "are enabled");
  }
  return util::Error();
}

EngineOptions EngineOptions::from_config(const ProxyConfig& config) {
  EngineOptions options;
  options.max_outstanding_prefetches = config.max_outstanding_prefetches;
  options.max_queued_prefetches = config.max_queued_prefetches;
  options.cache_max_entries = config.cache_max_entries;
  options.cache_max_bytes = config.cache_max_bytes;
  options.max_users = config.max_users;
  options.user_idle_timeout = config.user_idle_timeout;
  options.scheduler_time_weight = config.scheduler_time_weight;
  options.scheduler_hit_weight = config.scheduler_hit_weight;
  options.policy = config.policy;
  return options;
}

}  // namespace appx::core
