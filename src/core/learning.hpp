// Dynamic learning (paper §4.2, Figs. 6–8).
//
// Static analysis yields signatures whose request templates contain holes —
// values only known at run time. The learning engine watches live
// transactions on the proxy and:
//
//   * predecessor case — when the observed transaction's response feeds other
//     signatures (outgoing dependency edges), it extracts the dependency
//     values from the response body and creates/updates *request instances*
//     of each successor, replicating one instance per element when a
//     dependency path traverses an array ([*], the "30 thumbnails from one
//     feed" case);
//
//   * successor case — when the observed transaction *is* a prefetchable
//     request, it learns the run-time values (host, Cookie, User-Agent,
//     version fields...) and the current branch condition (which optional
//     fields are present, Fig. 8), and adapts existing instances to the most
//     recent condition.
//
// An instance whose required holes are all bound is *ready*; the engine hands
// it to the proxy, which applies policy (probability, conditions, budget) and
// issues the prefetch.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/signature.hpp"
#include "json/json.hpp"
#include "util/byte_io.hpp"

namespace appx::core {

// A prefetch request under construction for one successor signature.
class RequestInstance {
 public:
  RequestInstance(const TransactionSignature* sig, Bindings dependency_bindings);

  const TransactionSignature& signature() const { return *sig_; }
  const Bindings& bindings() const { return bindings_; }
  const Bindings& dependency_bindings() const { return dependency_bindings_; }

  // Merge additional bindings (later wins — "adaptation to recent condition").
  void bind(const Bindings& more);

  // Record the instance class: optional fields currently believed absent.
  void set_absent_optional(const std::vector<std::string>& absent);
  const std::set<std::string>& absent_optional() const { return absent_optional_; }

  // Fingerprint of the *dependency* bindings; identifies the logical target
  // so re-learning the same feed does not duplicate instances.
  const std::string& fingerprint() const { return fingerprint_; }

  // True when every hole required by the present fields is bound.
  bool ready() const;

  // Holes still missing (for diagnostics / tests).
  std::vector<std::string> missing_holes() const;

  // Build the concrete HTTP request. Requires ready().
  http::Request materialize() const;

  // "Issued" here means "emitted to the proxy at least once"; it is used for
  // pool eviction, not for deduplication (the proxy dedups against its cache
  // and in-flight set so expired entries can be re-prefetched).
  bool issued() const { return issued_; }
  void mark_issued() { issued_ = true; }
  void reset_issued() { issued_ = false; }

 private:
  bool field_present(const RequestField& field) const;

  const TransactionSignature* sig_;
  Bindings bindings_;             // dependency + runtime bindings merged
  Bindings dependency_bindings_;  // the subset that identifies the target
  std::set<std::string> absent_optional_;
  std::string fingerprint_;
  bool issued_ = false;
};

// A ready-to-issue prefetch handed to the proxy.
struct ReadyPrefetch {
  const TransactionSignature* signature = nullptr;
  RequestInstance* instance = nullptr;  // owned by the engine
  http::Request request;
  // Body of the predecessor response that triggered this instance (empty
  // object when triggered by a successor observation); used to evaluate
  // config FieldConditions.
  json::Value predecessor_body;
};

// Counters exposed for evaluation and tests.
struct LearningStats {
  std::size_t transactions_observed = 0;
  std::size_t signature_matches = 0;
  std::size_t predecessor_events = 0;
  std::size_t successor_events = 0;
  std::size_t instances_created = 0;
  std::size_t instances_ready = 0;
};

// One engine per (app, user) context: run-time values such as cookies are
// user-specific, so learned state is never shared across users (paper §2).
class LearningEngine {
 public:
  // `host_apps` (optional, not owned) routes requests to one app's
  // signatures in multi-app deployments; see ProxyConfig::host_apps.
  explicit LearningEngine(const SignatureSet* signatures,
                          const std::map<std::string, std::string>* host_apps = nullptr);

  // Feed one observed transaction through the Fig. 6 flow. Returns the
  // instances that became ready (not yet issued) as a result.
  std::vector<ReadyPrefetch> observe(const http::Request& request,
                                     const http::Response& response);

  const LearningStats& stats() const { return stats_; }

  // Pending (created, not yet ready or not yet issued) instances of a
  // signature; exposed for tests and for the proxy's bookkeeping.
  std::vector<const RequestInstance*> instances_of(std::string_view sig_id) const;

  // --- Persistence (DESIGN.md §5k) -----------------------------------------
  //
  // Learned state splits into two independently versioned payloads: the
  // resolved wildcards (runtime bindings + instance class per signature) and
  // the dependency flows (live request instances). Both restore by MERGING
  // into the current state — restoring into a fresh engine reproduces the
  // saved one — and silently drop signatures the current signature set does
  // not know (cross-version app updates shrink, never crash).
  static constexpr std::uint32_t kWildcardsPersistVersion = 1;
  static constexpr std::uint32_t kFlowsPersistVersion = 1;
  void persist_wildcards(ByteWriter& out) const;
  void restore_wildcards(ByteReader& in, std::uint32_t version);
  void persist_flows(ByteWriter& out) const;
  void restore_flows(ByteReader& in, std::uint32_t version);

 private:
  struct SignatureState {
    // Most recent values of the signature's run-time holes.
    Bindings runtime_bindings;
    // Most recently observed instance class (absent optional field keys).
    std::vector<std::string> recent_absent;
    bool observed = false;
    // Live instances keyed by dependency fingerprint.
    std::map<std::string, std::unique_ptr<RequestInstance>> instances;
  };

  void learn_from_predecessor(const TransactionSignature& pred, const http::Response& response,
                              std::vector<ReadyPrefetch>& out);
  void learn_from_successor(const TransactionSignature& succ,
                            const TransactionSignature::MatchResult& match);
  void collect_ready(const TransactionSignature& sig, const json::Value& predecessor_body,
                     std::vector<ReadyPrefetch>& out);

  // Extract per-instance binding sets for `edges` from a predecessor
  // response body (handles [*] replication and grouped multi-value paths).
  static std::vector<Bindings> binding_sets_for(
      const std::vector<const DependencyEdge*>& edges, const json::Value& body);

  const SignatureSet* signatures_;
  const std::map<std::string, std::string>* host_apps_;
  std::map<std::string, SignatureState, std::less<>> states_;
  LearningStats stats_;
};

}  // namespace appx::core
