#include "core/sharded_proxy.hpp"

#include <thread>

#include "core/signature_index.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace appx::core {

ShardedProxyEngine::ShardedProxyEngine(const SignatureSet* signatures,
                                       const ProxyConfig* config, EngineOptions options) {
  if (signatures == nullptr) {
    throw InvalidArgumentError("ShardedProxyEngine: null signature set");
  }
  if (config == nullptr) throw InvalidArgumentError("ShardedProxyEngine: null config");
  options.validate().throw_if_error();
  std::size_t count = options.shards;
  if (count == 0) {
    count = std::max(1u, std::thread::hardware_concurrency());
  }
  // The pattern layer keeps lazy match state (compiled hole shapes, the
  // regex DFA cache, the dispatch index) mutable-under-const and
  // unsynchronised; its contract is that concurrent matching on a shared set
  // is serialised by the caller. Shards match concurrently by design, so
  // each shard gets its own deep copy of the signature set — lazy caches
  // warm per shard with zero synchronisation on the match hot path.
  const std::vector<std::uint8_t> blob = signatures->serialize();
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    EngineOptions shard_options = options;
    // Independent probability-coin streams per shard; a user's coin is still
    // deterministic because its shard assignment is a pure hash.
    shard_options.seed = options.seed ^ static_cast<std::uint64_t>(i);
    auto shard = std::make_unique<Shard>();
    shard->signatures = SignatureSet::deserialize(blob);
    shard->engine = std::make_unique<ProxyEngine>(&shard->signatures, config,
                                                  std::move(shard_options), &registry_,
                                                  static_cast<std::uint32_t>(i), &sig_model_);
    shards_.push_back(std::move(shard));
  }
  // Each shard's engine registered the sigindex gauge callbacks against its
  // own set copy (last registration wins); replace them with fleet-wide sums
  // so /appx/metrics reports dispatch-index totals across all shards. Reads
  // are unsynchronised snapshots, as they were for the single-shard engine.
  const auto sum_over_shards = [this](auto field) {
    return [this, field]() {
      std::int64_t total = 0;
      for (const auto& shard : shards_) total += field(shard->signatures.index().totals());
      return total;
    };
  };
  registry_.gauge_callback("appx_sigindex_lookups_total",
                           sum_over_shards([](const auto& t) { return t.lookups; }));
  registry_.gauge_callback("appx_sigindex_candidates_total",
                           sum_over_shards([](const auto& t) { return t.candidates; }));
  registry_.gauge_callback("appx_sigindex_confirmed_total",
                           sum_over_shards([](const auto& t) { return t.confirmed; }));
}

std::size_t ShardedProxyEngine::shard_index_for(std::string_view user) const {
  return static_cast<std::size_t>(fnv1a(user) % shards_.size());
}

ShardedProxyEngine::Shard& ShardedProxyEngine::shard_for(const UserId& id) const {
  if (!id.valid()) throw InvalidArgumentError("ShardedProxyEngine: unresolved UserId");
  if (id.shard() >= shards_.size()) {
    throw InvalidArgumentError("ShardedProxyEngine: UserId from a different shard layout");
  }
  return *shards_[id.shard()];
}

UserId ShardedProxyEngine::resolve_user(std::string_view user, SimTime now) {
  Shard& shard = *shards_[shard_index_for(user)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.engine->resolve_user(user, now);
}

void ShardedProxyEngine::on_request(UserId& user, const http::Request& request, SimTime now,
                                    Decision* out) {
  Shard& shard = shard_for(user);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.engine->on_request(user, request, now, out);
}

void ShardedProxyEngine::on_response(UserId& user, const http::Request& request,
                                     const http::Response& response, SimTime now,
                                     Decision* out) {
  Shard& shard = shard_for(user);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.engine->on_response(user, request, response, now, out);
}

void ShardedProxyEngine::on_prefetch_response(UserId& user, const PrefetchJob& job,
                                              const http::Response& response, SimTime now,
                                              double response_time_ms, Decision* out) {
  Shard& shard = shard_for(user);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.engine->on_prefetch_response(user, job, response, now, response_time_ms, out);
}

void ShardedProxyEngine::on_prefetch_dropped(UserId& user, const PrefetchJob& job,
                                             SimTime now) {
  Shard& shard = shard_for(user);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.engine->on_prefetch_dropped(user, job, now);
}

void ShardedProxyEngine::pump(UserId& user, SimTime now, Decision* out) {
  Shard& shard = shard_for(user);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.engine->pump(user, now, out);
}

// --- durable learned state (DESIGN.md §5k) -----------------------------------

void ShardedProxyEngine::snapshot_to(SnapshotBuilder& builder) const {
  // Merge every shard's user entries into ONE section so restore can route
  // users by hash under any shard layout. Entries are collected per shard
  // under that shard's lock; the fleet keeps serving while one shard dumps.
  ByteWriter users;
  std::vector<ByteWriter> entries(shards_.size());
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i]->mutex);
    total += static_cast<std::uint32_t>(shards_[i]->engine->user_count());
    shards_[i]->engine->persist_user_entries(entries[i]);
  }
  users.u32(total);
  for (const ByteWriter& w : entries) users.raw(w.data().data(), w.size());
  builder.add_raw("users", ProxyEngine::kUsersSectionVersion, users);

  ByteWriter model;
  sig_model_.persist(model);
  builder.add_raw("policy.model", policy::SignatureModel::kPersistVersion, model);

  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->engine->persist_sig_stats_to(builder);
  }
}

std::size_t ShardedProxyEngine::restore_from(const SnapshotView& view, SimTime now) {
  std::size_t restored = 0;
  const SnapshotView::Section* users = view.find("users");
  if (users != nullptr && users->version <= ProxyEngine::kUsersSectionVersion) {
    ByteReader in(users->data, users->size);
    const std::uint32_t count = in.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string name = in.str();
      const std::uint64_t len = in.u64();
      const std::uint8_t* data = in.cursor();
      in.skip(len);
      ByteReader entry(data, len);
      Shard& shard = *shards_[shard_index_for(name)];
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.engine->restore_user_entry(name, entry, users->version, now);
      ++restored;
    }
  }
  const SnapshotView::Section* model = view.find("policy.model");
  if (model != nullptr && model->version <= policy::SignatureModel::kPersistVersion) {
    ByteReader in(model->data, model->size);
    sig_model_.restore(in, model->version, now);
  }
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->engine->restore_sig_stats_from(view);
  }
  return restored;
}

std::vector<std::uint8_t> ShardedProxyEngine::export_user(std::string_view user) const {
  const Shard& shard = *shards_[shard_index_for(user)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.engine->export_user(user);
}

bool ShardedProxyEngine::import_user(const std::vector<std::uint8_t>& blob, SimTime now) {
  // Parse once here to learn the user's name, then route to the owning shard
  // (which re-validates under its own lock).
  const SnapshotView view(blob);
  const SnapshotView::Section* section = view.find("user");
  if (section == nullptr || section->version > ProxyEngine::kUsersSectionVersion) return false;
  ByteReader in(section->data, section->size);
  const std::string name = in.str();
  Shard& shard = *shards_[shard_index_for(name)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.engine->import_user(blob, now);
}

std::size_t ShardedProxyEngine::user_count() const {
  return static_cast<std::size_t>(registry_.gauge_value("appx_proxy_users"));
}

const LearningEngine* ShardedProxyEngine::learning_for(const std::string& user) const {
  const Shard& shard = *shards_[shard_index_for(user)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.engine->learning_for(user);
}

const PrefetchCache* ShardedProxyEngine::cache_for(const std::string& user) const {
  const Shard& shard = *shards_[shard_index_for(user)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.engine->cache_for(user);
}

}  // namespace appx::core
