#include "core/scheduler.hpp"

#include <algorithm>

namespace appx::core {

void SignatureStats::bind_registry(obs::MetricsRegistry* registry) {
  registry_ = registry;
  // Signatures already seen resolve their metrics on next use.
  for (auto& entry : per_sig_) {
    entry.second.response_time_us = nullptr;
    entry.second.lookups = nullptr;
    entry.second.lookup_hits = nullptr;
  }
}

SignatureStats::PerSig& SignatureStats::sig(std::string_view sig_id) {
  PerSig& per = per_sig_[std::string(sig_id)];
  if (registry_ != nullptr && per.lookups == nullptr) {
    const obs::Labels labels{{"sig", std::string(sig_id)}};
    per.response_time_us =
        &registry_->histogram(obs::labeled("appx_signature_response_time_us", labels));
    per.lookups = &registry_->counter(obs::labeled("appx_signature_lookups_total", labels));
    per.lookup_hits = &registry_->counter(obs::labeled("appx_signature_hits_total", labels));
  }
  return per;
}

void SignatureStats::record_response_time(std::string_view sig_id, double ms) {
  PerSig& per = sig(sig_id);
  per.response_time.add(ms);
  if (per.response_time_us != nullptr) {
    per.response_time_us->record(static_cast<std::int64_t>(ms * 1000.0));
  }
}

void SignatureStats::record_lookup(std::string_view sig_id, bool hit) {
  PerSig& per = sig(sig_id);
  per.hits.record(hit);
  if (per.lookups != nullptr) {
    per.lookups->inc();
    if (hit) per.lookup_hits->inc();
  }
}

double SignatureStats::avg_response_time_ms(std::string_view sig_id) const {
  const auto it = per_sig_.find(sig_id);
  if (it == per_sig_.end() || !it->second.response_time.has_value()) return 0;
  return it->second.response_time.value();
}

double SignatureStats::hit_rate(std::string_view sig_id) const {
  const auto it = per_sig_.find(sig_id);
  if (it == per_sig_.end()) return 0.5;
  return it->second.hits.rate();
}

void SignatureStats::persist(ByteWriter& out) const {
  out.u64(per_sig_.size());
  for (const auto& [sig_id, per] : per_sig_) {
    out.str(sig_id);
    out.f64(per.response_time.value());
    out.u64(per.response_time.count());
    out.u64(per.hits.hits());
    out.u64(per.hits.total());
  }
}

void SignatureStats::restore(ByteReader& in, std::uint32_t version) {
  (void)version;  // v1 is the only layout so far
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string sig_id = in.str();
    PerSig& per = sig(sig_id);
    const double rt = in.f64();
    per.response_time.seed(rt, in.u64());
    const std::uint64_t hits = in.u64();
    per.hits.seed(hits, in.u64());
  }
}

PrefetchScheduler::PrefetchScheduler(Weights weights, std::size_t max_outstanding,
                                     std::size_t max_queued)
    : weights_(weights), max_outstanding_(max_outstanding), max_queued_(max_queued) {}

PrefetchScheduler::~PrefetchScheduler() {
  gauge_add(metrics_.queued, -static_cast<std::int64_t>(queue_.size()));
  gauge_add(metrics_.outstanding, -static_cast<std::int64_t>(outstanding_));
}

void PrefetchScheduler::bind_metrics(const Metrics& metrics) {
  gauge_add(metrics_.queued, -static_cast<std::int64_t>(queue_.size()));
  gauge_add(metrics_.outstanding, -static_cast<std::int64_t>(outstanding_));
  metrics_ = metrics;
  gauge_add(metrics_.queued, static_cast<std::int64_t>(queue_.size()));
  gauge_add(metrics_.outstanding, static_cast<std::int64_t>(outstanding_));
}

std::optional<PrefetchJob> PrefetchScheduler::enqueue(PrefetchJob job,
                                                      const SignatureStats& stats) {
  job.priority = weights_.time_weight * stats.avg_response_time_ms(job.sig_id) +
                 weights_.hit_weight * stats.hit_rate(job.sig_id);
  // Stable position: after all jobs with priority >= ours (FIFO among equals).
  const auto pos = std::find_if(queue_.begin(), queue_.end(), [&](const PrefetchJob& other) {
    return other.priority < job.priority;
  });
  queue_.insert(pos, std::move(job));
  if (max_queued_ > 0 && queue_.size() > max_queued_) {
    // Evict the lowest-priority job — the sorted queue's back — rather than
    // the oldest: a long-waiting high-value job survives a burst of low-value
    // arrivals, and an incoming job below everything queued bounces straight
    // out. Net gauge effect of insert-then-evict is zero.
    PrefetchJob evicted = std::move(queue_.back());
    queue_.pop_back();
    return evicted;
  }
  gauge_add(metrics_.queued, 1);
  return std::nullopt;
}

std::optional<PrefetchJob> PrefetchScheduler::dequeue() {
  if (queue_.empty() || outstanding_ >= max_outstanding_) return std::nullopt;
  PrefetchJob job = std::move(queue_.front());
  queue_.erase(queue_.begin());
  ++outstanding_;
  gauge_add(metrics_.queued, -1);
  gauge_add(metrics_.outstanding, 1);
  return job;
}

void PrefetchScheduler::on_completed() {
  if (outstanding_ > 0) {
    --outstanding_;
    gauge_add(metrics_.outstanding, -1);
  }
  ++completed_;
}

void PrefetchScheduler::on_dropped() {
  if (outstanding_ > 0) {
    --outstanding_;
    gauge_add(metrics_.outstanding, -1);
  }
  ++dropped_;
}

}  // namespace appx::core
