#include "core/scheduler.hpp"

#include <algorithm>

namespace appx::core {

void SignatureStats::record_response_time(std::string_view sig_id, double ms) {
  per_sig_[std::string(sig_id)].response_time.add(ms);
}

void SignatureStats::record_lookup(std::string_view sig_id, bool hit) {
  per_sig_[std::string(sig_id)].hits.record(hit);
}

double SignatureStats::avg_response_time_ms(std::string_view sig_id) const {
  const auto it = per_sig_.find(sig_id);
  if (it == per_sig_.end() || !it->second.response_time.has_value()) return 0;
  return it->second.response_time.value();
}

double SignatureStats::hit_rate(std::string_view sig_id) const {
  const auto it = per_sig_.find(sig_id);
  if (it == per_sig_.end()) return 0.5;
  return it->second.hits.rate();
}

PrefetchScheduler::PrefetchScheduler(Weights weights, std::size_t max_outstanding)
    : weights_(weights), max_outstanding_(max_outstanding) {}

void PrefetchScheduler::enqueue(PrefetchJob job, const SignatureStats& stats) {
  job.priority = weights_.time_weight * stats.avg_response_time_ms(job.sig_id) +
                 weights_.hit_weight * stats.hit_rate(job.sig_id);
  // Stable position: after all jobs with priority >= ours (FIFO among equals).
  const auto pos = std::find_if(queue_.begin(), queue_.end(), [&](const PrefetchJob& other) {
    return other.priority < job.priority;
  });
  queue_.insert(pos, std::move(job));
}

std::optional<PrefetchJob> PrefetchScheduler::dequeue() {
  if (queue_.empty() || outstanding_ >= max_outstanding_) return std::nullopt;
  PrefetchJob job = std::move(queue_.front());
  queue_.erase(queue_.begin());
  ++outstanding_;
  return job;
}

void PrefetchScheduler::on_completed() {
  if (outstanding_ > 0) --outstanding_;
  ++completed_;
}

void PrefetchScheduler::on_dropped() {
  if (outstanding_ > 0) --outstanding_;
  ++dropped_;
}

}  // namespace appx::core
