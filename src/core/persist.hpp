// Durable learned state (DESIGN.md §5k): the versioned snapshot container.
//
// APPx's acceleration only pays off once the proxy has *learned* — resolved
// wildcards, dependency flows, per-signature value estimates. Cluster mode
// (warm restart, user handoff between nodes) needs that state to survive the
// process, so every learned component implements core::Persistable and the
// engine packs them into one self-describing binary container:
//
//   magic "APPXSNAP" | u32 container version | u32 section count
//   sections: { str name, u32 section version, u64 payload length, payload }
//   trailing u64 FNV-1a checksum over everything before it
//
// Versioning rules:
//   * A container whose version is NEWER than this build understands is
//     rejected with SnapshotVersionError — an old node never misparses a new
//     node's snapshot.
//   * Unknown section NAMES are skipped: an old snapshot restored by a newer
//     build (or vice versa) warms every component both sides know about.
//   * A section whose version is newer than the component's current version
//     leaves that component cold (restore_into returns false); the rest of
//     the snapshot still restores.
//   * Truncation/bit-rot fails the checksum before any section is parsed:
//     SnapshotCorruptError, never a crash or a half-restored engine.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/byte_io.hpp"
#include "util/error.hpp"

namespace appx::core {

// Bumped when the CONTAINER layout changes (not when a component's section
// payload evolves — sections carry their own versions).
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

// Any snapshot failure; catch this to degrade to a cold start.
class SnapshotError : public Error {
 public:
  explicit SnapshotError(const std::string& what) : Error(what) {}
};

// The blob comes from a future build: forward-incompatible, rejected cleanly.
class SnapshotVersionError : public SnapshotError {
 public:
  explicit SnapshotVersionError(const std::string& what) : SnapshotError(what) {}
};

// Bad magic, failed checksum, or a section table that does not parse.
class SnapshotCorruptError : public SnapshotError {
 public:
  explicit SnapshotCorruptError(const std::string& what) : SnapshotError(what) {}
};

// One serializable learned-state component. Implementations: the learning
// engine's resolved-wildcard and dependency-flow facets, the policy value
// model, per-signature scheduler stats (see DESIGN.md §5k for the catalog).
class Persistable {
 public:
  virtual ~Persistable() = default;

  // Stable section name, e.g. "learning.wildcards".
  virtual std::string_view section_name() const = 0;
  // Version of the payload persist() writes; restore() must accept any
  // version <= this and may be handed older payloads.
  virtual std::uint32_t section_version() const = 0;

  virtual void persist(ByteWriter& out) const = 0;
  // `version` is the section version the payload was written with (always
  // <= section_version(); newer payloads never reach restore()).
  virtual void restore(ByteReader& in, std::uint32_t version) = 0;
};

// Adapter for components that are facets of a larger object (one object,
// several sections) or engine-level closures over per-user state.
class PersistableFn final : public Persistable {
 public:
  using Save = std::function<void(ByteWriter&)>;
  using Load = std::function<void(ByteReader&, std::uint32_t)>;

  PersistableFn(std::string name, std::uint32_t version, Save save, Load load)
      : name_(std::move(name)), version_(version), save_(std::move(save)),
        load_(std::move(load)) {}

  std::string_view section_name() const override { return name_; }
  std::uint32_t section_version() const override { return version_; }
  void persist(ByteWriter& out) const override { save_(out); }
  void restore(ByteReader& in, std::uint32_t version) override {
    if (load_) load_(in, version);
  }

 private:
  std::string name_;
  std::uint32_t version_;
  Save save_;
  Load load_;
};

// Accumulates sections and renders the container.
class SnapshotBuilder {
 public:
  void add(const Persistable& component);
  void add_raw(std::string_view name, std::uint32_t version, const ByteWriter& payload);

  std::size_t section_count() const { return sections_.size(); }
  // Render the container (magic, version, table, checksum). The builder can
  // keep accumulating and finish() again; each call re-renders.
  std::vector<std::uint8_t> finish() const;

 private:
  struct Section {
    std::string name;
    std::uint32_t version;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections_;
};

// Parsed view over a snapshot blob. Parsing validates magic, container
// version and checksum up front; section payloads are only decoded by the
// component they belong to.
class SnapshotView {
 public:
  // Throws SnapshotCorruptError / SnapshotVersionError. The blob must outlive
  // the view (payloads are referenced, not copied).
  explicit SnapshotView(const std::vector<std::uint8_t>& blob);

  struct Section {
    std::uint32_t version = 0;
    const std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };

  std::uint32_t container_version() const { return container_version_; }
  std::size_t section_count() const { return sections_.size(); }
  const Section* find(std::string_view name) const;
  const std::map<std::string, Section, std::less<>>& sections() const { return sections_; }

  // Restore one component from its section. Returns false — leaving the
  // component untouched (cold) — when the section is absent or carries a
  // version newer than the component supports. Decode errors inside the
  // payload surface as SnapshotCorruptError.
  bool restore_into(Persistable& component) const;

 private:
  std::uint32_t container_version_ = 0;
  std::map<std::string, Section, std::less<>> sections_;
};

}  // namespace appx::core
