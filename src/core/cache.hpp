// Prefetched-response cache with expiry (paper §4.5) and bounded footprint.
//
// Keys are canonical request identities (http::Request::cache_key): the proxy
// serves a prefetched response only when the client's request is *identical*
// to the prefetched one — URI, query string, headers and body (R3: never
// alter app behaviour). Entries expire per the configuration's
// expiration_time; expired entries are misses and are dropped on lookup.
//
// The cache is bounded two ways (§5's "bounded prefetch aggressiveness"):
//   * max_entries / max_bytes caps enforced by LRU eviction on insert, so a
//     long-lived user can never grow a cache without limit;
//   * TTL expiry, applied lazily on lookup and in bulk by a periodic sweep
//     that runs every kSweepInterval inserts (entries whose key is never
//     looked up again would otherwise survive forever).
// Evictions are counted per cause (LRU vs expired) and can additionally be
// routed to external counters (the engine-wide ProxyStats).
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace appx::core {

class PrefetchCache {
 public:
  enum class Lookup { kHit, kMiss, kExpired };

  // Bounds on the cache footprint; 0 = unlimited.
  struct Limits {
    std::size_t max_entries = 0;
    Bytes max_bytes = 0;
  };

  struct Entry {
    // Shared so a hit hands out the stored response without copying the body
    // (responses can be hundreds of KB); the pointer stays valid even if the
    // entry is later overwritten, expired or evicted. Never null, so a kHit
    // lookup always returns a usable response.
    std::shared_ptr<const http::Response> response =
        std::make_shared<const http::Response>();
    std::string sig_id;
    SimTime fetched_at = 0;
    std::optional<SimTime> expires_at;  // nullopt = never expires
    bool used = false;                  // served to a client at least once

    void set_response(http::Response r) {
      response = std::make_shared<const http::Response>(std::move(r));
    }
  };

  // Registry metrics fed by the cache. The gauges are shared across caches
  // (the engine owns one per metric, every per-user cache delta-updates
  // them); a cache subtracts its remaining footprint on destruction.
  struct Metrics {
    obs::Counter* evicted_lru = nullptr;
    obs::Counter* evicted_expired = nullptr;
    obs::Gauge* entries = nullptr;  // live entries across all bound caches
    obs::Gauge* bytes = nullptr;    // live bytes across all bound caches
  };

  // Outcome callbacks feeding the policy engine's value model (DESIGN.md
  // §5j). `first_use` fires when get() serves an entry for the first time;
  // `wasted` fires when an entry leaves the cache without ever being used —
  // eviction (LRU or TTL), overwrite by a fresher prefetch, or destruction of
  // the whole cache (user teardown). clear() does not fire hooks (it is a
  // test/administrative reset, not an outcome).
  struct UsageHooks {
    std::function<void(std::string_view sig_id, Bytes bytes)> first_use;
    std::function<void(std::string_view sig_id, Bytes bytes)> wasted;
  };

  PrefetchCache() = default;
  explicit PrefetchCache(Limits limits) : limits_(limits) {}
  ~PrefetchCache();
  PrefetchCache(const PrefetchCache&) = delete;
  PrefetchCache& operator=(const PrefetchCache&) = delete;

  // Tightening the limits evicts immediately.
  void set_limits(Limits limits);
  const Limits& limits() const { return limits_; }

  // Additionally route eviction counts into external counters (may be null).
  void set_eviction_counters(std::size_t* lru, std::size_t* expired) {
    sink_lru_ = lru;
    sink_expired_ = expired;
  }

  // Bind registry metrics; current size/bytes are added to the gauges
  // immediately so a mid-life bind stays consistent.
  void bind_metrics(const Metrics& metrics);

  // Install outcome callbacks. Anything they capture must outlive the cache:
  // the `wasted` hook also fires from the destructor for entries never used.
  void set_usage_hooks(UsageHooks hooks) { hooks_ = std::move(hooks); }

  // Insert or overwrite (a fresher prefetch replaces the old response). The
  // new entry becomes most-recently-used; LRU entries are evicted until the
  // cache is back within its limits (expired entries are reaped first).
  void put(std::string key, Entry entry, SimTime now = 0);

  // Exact-match lookup. Expired entries are erased and reported as kExpired.
  // On a hit the entry is marked used, promoted to most-recently-used, and
  // the stored response returned (shared, not copied); null on miss/expiry.
  std::shared_ptr<const http::Response> get(std::string_view key, SimTime now,
                                            Lookup* result = nullptr);

  // Erasing form: an expired entry found here is dropped immediately (it must
  // not distort byte accounting until an exact-key get happens to find it).
  bool contains(std::string_view key, SimTime now);
  // Pure query for const contexts; reports expired entries as absent but
  // cannot erase them.
  bool contains(std::string_view key, SimTime now) const;

  // Drop every expired entry now. Returns the number of entries removed.
  std::size_t sweep(SimTime now);

  std::size_t size() const { return index_.size(); }
  Bytes bytes() const { return bytes_; }
  // Bytes of live entries never served to a client: waste-so-far if the cache
  // died now. O(entries); meant for end-of-run reporting, not hot paths.
  Bytes unused_bytes() const;
  std::size_t entries_inserted() const { return inserted_; }
  std::size_t entries_used() const;
  std::size_t evicted_lru() const { return evicted_lru_; }
  std::size_t evicted_expired() const { return evicted_expired_; }

  void clear();

 private:
  struct Node {
    std::string key;
    Entry entry;
    Bytes charged = 0;  // wire size accounted against max_bytes
  };
  using LruList = std::list<Node>;  // front = most recently used

  static bool expired(const Entry& entry, SimTime now) {
    return entry.expires_at && now >= *entry.expires_at;
  }
  void erase_node(LruList::iterator it, bool count_as_expired);
  void fire_wasted(const Node& node);
  void enforce_limits(SimTime now);
  void count_eviction(bool was_expired);
  // Gauge deltas; no-ops while unbound.
  void gauge_entries(std::int64_t delta);
  void gauge_bytes(Bytes delta);

  // Bulk-expire cadence: one sweep per this many put() calls.
  static constexpr std::size_t kSweepInterval = 64;

  Limits limits_;
  LruList lru_;
  std::map<std::string, LruList::iterator, std::less<>> index_;
  Bytes bytes_ = 0;
  std::size_t inserted_ = 0;
  std::size_t used_unique_ = 0;
  std::size_t evicted_lru_ = 0;
  std::size_t evicted_expired_ = 0;
  std::size_t puts_since_sweep_ = 0;
  std::size_t* sink_lru_ = nullptr;
  std::size_t* sink_expired_ = nullptr;
  Metrics metrics_;
  UsageHooks hooks_;
};

}  // namespace appx::core
