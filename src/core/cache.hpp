// Prefetched-response cache with expiry (paper §4.5).
//
// Keys are canonical request identities (http::Request::cache_key): the proxy
// serves a prefetched response only when the client's request is *identical*
// to the prefetched one — URI, query string, headers and body (R3: never
// alter app behaviour). Entries expire per the configuration's
// expiration_time; expired entries are misses and are dropped on lookup.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.hpp"
#include "util/units.hpp"

namespace appx::core {

class PrefetchCache {
 public:
  enum class Lookup { kHit, kMiss, kExpired };

  struct Entry {
    // Shared so a hit hands out the stored response without copying the body
    // (responses can be hundreds of KB); the pointer stays valid even if the
    // entry is later overwritten or expired. Never null, so a kHit lookup
    // always returns a usable response.
    std::shared_ptr<const http::Response> response =
        std::make_shared<const http::Response>();
    std::string sig_id;
    SimTime fetched_at = 0;
    std::optional<SimTime> expires_at;  // nullopt = never expires
    bool used = false;                  // served to a client at least once

    void set_response(http::Response r) {
      response = std::make_shared<const http::Response>(std::move(r));
    }
  };

  // Insert or overwrite (a fresher prefetch replaces the old response).
  void put(std::string key, Entry entry);

  // Exact-match lookup. Expired entries are erased and reported as kExpired.
  // On a hit the entry is marked used and the stored response returned
  // (shared, not copied); null on miss/expiry.
  std::shared_ptr<const http::Response> get(std::string_view key, SimTime now,
                                            Lookup* result = nullptr);

  bool contains(std::string_view key, SimTime now) const;

  std::size_t size() const { return entries_.size(); }
  std::size_t entries_inserted() const { return inserted_; }
  std::size_t entries_used() const;

  void clear();

 private:
  std::map<std::string, Entry, std::less<>> entries_;
  std::size_t inserted_ = 0;
  std::size_t used_unique_ = 0;
};

}  // namespace appx::core
