// Literal-prefilter dispatch index over a signature set.
//
// SignatureSet::match_request is on the proxy's per-message fast path: every
// client request, origin response and prefetch response is identified by
// matching it against the signatures (paper Fig. 6). A linear scan runs the
// full template machinery for every candidate, so the per-message cost grows
// with the number of signatures — and the multi-app proxy (SignatureSet::
// absorb) multiplies that by the number of accelerated apps.
//
// The index prunes candidates with two cheap invariants of template matching:
//   * the request method must equal the signature's method verbatim, and
//   * the concrete URI path must start with the longest literal prefix that
//     every match of the signature's path template shares (the leading
//     literal run, extended into the first hole's shape via
//     Regex::required_prefix).
// Signatures are bucketed by method into a byte-trie over their path
// prefixes; a lookup walks the request path once, collecting the signatures
// parked along the way, then confirms them with the full template match in
// insertion order. A literal host prefix is kept per signature as one more
// O(prefix) reject before the expensive confirmation. Results are
// bit-identical to the linear scan — the prefilter only removes signatures
// whose full match is guaranteed to fail.
//
// The index holds raw pointers into the owning SignatureSet and must be
// rebuilt after the set changes (SignatureSet does this lazily).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/signature.hpp"
#include "http/message.hpp"

namespace appx::core {

class SignatureIndex {
 public:
  explicit SignatureIndex(
      const std::vector<std::unique_ptr<TransactionSignature>>& signatures);

  // First signature (in the set's insertion order) whose templates match the
  // request; signatures of `app` only when app != "". Same contract as
  // SignatureSet::match_request.
  const TransactionSignature* match(const http::Request& request,
                                    std::string_view app = "") const;

  // Signatures surviving the method/path/host prefilter for this request, in
  // insertion order. Exposed for tests and instrumentation.
  std::vector<const TransactionSignature*> candidates(const http::Request& request) const;

  std::size_t size() const { return entries_.size(); }

  // Cumulative prefilter effectiveness, safe to read from any thread (the
  // counters are relaxed atomics; totals may be mutually skewed by in-flight
  // lookups but each is individually exact).
  struct Totals {
    std::int64_t lookups = 0;     // match() calls
    std::int64_t candidates = 0;  // signatures surviving the prefilter
    std::int64_t confirmed = 0;   // lookups that returned a signature
  };
  Totals totals() const {
    return Totals{lookups_.load(std::memory_order_relaxed),
                  candidates_.load(std::memory_order_relaxed),
                  confirmed_.load(std::memory_order_relaxed)};
  }

  // The prefilter key computed for one signature (test hook).
  struct Key {
    std::string method;
    std::string host_prefix;
    std::string path_prefix;
  };
  static Key key_for(const TransactionSignature& signature);

 private:
  struct Entry {
    const TransactionSignature* sig = nullptr;
    std::uint32_t order = 0;       // insertion index in the owning set
    std::string host_prefix;       // request host must start with this
  };
  struct TrieNode {
    // Sparse children; signature path prefixes are short and few, so a
    // linearly scanned edge list beats a 256-wide table on cache footprint.
    std::vector<std::pair<char, std::int32_t>> children;
    std::vector<std::uint32_t> entries;  // Entry indices terminating here
  };

  std::int32_t child_of(std::int32_t node, char c) const;
  void collect(const http::Request& request, std::vector<std::uint32_t>& out) const;

  std::vector<Entry> entries_;                    // insertion order
  std::map<std::string, std::int32_t> method_roots_;  // method -> trie root
  std::vector<TrieNode> nodes_;                   // shared pool, all tries
  // match() is logically const; instrumentation rides along as atomics.
  mutable std::atomic<std::int64_t> lookups_{0};
  mutable std::atomic<std::int64_t> candidates_{0};
  mutable std::atomic<std::int64_t> confirmed_{0};
};

}  // namespace appx::core
