// Session-oriented engine surface shared by the APPx engine, the sharded
// runtime and the baseline prefetchers.
//
// A front end (live server, simulator testbed) resolves a connection's user
// once — ProxyLike::resolve_user -> UserId — and then drives events through a
// Session without re-hashing strings or touching global engine state:
//
//   core::Session session = engine->session(user, now);
//   core::Decision d = session.on_request(request, now);
//   if (d.served) { ...respond from cache... }
//   else          { ...forward; d = session.on_response(request, resp, now); }
//   issue(d.prefetches);   // jobs ride on the Decision, no separate take call
//
// Every event fills one Decision out-param carrying both the serve/forward
// choice and the prefetch jobs that became issuable, so a sharded engine can
// complete an event under a single shard lock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheduler.hpp"
#include "core/user_id.hpp"
#include "http/message.hpp"
#include "util/units.hpp"

namespace appx::obs {
class MetricsRegistry;
}  // namespace appx::obs

namespace appx::core {

struct ProxyStats {
  // Client-facing.
  std::size_t client_requests = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_expired = 0;
  std::size_t forwarded = 0;
  // Prefetching. prefetch_responses counts successful (2xx) responses only;
  // the fleet-wide balance invariant is
  //   prefetch_responses + prefetch_failures + prefetches_dropped == issued.
  std::size_t prefetches_issued = 0;
  std::size_t prefetch_responses = 0;
  std::size_t prefetch_failures = 0;  // non-2xx prefetch responses
  std::size_t skipped_disabled = 0;
  std::size_t skipped_probability = 0;
  std::size_t skipped_condition = 0;
  std::size_t skipped_budget = 0;
  std::size_t skipped_duplicate = 0;  // already cached and fresh
  std::size_t skipped_refetch = 0;    // already prefetched this client generation
  std::size_t skipped_queue_full = 0;  // evicted from a bounded scheduler queue pre-issue
  // Cost-aware policy (DESIGN.md §5j). Rejections happen before enqueue, so
  // they are "skips" in the balance invariant's terms, broken out by cause.
  std::size_t policy_admitted = 0;        // cleared admission + budget pacing
  std::size_t policy_rejected_value = 0;  // value below the admission threshold
  std::size_t policy_rejected_budget = 0;  // token bucket had no room
  std::size_t forward_cached = 0;     // forwarded responses kept in the cache
  std::size_t prefetches_dropped = 0;  // issued jobs abandoned by the caller
  // Resource-bound enforcement (cache caps, TTL sweeps, idle-user eviction).
  std::size_t evicted_lru = 0;      // cache entries evicted by the LRU bound
  std::size_t evicted_expired = 0;  // cache entries reaped by TTL
  std::size_t users_evicted = 0;    // idle user contexts evicted
  // Data accounting (proxy<->server direction; paper §6.2 data usage).
  Bytes bytes_origin_to_proxy = 0;  // forwarded responses
  Bytes bytes_prefetched = 0;       // prefetch responses
  Bytes bytes_served_from_cache = 0;
  // Wasted prefetches: cache entries that left the cache (evicted, expired,
  // overwritten, or still unused at user teardown) without ever being hit.
  std::size_t prefetch_wasted_entries = 0;
  Bytes prefetch_wasted_bytes = 0;
  // Live cache footprint across all users (gauges, not monotonic).
  std::size_t cache_entries = 0;
  Bytes cache_bytes = 0;
};

// The outcome of one engine event.
struct Decision {
  // Set when the proxy serves from cache; otherwise forward to origin. The
  // response is shared with the cache entry rather than copied (bodies can
  // be hundreds of KB) and stays valid however long the caller holds it.
  std::shared_ptr<const http::Response> served;
  // Prefetch jobs that became issuable as a result of this event (priority
  // order, bounded by the user's outstanding window). The caller owns them
  // and must resolve each exactly once: on_prefetch_response when the fetch
  // completed, on_prefetch_dropped when it was abandoned.
  std::vector<PrefetchJob> prefetches;
};

class Session;
class SnapshotBuilder;
class SnapshotView;

// Shared shape of the proxy engines so any front end can host any of them.
// Implementations: ProxyEngine (one shard), ShardedProxyEngine (N shards,
// thread-safe), LooxyEngine / StaticOnlyEngine (baselines, §7).
class ProxyLike {
 public:
  virtual ~ProxyLike() = default;

  // --- session API ----------------------------------------------------------

  // Intern `user`, creating its state if needed. The returned id stays cheap
  // to route on; if the engine later evicts the user, the next event taking
  // this id by reference re-interns it transparently.
  virtual UserId resolve_user(std::string_view user, SimTime now) = 0;

  // Convenience: resolve + wrap in a Session handle.
  Session session(std::string_view user, SimTime now);

  // A client request arrived. Fills `out->served` on an exact, unexpired
  // cache match (otherwise the caller forwards to the origin) and appends
  // newly issuable prefetch jobs.
  virtual void on_request(UserId& user, const http::Request& request, SimTime now,
                          Decision* out) = 0;

  // The origin answered a forwarded client request: run dynamic learning and
  // surface any prefetches that became ready.
  virtual void on_response(UserId& user, const http::Request& request,
                           const http::Response& response, SimTime now, Decision* out) = 0;

  // A prefetch we issued completed. Caches the response, runs learning on it
  // (chained prefetching, Fig. 3(c)) and surfaces follow-up jobs.
  virtual void on_prefetch_response(UserId& user, const PrefetchJob& job,
                                    const http::Response& response, SimTime now,
                                    double response_time_ms, Decision* out) = 0;

  // A prefetch we issued will never get a response (queue overflow, torn-down
  // connection, an error path that skips on_prefetch_response). Engines
  // tracking outstanding windows must release the slot here.
  virtual void on_prefetch_dropped(UserId& user, const PrefetchJob& job, SimTime now) = 0;

  // Surface prefetch jobs that became issuable outside any event (a freed
  // outstanding-window slot, a baseline's one-time seed list). Front ends
  // that only act on event Decisions may still call this periodically.
  virtual void pump(UserId& user, SimTime now, Decision* out);

  // True when events for different users may be driven concurrently without
  // external locking (ShardedProxyEngine). Single-shard engines and the
  // baselines require the caller to serialise access.
  virtual bool thread_safe() const { return false; }

  // --- durable learned state (DESIGN.md §5k) --------------------------------

  // Append the engine's learned-state sections to a snapshot container.
  // Engines without durable state (the baselines) contribute nothing.
  virtual void snapshot_to(SnapshotBuilder& builder) const { (void)builder; }
  // Merge learned state from a parsed snapshot container; returns the number
  // of user contexts re-created. Absent sections and sections from a newer
  // build leave the matching components cold; `now` re-anchors restored
  // clocks to this process's epoch.
  virtual std::size_t restore_from(const SnapshotView& view, SimTime now) {
    (void)view;
    (void)now;
    return 0;
  }
  // One user's learned state as a standalone snapshot blob (the unit of
  // node-to-node handoff when a cluster drains a node); empty when the user
  // is unknown to this engine.
  virtual std::vector<std::uint8_t> export_user(std::string_view user) const {
    (void)user;
    return {};
  }
  // Merge a blob minted by export_user (possibly on another node / an older
  // build). Returns false when the blob carries no user this engine can
  // adopt; throws SnapshotError subclasses on corrupt input.
  virtual bool import_user(const std::vector<std::uint8_t>& blob, SimTime now) {
    (void)blob;
    (void)now;
    return false;
  }

  // --- introspection --------------------------------------------------------

  virtual const ProxyStats& stats() const = 0;
  // Metrics registry behind stats(), when the engine has one. Baselines that
  // keep a plain ProxyStats return nullptr.
  virtual obs::MetricsRegistry* metrics() { return nullptr; }
};

// A user's handle onto an engine: the resolved UserId plus the engine it
// routes to. Copyable; the id inside is updated in place if the engine had
// evicted and re-interned the user.
class Session {
 public:
  Session() = default;
  Session(ProxyLike* engine, UserId id) : engine_(engine), id_(std::move(id)) {}

  bool valid() const { return engine_ != nullptr && id_.valid(); }
  const UserId& id() const { return id_; }
  ProxyLike* engine() const { return engine_; }

  Decision on_request(const http::Request& request, SimTime now) {
    Decision out;
    engine_->on_request(id_, request, now, &out);
    return out;
  }
  Decision on_response(const http::Request& request, const http::Response& response,
                       SimTime now) {
    Decision out;
    engine_->on_response(id_, request, response, now, &out);
    return out;
  }
  Decision on_prefetch_response(const PrefetchJob& job, const http::Response& response,
                                SimTime now, double response_time_ms) {
    Decision out;
    engine_->on_prefetch_response(id_, job, response, now, response_time_ms, &out);
    return out;
  }
  void on_prefetch_dropped(const PrefetchJob& job, SimTime now) {
    engine_->on_prefetch_dropped(id_, job, now);
  }
  // Jobs that became issuable outside any event on this session.
  std::vector<PrefetchJob> take_prefetches(SimTime now) {
    Decision out;
    engine_->pump(id_, now, &out);
    return std::move(out.prefetches);
  }

 private:
  ProxyLike* engine_ = nullptr;
  UserId id_;
};

}  // namespace appx::core
