// The acceleration proxy engine (paper §4.5, Fig. 10).
//
// Transport-agnostic: the engine consumes observed events (client request,
// origin response, prefetch response) and emits decisions (serve-from-cache
// or forward; a set of prefetch jobs to issue). The simulator — or a real
// socket front end — owns the wire.
//
// Per-user isolation: prefetched responses and learned run-time state are
// never shared across users (paper §2/§5: "prefetched responses are not
// shared across users, and the prototype distinguishes users by IP").
#pragma once

#include <map>
#include <memory>
#include <set>
#include <optional>
#include <string>
#include <vector>

#include "core/cache.hpp"
#include "core/config.hpp"
#include "core/learning.hpp"
#include "core/scheduler.hpp"
#include "core/signature.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace appx::core {

struct ProxyStats {
  // Client-facing.
  std::size_t client_requests = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_expired = 0;
  std::size_t forwarded = 0;
  // Prefetching.
  std::size_t prefetches_issued = 0;
  std::size_t prefetch_responses = 0;
  std::size_t prefetch_failures = 0;  // non-2xx prefetch responses
  std::size_t skipped_disabled = 0;
  std::size_t skipped_probability = 0;
  std::size_t skipped_condition = 0;
  std::size_t skipped_budget = 0;
  std::size_t skipped_duplicate = 0;  // already cached and fresh
  std::size_t skipped_refetch = 0;    // already prefetched this client generation
  std::size_t forward_cached = 0;     // forwarded responses kept in the cache
  std::size_t prefetches_dropped = 0;  // issued jobs abandoned by the caller
  // Resource-bound enforcement (cache caps, TTL sweeps, idle-user eviction).
  std::size_t evicted_lru = 0;      // cache entries evicted by the LRU bound
  std::size_t evicted_expired = 0;  // cache entries reaped by TTL
  std::size_t users_evicted = 0;    // idle user contexts evicted
  // Data accounting (proxy<->server direction; paper §6.2 data usage).
  Bytes bytes_origin_to_proxy = 0;  // forwarded responses
  Bytes bytes_prefetched = 0;       // prefetch responses
  Bytes bytes_served_from_cache = 0;
  // Live cache footprint across all users (gauges, not monotonic).
  std::size_t cache_entries = 0;
  Bytes cache_bytes = 0;
};

// What to do with a client request.
struct ClientDecision {
  // Set when the proxy serves from cache; otherwise forward to origin. The
  // response is shared with the cache entry rather than copied (bodies can
  // be hundreds of KB) and stays valid however long the caller holds it.
  std::shared_ptr<const http::Response> served;
};

class ProxyEngine {
 public:
  // `signatures` and `config` must outlive the engine.
  ProxyEngine(const SignatureSet* signatures, const ProxyConfig* config,
              std::uint64_t seed = 1);

  // --- events ---------------------------------------------------------------

  // A client request arrived. Returns the cached response on an exact,
  // unexpired match; otherwise the caller forwards to the origin.
  ClientDecision on_client_request(const std::string& user, const http::Request& request,
                                   SimTime now);

  // The origin answered a forwarded client request. Runs dynamic learning;
  // afterwards call take_prefetches() for jobs that became issuable.
  void on_origin_response(const std::string& user, const http::Request& request,
                          const http::Response& response, SimTime now);

  // A prefetch we issued completed. Caches the response and runs learning on
  // it (chained prefetching: a prefetched predecessor can ready further
  // successors, Fig. 3(c)).
  void on_prefetch_response(const std::string& user, const PrefetchJob& job,
                            const http::Response& response, SimTime now,
                            double response_time_ms);

  // A prefetch we issued will never get a response (dropped on queue
  // overflow, a torn-down connection, or an error path that skips
  // on_prefetch_response). Releases the job's outstanding-window slot and
  // in-flight key so prefetching is not silently throttled by the leak.
  void on_prefetch_dropped(const std::string& user, const PrefetchJob& job, SimTime now);

  // Prefetch jobs to put on the wire now (priority order, bounded by the
  // outstanding window). Call after any of the events above.
  std::vector<PrefetchJob> take_prefetches(const std::string& user, SimTime now);

  // --- introspection ----------------------------------------------------------

  // Compatibility snapshot of the metrics registry. Repeated calls refresh
  // the same object, so a held reference stays valid and re-reads the
  // registry on the next stats() call.
  const ProxyStats& stats() const;
  const SignatureStats& signature_stats() const { return sig_stats_; }

  // The registry behind stats(): every ProxyStats field plus per-signature
  // breakdowns, latency histograms and signature-index effectiveness. Safe to
  // export from another thread (all metric updates are atomic), but metrics
  // derived from engine structures (user count gauge) are only as fresh as
  // the last engine event.
  obs::MetricsRegistry& metrics() { return registry_; }
  const obs::MetricsRegistry& metrics() const { return registry_; }
  const LearningEngine* learning_for(const std::string& user) const;
  const PrefetchCache* cache_for(const std::string& user) const;
  std::size_t user_count() const { return users_.size(); }

 private:
  struct UserState {
    UserState(const SignatureSet* signatures, const ProxyConfig& config)
        : learning(signatures, &config.host_apps),
          cache(PrefetchCache::Limits{config.cache_max_entries, config.cache_max_bytes}),
          scheduler(PrefetchScheduler::Weights{config.scheduler_time_weight,
                                               config.scheduler_hit_weight},
                    config.max_outstanding_prefetches) {}
    LearningEngine learning;
    PrefetchCache cache;
    PrefetchScheduler scheduler;
    SimTime last_active = 0;        // for idle-user eviction
    Bytes prefetch_bytes_used = 0;  // against config.data_budget
    std::set<std::string> inflight;  // cache keys with an outstanding prefetch
    // Cache keys of client requests currently being forwarded: prefetching
    // these would duplicate bytes already on their way to the proxy.
    std::set<std::string> forwarding;
    // Cache keys already prefetched since the user's last client request.
    // Anti-thrash guard for the bounded cache: once eviction can remove a
    // freshly prefetched entry, chained learning would otherwise re-admit it
    // at once, and a cyclic dependency graph would prefetch forever. One
    // attempt per key per client "generation" keeps every chain finite.
    std::set<std::string> prefetched_generation;
  };

  UserState& user_state(const std::string& user, SimTime now);
  void evict_idle_users(SimTime now, const std::string& keep);
  void admit_prefetches(UserState& state, std::vector<ReadyPrefetch> ready, SimTime now);

  // Registry metrics resolved once at construction; hot paths bump these
  // pointers and never touch the registry lock.
  struct Instruments {
    obs::Counter* client_requests = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_expired = nullptr;
    obs::Counter* forwarded = nullptr;
    obs::Counter* prefetches_issued = nullptr;
    obs::Counter* prefetch_responses = nullptr;
    obs::Counter* prefetch_failures = nullptr;
    obs::Counter* skipped_disabled = nullptr;
    obs::Counter* skipped_probability = nullptr;
    obs::Counter* skipped_condition = nullptr;
    obs::Counter* skipped_budget = nullptr;
    obs::Counter* skipped_duplicate = nullptr;
    obs::Counter* skipped_refetch = nullptr;
    obs::Counter* forward_cached = nullptr;
    obs::Counter* prefetches_dropped = nullptr;
    obs::Counter* evicted_lru = nullptr;
    obs::Counter* evicted_expired = nullptr;
    obs::Counter* users_evicted = nullptr;
    obs::Counter* bytes_origin_to_proxy = nullptr;
    obs::Counter* bytes_prefetched = nullptr;
    obs::Counter* bytes_served_from_cache = nullptr;
    obs::Gauge* cache_entries = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    obs::Gauge* users = nullptr;
    obs::Gauge* prefetch_queued = nullptr;
    obs::Gauge* prefetch_outstanding = nullptr;
    obs::Histogram* prefetch_response_time_us = nullptr;
  };

  const SignatureSet* signatures_;
  const ProxyConfig* config_;
  std::vector<std::string> ignored_headers_;  // config add_header names
  std::uint64_t seed_;
  Rng rng_;
  // The registry must outlive users_: per-user caches and schedulers hold
  // raw pointers into it and give back their gauge contributions on
  // destruction.
  obs::MetricsRegistry registry_;
  Instruments inst_;
  std::map<std::string, std::unique_ptr<UserState>> users_;
  SignatureStats sig_stats_;
  mutable ProxyStats stats_view_;
};

}  // namespace appx::core
