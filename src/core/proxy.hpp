// The acceleration proxy engine (paper §4.5, Fig. 10) — one shard.
//
// Transport-agnostic: the engine consumes observed events (client request,
// origin response, prefetch response) through the session API (core/session
// .hpp) and fills Decisions (serve-from-cache or forward; prefetch jobs to
// issue). The simulator — or a real socket front end — owns the wire.
//
// Per-user isolation: prefetched responses and learned run-time state are
// never shared across users (paper §2/§5: "prefetched responses are not
// shared across users, and the prototype distinguishes users by IP").
//
// A ProxyEngine is NOT thread-safe; it is either driven single-threaded or
// wrapped as one shard of a ShardedProxyEngine (core/sharded_proxy.hpp),
// which gives each shard its own mutex. User state lives in a slot table so
// a resolved UserId routes events in O(1); evicting a user recycles its slot
// under a bumped generation (see core/user_id.hpp).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cache.hpp"
#include "core/config.hpp"
#include "core/engine_options.hpp"
#include "core/learning.hpp"
#include "core/persist.hpp"
#include "core/scheduler.hpp"
#include "core/session.hpp"
#include "core/signature.hpp"
#include "obs/metrics.hpp"
#include "policy/admission.hpp"
#include "policy/model.hpp"
#include "policy/pacer.hpp"
#include "util/units.hpp"

namespace appx::core {

class ProxyEngine final : public ProxyLike {
 public:
  // `signatures` and `config` must outlive the engine. Runtime caps are
  // snapshotted from `config` via EngineOptions::from_config.
  ProxyEngine(const SignatureSet* signatures, const ProxyConfig* config,
              std::uint64_t seed = 1);
  // Full control: explicit options (validated here), optionally a shared
  // metrics registry (a ShardedProxyEngine passes one registry to all its
  // shards; metric updates are deltas, so contributions aggregate), this
  // engine's shard index (stamped into minted UserIds) and optionally a
  // shared per-app value model (a ShardedProxyEngine passes one model to all
  // shards so signature evidence pools fleet-wide; it must outlive the
  // engine). Without one the engine owns a private model.
  ProxyEngine(const SignatureSet* signatures, const ProxyConfig* config,
              EngineOptions options, obs::MetricsRegistry* registry = nullptr,
              std::uint32_t shard_index = 0,
              policy::SignatureModel* shared_model = nullptr);

  // --- session API (see core/session.hpp for contracts) ---------------------

  UserId resolve_user(std::string_view user, SimTime now) override;
  void on_request(UserId& user, const http::Request& request, SimTime now,
                  Decision* out) override;
  void on_response(UserId& user, const http::Request& request, const http::Response& response,
                   SimTime now, Decision* out) override;
  void on_prefetch_response(UserId& user, const PrefetchJob& job,
                            const http::Response& response, SimTime now,
                            double response_time_ms, Decision* out) override;
  void on_prefetch_dropped(UserId& user, const PrefetchJob& job, SimTime now) override;
  void pump(UserId& user, SimTime now, Decision* out) override;

  // --- durable learned state (DESIGN.md §5k) --------------------------------
  //
  // Sections this engine writes: "users" (per-user learned state: resolved
  // wildcards, dependency-flow instances, budget spend), "policy.model" (only
  // when the engine owns its value model — with a shared model the owner
  // snapshots it once) and "scheduler.sig_stats/<shard>" (per-shard advisory
  // priority stats). Cache bodies and scheduler queues are deliberately NOT
  // persisted: a restart comes back with a cold cache but warm models, and
  // restored flow instances re-issue their prefetches on the next relevant
  // observation.
  static constexpr std::uint32_t kUsersSectionVersion = 1;
  void snapshot_to(SnapshotBuilder& builder) const override;
  std::size_t restore_from(const SnapshotView& view, SimTime now) override;
  std::vector<std::uint8_t> export_user(std::string_view user) const override;
  bool import_user(const std::vector<std::uint8_t>& blob, SimTime now) override;

  // Sharded-engine plumbing: the wrapper merges every shard's user entries
  // into ONE "users" section (so restore can re-route users across a changed
  // shard layout) and lets each shard keep its own sig-stats section.
  void persist_user_entries(ByteWriter& out) const;
  void restore_user_entry(std::string_view name, ByteReader& entry, std::uint32_t version,
                          SimTime now);
  void persist_sig_stats_to(SnapshotBuilder& builder) const;
  void restore_sig_stats_from(const SnapshotView& view);
  bool owns_sig_model() const { return sig_model_ == &own_sig_model_; }

  // --- introspection --------------------------------------------------------

  // Compatibility snapshot of the metrics registry. Repeated calls refresh
  // the same object, so a held reference stays valid and re-reads the
  // registry on the next stats() call.
  const ProxyStats& stats() const override;
  const SignatureStats& signature_stats() const { return sig_stats_; }

  // The registry behind stats(): every ProxyStats field plus per-signature
  // breakdowns, latency histograms and signature-index effectiveness. Safe to
  // export from another thread (all metric updates are atomic), but metrics
  // derived from engine structures (user count gauge) are only as fresh as
  // the last engine event. Shared with sibling shards when the engine was
  // constructed with an external registry.
  obs::MetricsRegistry* metrics() override { return registry_; }
  const obs::MetricsRegistry* metrics() const { return registry_; }

  const EngineOptions& options() const { return options_; }
  const LearningEngine* learning_for(const std::string& user) const;
  const PrefetchCache* cache_for(const std::string& user) const;
  // Users resident in THIS shard. Fleet-wide counts come from the
  // appx_proxy_users registry gauge, which every shard maintains by delta.
  std::size_t user_count() const { return users_.size(); }

 private:
  struct UserState {
    UserState(const SignatureSet* signatures, const ProxyConfig& config,
              const EngineOptions& options)
        : learning(signatures, &config.host_apps),
          pacer(policy::BudgetPacer::Options{
              options.policy.enabled ? config.data_budget.value_or(0) : 0,
              options.policy.budget_window, options.policy.hit_byte_refund}),
          cache(PrefetchCache::Limits{options.cache_max_entries, options.cache_max_bytes}),
          scheduler(PrefetchScheduler::Weights{options.scheduler_time_weight,
                                               options.scheduler_hit_weight},
                    options.max_outstanding_prefetches, options.max_queued_prefetches) {}
    UserId id;  // the handle minted for this user (name, shard, slot, gen)
    LearningEngine learning;
    // Declared before the cache: its usage hooks may refund the pacer, and
    // the `wasted` hook fires from the cache destructor.
    policy::BudgetPacer pacer;
    PrefetchCache cache;
    PrefetchScheduler scheduler;
    SimTime last_active = 0;        // for idle-user eviction
    Bytes prefetch_bytes_used = 0;  // against config.data_budget
    std::set<std::string> inflight;  // cache keys with an outstanding prefetch
    // Cache keys of client requests currently being forwarded: prefetching
    // these would duplicate bytes already on their way to the proxy.
    std::set<std::string> forwarding;
    // Cache keys already prefetched since the user's last client request.
    // Anti-thrash guard for the bounded cache: once eviction can remove a
    // freshly prefetched entry, chained learning would otherwise re-admit it
    // at once, and a cyclic dependency graph would prefetch forever. One
    // attempt per key per client "generation" keeps every chain finite.
    std::set<std::string> prefetched_generation;
  };

  // Slot table: UserIds index into it directly; the generation distinguishes
  // the current occupant from stale handles to an evicted predecessor.
  struct Slot {
    std::uint32_t generation = 0;
    std::unique_ptr<UserState> state;
  };

  // State for a resolved id, touching last_active. Re-interns (and updates
  // `id`) when the user was evicted since the id was minted.
  UserState& state_for(UserId& id, SimTime now);
  // App owning a signature (for the per-app value model); empty if unknown.
  std::string_view app_of(std::string_view sig_id) const;
  // One `str name | u64 len | payload` user entry (snapshot + handoff unit).
  void persist_user_entry(const std::string& name, const UserState& state,
                          ByteWriter& out) const;
  void release_slot(std::uint32_t slot);
  void evict_idle_users(SimTime now, std::uint32_t keep_slot);
  void admit_prefetches(UserState& state, std::vector<ReadyPrefetch> ready, SimTime now);
  // Move issuable jobs off the scheduler onto the Decision, stamping identity.
  void drain_scheduler(UserState& state, Decision* out);

  // Registry metrics resolved once at construction; hot paths bump these
  // pointers and never touch the registry lock. All updates are increments /
  // deltas so shards sharing one registry aggregate instead of clobbering.
  struct Instruments {
    obs::Counter* client_requests = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_expired = nullptr;
    obs::Counter* forwarded = nullptr;
    obs::Counter* prefetches_issued = nullptr;
    obs::Counter* prefetch_responses = nullptr;
    obs::Counter* prefetch_failures = nullptr;
    obs::Counter* skipped_disabled = nullptr;
    obs::Counter* skipped_probability = nullptr;
    obs::Counter* skipped_condition = nullptr;
    obs::Counter* skipped_budget = nullptr;
    obs::Counter* skipped_duplicate = nullptr;
    obs::Counter* skipped_refetch = nullptr;
    obs::Counter* skipped_queue_full = nullptr;
    obs::Counter* policy_admitted = nullptr;
    obs::Counter* policy_rejected_value = nullptr;
    obs::Counter* policy_rejected_budget = nullptr;
    obs::Counter* wasted_entries = nullptr;
    obs::Counter* wasted_bytes = nullptr;
    obs::Counter* forward_cached = nullptr;
    obs::Counter* prefetches_dropped = nullptr;
    obs::Counter* evicted_lru = nullptr;
    obs::Counter* evicted_expired = nullptr;
    obs::Counter* users_evicted = nullptr;
    obs::Counter* bytes_origin_to_proxy = nullptr;
    obs::Counter* bytes_prefetched = nullptr;
    obs::Counter* bytes_served_from_cache = nullptr;
    obs::Gauge* cache_entries = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    obs::Gauge* users = nullptr;
    obs::Gauge* prefetch_queued = nullptr;
    obs::Gauge* prefetch_outstanding = nullptr;
    // Admission threshold in micro-units (gauges are integral): the exported
    // value is threshold(ms saved per KB) × 1e6.
    obs::Gauge* policy_threshold = nullptr;
    obs::Histogram* prefetch_response_time_us = nullptr;
  };

  const SignatureSet* signatures_;
  const ProxyConfig* config_;
  EngineOptions options_;
  std::vector<std::string> ignored_headers_;  // config add_header names
  // Reused cache-key buffer (DESIGN.md §5h): engine events are serialized
  // per instance (external mutex, or per-shard mutex when sharded), so the
  // hit path renders its lookup key without allocating.
  std::string key_scratch_;
  std::uint32_t shard_index_ = 0;
  std::uint64_t seed_;
  // Cost-aware policy state (DESIGN.md §5j), keyed per app and possibly
  // shared with sibling shards (see the constructor). Must be declared before
  // slots_: per-user cache destructors fire waste hooks into the model.
  policy::SignatureModel own_sig_model_;
  policy::SignatureModel* sig_model_ = nullptr;
  policy::AdmissionController admission_;
  // Backs registry_ when no external registry was supplied. Must outlive
  // slots_: per-user caches and schedulers hold raw pointers into the
  // registry and give back their gauge contributions on destruction.
  obs::MetricsRegistry own_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  Instruments inst_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::map<std::string, std::uint32_t, std::less<>> users_;  // name -> slot
  SignatureStats sig_stats_;
  mutable ProxyStats stats_view_;
};

}  // namespace appx::core
