#include "core/signature_index.hpp"

#include <algorithm>

#include "pattern/regex.hpp"
#include "util/error.hpp"

namespace appx::core {

namespace {

// Longest string every match of `t` must start with: the leading literal
// run, extended into the first hole's shape via Regex::required_prefix.
std::string template_prefix(const FieldTemplate& t) {
  std::string prefix;
  for (const FieldTemplate::Segment& seg : t.segments()) {
    if (!seg.is_hole) {
      prefix += seg.text;  // adjacent literals are merged, but be permissive
      continue;
    }
    try {
      prefix += pattern::Regex(seg.shape).required_prefix();
    } catch (const ParseError&) {
      // An unparsable shape fails every match later; no prefix to add.
    }
    break;  // beyond the first hole the offset is no longer fixed
  }
  return prefix;
}

}  // namespace

SignatureIndex::Key SignatureIndex::key_for(const TransactionSignature& signature) {
  Key key;
  key.method = signature.request.method;
  key.host_prefix = template_prefix(signature.request.host);
  key.path_prefix = template_prefix(signature.request.path);
  return key;
}

SignatureIndex::SignatureIndex(
    const std::vector<std::unique_ptr<TransactionSignature>>& signatures) {
  entries_.reserve(signatures.size());
  for (std::size_t i = 0; i < signatures.size(); ++i) {
    const TransactionSignature* sig = signatures[i].get();
    const Key key = key_for(*sig);

    const auto [it, inserted] = method_roots_.try_emplace(key.method, 0);
    if (inserted) {
      it->second = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    std::int32_t node = it->second;
    for (char c : key.path_prefix) {
      std::int32_t next = child_of(node, c);
      if (next < 0) {
        next = static_cast<std::int32_t>(nodes_.size());
        nodes_.emplace_back();
        nodes_[static_cast<std::size_t>(node)].children.emplace_back(c, next);
      }
      node = next;
    }
    nodes_[static_cast<std::size_t>(node)].entries.push_back(static_cast<std::uint32_t>(i));

    entries_.push_back(Entry{sig, static_cast<std::uint32_t>(i), key.host_prefix});
  }
}

std::int32_t SignatureIndex::child_of(std::int32_t node, char c) const {
  for (const auto& [edge, target] : nodes_[static_cast<std::size_t>(node)].children) {
    if (edge == c) return target;
  }
  return -1;
}

void SignatureIndex::collect(const http::Request& request,
                             std::vector<std::uint32_t>& out) const {
  const auto root = method_roots_.find(request.method);
  if (root == method_roots_.end()) return;
  std::int32_t node = root->second;
  const auto& path_entries = nodes_[static_cast<std::size_t>(node)].entries;
  out.insert(out.end(), path_entries.begin(), path_entries.end());
  for (char c : request.uri.path) {
    node = child_of(node, c);
    if (node < 0) break;
    const auto& more = nodes_[static_cast<std::size_t>(node)].entries;
    out.insert(out.end(), more.begin(), more.end());
  }
  // Per-node lists are ascending, but deeper nodes can hold earlier
  // signatures; restore global insertion order for first-match semantics.
  std::sort(out.begin(), out.end());
}

const TransactionSignature* SignatureIndex::match(const http::Request& request,
                                                  std::string_view app) const {
  // Reusable candidate buffer: the fast path allocates nothing in steady
  // state. Matching is serialised by the caller (see header of regex.hpp).
  thread_local std::vector<std::uint32_t> candidates;
  candidates.clear();
  collect(request, candidates);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  candidates_.fetch_add(static_cast<std::int64_t>(candidates.size()),
                        std::memory_order_relaxed);
  for (std::uint32_t idx : candidates) {
    const Entry& entry = entries_[idx];
    if (!app.empty() && entry.sig->app != app) continue;
    if (!std::string_view(request.uri.host).starts_with(entry.host_prefix)) continue;
    if (entry.sig->match(request)) {
      confirmed_.fetch_add(1, std::memory_order_relaxed);
      return entry.sig;
    }
  }
  return nullptr;
}

std::vector<const TransactionSignature*> SignatureIndex::candidates(
    const http::Request& request) const {
  std::vector<std::uint32_t> indices;
  collect(request, indices);
  std::vector<const TransactionSignature*> out;
  out.reserve(indices.size());
  for (std::uint32_t idx : indices) {
    const Entry& entry = entries_[idx];
    if (!std::string_view(request.uri.host).starts_with(entry.host_prefix)) continue;
    out.push_back(entry.sig);
  }
  return out;
}

}  // namespace appx::core
