// Interned user identity for the session-oriented engine API.
//
// The paper keys all proxy state by user (§2/§5: prefetched responses are
// never shared across users). The legacy API passed `const std::string&
// user` into every event, which meant a map lookup — and, behind a sharded
// runtime, a hash — per event. A UserId is minted once per connection by
// ProxyLike::resolve_user and then routes events in O(1):
//
//   * shard()      — which shard of a ShardedProxyEngine owns the user
//                    (stable: hash(user) % shard_count).
//   * slot()       — index into the owning engine's slot table.
//   * generation() — guards against slot reuse: when an idle user is evicted
//                    its slot is recycled under a bumped generation, so a
//                    stale handle never touches another user's state. Engine
//                    event entry points take `UserId&` and transparently
//                    re-intern a stale handle (the caller's copy is updated).
//
// The interned name is shared, not copied, so UserId is cheap to copy and a
// prefetch job can carry its user identity across threads.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace appx::core {

class UserId {
 public:
  UserId() = default;  // invalid until minted by resolve_user()

  // Minted by engines only; callers obtain ids via ProxyLike::resolve_user.
  UserId(std::shared_ptr<const std::string> name, std::uint64_t hash, std::uint32_t shard,
         std::uint32_t slot, std::uint32_t generation)
      : name_(std::move(name)), hash_(hash), shard_(shard), slot_(slot),
        generation_(generation) {}

  bool valid() const { return name_ != nullptr; }
  // The user's wire identity (e.g. the X-Appx-User header). Valid ids only.
  const std::string& name() const { return *name_; }
  // Stable FNV-1a hash of name(); identical across shard layouts.
  std::uint64_t hash() const { return hash_; }
  std::uint32_t shard() const { return shard_; }
  std::uint32_t slot() const { return slot_; }
  std::uint32_t generation() const { return generation_; }

 private:
  std::shared_ptr<const std::string> name_;
  std::uint64_t hash_ = 0;
  std::uint32_t shard_ = 0;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

}  // namespace appx::core
