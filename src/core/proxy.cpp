#include "core/proxy.hpp"

#include <algorithm>

#include "core/signature_index.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace appx::core {

ProxyEngine::ProxyEngine(const SignatureSet* signatures, const ProxyConfig* config,
                         std::uint64_t seed)
    : ProxyEngine(signatures, config,
                  [&] {
                    if (config == nullptr) throw InvalidArgumentError("ProxyEngine: null config");
                    EngineOptions options = EngineOptions::from_config(*config);
                    options.seed = seed;
                    return options;
                  }()) {}

ProxyEngine::ProxyEngine(const SignatureSet* signatures, const ProxyConfig* config,
                         EngineOptions options, obs::MetricsRegistry* registry,
                         std::uint32_t shard_index, policy::SignatureModel* shared_model)
    : signatures_(signatures),
      config_(config),
      options_(std::move(options)),
      shard_index_(shard_index),
      seed_(options_.seed),
      sig_model_(shared_model != nullptr ? shared_model : &own_sig_model_),
      admission_(options_.policy),
      registry_(registry != nullptr ? registry : &own_registry_) {
  if (signatures == nullptr) throw InvalidArgumentError("ProxyEngine: null signature set");
  if (config == nullptr) throw InvalidArgumentError("ProxyEngine: null config");
  options_.validate().throw_if_error();
  ignored_headers_ = config->all_added_header_names();

  obs::MetricsRegistry& reg = *registry_;
  inst_.client_requests = &reg.counter("appx_proxy_client_requests_total");
  inst_.cache_hits = &reg.counter("appx_proxy_cache_hits_total");
  inst_.cache_expired = &reg.counter("appx_proxy_cache_expired_total");
  inst_.forwarded = &reg.counter("appx_proxy_forwarded_total");
  inst_.prefetches_issued = &reg.counter("appx_prefetch_issued_total");
  inst_.prefetch_responses = &reg.counter("appx_prefetch_responses_total");
  inst_.prefetch_failures = &reg.counter("appx_prefetch_failures_total");
  const auto skipped = [&](const char* reason) {
    return &reg.counter(obs::labeled("appx_prefetch_skipped_total", {{"reason", reason}}));
  };
  inst_.skipped_disabled = skipped("disabled");
  inst_.skipped_probability = skipped("probability");
  inst_.skipped_condition = skipped("condition");
  inst_.skipped_budget = skipped("budget");
  inst_.skipped_duplicate = skipped("duplicate");
  inst_.skipped_refetch = skipped("refetch");
  inst_.skipped_queue_full = skipped("queue_full");
  inst_.policy_admitted = &reg.counter("appx_policy_admitted_total");
  inst_.policy_rejected_value =
      &reg.counter(obs::labeled("appx_policy_rejected_total", {{"reason", "value"}}));
  inst_.policy_rejected_budget =
      &reg.counter(obs::labeled("appx_policy_rejected_total", {{"reason", "budget"}}));
  inst_.wasted_entries = &reg.counter("appx_prefetch_wasted_entries_total");
  inst_.wasted_bytes = &reg.counter("appx_prefetch_wasted_bytes_total");
  inst_.forward_cached = &reg.counter("appx_proxy_forward_cached_total");
  inst_.prefetches_dropped = &reg.counter("appx_prefetch_dropped_total");
  inst_.evicted_lru =
      &reg.counter(obs::labeled("appx_cache_evicted_total", {{"cause", "lru"}}));
  inst_.evicted_expired =
      &reg.counter(obs::labeled("appx_cache_evicted_total", {{"cause", "expired"}}));
  inst_.users_evicted = &reg.counter("appx_proxy_users_evicted_total");
  inst_.bytes_origin_to_proxy = &reg.counter("appx_proxy_origin_bytes_total");
  inst_.bytes_prefetched = &reg.counter("appx_prefetch_bytes_total");
  inst_.bytes_served_from_cache = &reg.counter("appx_proxy_cache_served_bytes_total");
  inst_.cache_entries = &reg.gauge("appx_cache_entries");
  inst_.cache_bytes = &reg.gauge("appx_cache_bytes");
  inst_.users = &reg.gauge("appx_proxy_users");
  inst_.prefetch_queued = &reg.gauge("appx_prefetch_queue_depth");
  inst_.prefetch_outstanding = &reg.gauge("appx_prefetch_outstanding");
  inst_.policy_threshold = &reg.gauge("appx_policy_threshold");
  inst_.prefetch_response_time_us = &reg.histogram("appx_prefetch_response_time_us");

  sig_stats_.bind_registry(registry_);

  // Build the dispatch index now: export callbacks may sample its totals from
  // a scrape thread, and a lazy build on first match() would race with it.
  const SignatureIndex& index = signatures_->index();
  (void)index;
  // Shards sharing a registry each register these callbacks against their own
  // signature-set copy (last registration wins); a ShardedProxyEngine then
  // overwrites them with fleet-wide sums.
  reg.gauge_callback("appx_sigindex_lookups_total",
                     [this] { return signatures_->index().totals().lookups; });
  reg.gauge_callback("appx_sigindex_candidates_total",
                     [this] { return signatures_->index().totals().candidates; });
  reg.gauge_callback("appx_sigindex_confirmed_total",
                     [this] { return signatures_->index().totals().confirmed; });
}

UserId ProxyEngine::resolve_user(std::string_view user, SimTime now) {
  const auto it = users_.find(user);
  if (it != users_.end()) {
    UserState& state = *slots_[it->second].state;
    state.last_active = now;
    return state.id;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.state = std::make_unique<UserState>(signatures_, *config_, options_);
  s.state->cache.bind_metrics(PrefetchCache::Metrics{
      inst_.evicted_lru, inst_.evicted_expired, inst_.cache_entries, inst_.cache_bytes});
  // Outcome hooks feed the policy value model and the waste accounting. They
  // capture the engine and the user state by pointer; both outlive the cache
  // (the engine by member order, the state because the pacer is declared
  // before the cache inside UserState).
  UserState* state_ptr = s.state.get();
  s.state->cache.set_usage_hooks(PrefetchCache::UsageHooks{
      [this, state_ptr](std::string_view sig_id, Bytes bytes) {
        state_ptr->pacer.refund_hit(bytes);
        if (options_.policy.enabled && !sig_id.empty()) {
          sig_model_->on_first_use(app_of(sig_id), sig_id);
        }
      },
      [this](std::string_view sig_id, Bytes bytes) {
        inst_.wasted_entries->inc();
        inst_.wasted_bytes->add(bytes);
        if (options_.policy.enabled && !sig_id.empty()) {
          sig_model_->on_wasted(app_of(sig_id), sig_id, bytes);
        }
      }});
  s.state->scheduler.bind_metrics(
      PrefetchScheduler::Metrics{inst_.prefetch_queued, inst_.prefetch_outstanding});
  s.state->last_active = now;
  s.state->id = UserId(std::make_shared<const std::string>(user), fnv1a(user), shard_index_,
                       slot, s.generation);
  users_.emplace(std::string(user), slot);
  // Delta, not set(): shards sharing a registry sum their populations.
  inst_.users->add(1);
  // New arrivals pay the bookkeeping cost: reap idle users (and enforce the
  // hard cap) only when the user set actually grows, keeping the hot
  // request path O(log n).
  evict_idle_users(now, slot);
  return s.state->id;
}

ProxyEngine::UserState& ProxyEngine::state_for(UserId& id, SimTime now) {
  if (!id.valid()) throw InvalidArgumentError("ProxyEngine: unresolved UserId");
  if (id.slot() < slots_.size() && slots_[id.slot()].generation == id.generation() &&
      slots_[id.slot()].state != nullptr) {
    UserState& state = *slots_[id.slot()].state;
    state.last_active = now;
    return state;
  }
  // The user was evicted after the caller minted its id (idle sweep or the
  // max_users cap): re-intern under a fresh slot/generation and repair the
  // caller's handle in place.
  id = resolve_user(id.name(), now);
  return *slots_[id.slot()].state;
}

void ProxyEngine::release_slot(std::uint32_t slot) {
  slots_[slot].state.reset();
  ++slots_[slot].generation;  // invalidate outstanding UserIds for this slot
  free_slots_.push_back(slot);
  inst_.users->sub(1);
  inst_.users_evicted->inc();
}

void ProxyEngine::evict_idle_users(SimTime now, std::uint32_t keep_slot) {
  if (options_.user_idle_timeout) {
    for (auto it = users_.begin(); it != users_.end();) {
      const std::uint32_t slot = it->second;
      if (slot != keep_slot &&
          now - slots_[slot].state->last_active >= *options_.user_idle_timeout) {
        release_slot(slot);
        it = users_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Still above the cap (a burst of genuinely active users): evict the
  // least-recently-active regardless of the idle timeout so users_ stays
  // bounded no matter the workload.
  while (options_.max_users > 0 && users_.size() > options_.max_users) {
    auto victim = users_.end();
    for (auto it = users_.begin(); it != users_.end(); ++it) {
      if (it->second == keep_slot) continue;
      if (victim == users_.end() ||
          slots_[it->second].state->last_active < slots_[victim->second].state->last_active) {
        victim = it;
      }
    }
    if (victim == users_.end()) break;  // only the new arrival is left
    release_slot(victim->second);
    users_.erase(victim);
  }
}

void ProxyEngine::drain_scheduler(UserState& state, Decision* out) {
  while (auto job = state.scheduler.dequeue()) {
    job->user = state.id.name();
    job->uid = state.id;
    inst_.prefetches_issued->inc();
    out->prefetches.push_back(std::move(*job));
  }
}

void ProxyEngine::on_request(UserId& user, const http::Request& request, SimTime now,
                             Decision* out) {
  inst_.client_requests->inc();
  UserState& state = state_for(user, now);
  // New client activity opens a fresh prefetch generation: keys evicted since
  // their last prefetch become eligible again.
  state.prefetched_generation.clear();

  request.cache_key_into(key_scratch_, ignored_headers_);
  const std::string& key = key_scratch_;
  PrefetchCache::Lookup lookup = PrefetchCache::Lookup::kMiss;
  auto cached = state.cache.get(key, now, &lookup);

  // Record the hit/miss against the signature so the scheduler's hit-rate
  // prioritisation learns which prefetches pay off.
  const TransactionSignature* sig =
      signatures_->match_request(request, config_->app_for_host(request.uri.host));
  if (sig != nullptr && signatures_->is_successor(sig->id)) {
    sig_stats_.record_lookup(sig->id, lookup == PrefetchCache::Lookup::kHit);
  }

  if (lookup == PrefetchCache::Lookup::kHit) {
    inst_.cache_hits->inc();
    inst_.bytes_served_from_cache->add(cached->wire_size());
    out->served = std::move(cached);  // shares the cache entry, no body copy
  } else {
    if (lookup == PrefetchCache::Lookup::kExpired) inst_.cache_expired->inc();
    inst_.forwarded->inc();
    state.forwarding.insert(key);
  }
  drain_scheduler(state, out);
}

void ProxyEngine::on_response(UserId& user, const http::Request& request,
                              const http::Response& response, SimTime now, Decision* out) {
  UserState& state = state_for(user, now);
  inst_.bytes_origin_to_proxy->add(response.wire_size());
  request.cache_key_into(key_scratch_, ignored_headers_);
  state.forwarding.erase(key_scratch_);

  admit_prefetches(state, state.learning.observe(request, response), now);
  drain_scheduler(state, out);
}

void ProxyEngine::on_prefetch_response(UserId& user, const PrefetchJob& job,
                                       const http::Response& response, SimTime now,
                                       double response_time_ms, Decision* out) {
  UserState& state = state_for(user, now);
  state.scheduler.on_completed();
  state.inflight.erase(job.cache_key);
  inst_.bytes_prefetched->add(response.wire_size());
  inst_.prefetch_response_time_us->record(static_cast<std::int64_t>(response_time_ms * 1000.0));
  state.prefetch_bytes_used += response.wire_size();
  // Actual wire bytes are charged in full; the entry's first cache hit will
  // refund part of them (see the cache usage hooks).
  state.pacer.charge(response.wire_size(), now);
  sig_stats_.record_response_time(job.sig_id, response_time_ms);

  if (!response.ok()) {
    // Failures are NOT counted as responses: fleet-wide the accounting is
    // prefetch_responses + prefetch_failures + prefetches_dropped == issued.
    inst_.prefetch_failures->inc();
    log_debug("proxy") << "prefetch for " << job.sig_id << " failed with status "
                       << response.status;
    drain_scheduler(state, out);
    return;
  }
  inst_.prefetch_responses->inc();

  PrefetchCache::Entry entry;
  entry.set_response(response);
  entry.sig_id = job.sig_id;
  entry.fetched_at = now;
  auto expiry = config_->expiration(job.sig_id);
  if (options_.policy.enabled) {
    const std::string_view app = app_of(job.sig_id);
    sig_model_->on_prefetched(app, job.sig_id, response.wire_size(), response_time_ms);
    if (options_.policy.learn_expiry) {
      // One content sample per cached prefetch: a same-key re-fetch whose
      // body changed refines this signature's TTL online (§4.3's probing,
      // continued at run time).
      const std::uint64_t body_hash = hash_combine(
          fnv1a(response.body.view()), static_cast<std::uint64_t>(response.opaque_payload));
      sig_model_->observe_content(app, job.sig_id, fnv1a(job.cache_key), body_hash, now);
      if (const auto learned =
              sig_model_->learned_expiry(app, job.sig_id, options_.policy.min_learned_expiry)) {
        expiry = expiry ? std::min(*expiry, *learned) : *learned;
      }
    }
  }
  if (expiry) entry.expires_at = now + *expiry;
  state.cache.put(job.cache_key, std::move(entry), now);

  // Chained prefetching: treat the prefetched transaction as an observed one
  // so successors of this signature can become ready in turn.
  admit_prefetches(state, state.learning.observe(job.request, response), now);
  drain_scheduler(state, out);
}

void ProxyEngine::on_prefetch_dropped(UserId& user, const PrefetchJob& job, SimTime now) {
  UserState& state = state_for(user, now);
  state.scheduler.on_dropped();
  state.inflight.erase(job.cache_key);
  inst_.prefetches_dropped->inc();
}

void ProxyEngine::pump(UserId& user, SimTime now, Decision* out) {
  drain_scheduler(state_for(user, now), out);
}

void ProxyEngine::admit_prefetches(UserState& state, std::vector<ReadyPrefetch> ready,
                                   SimTime now) {
  const bool policy_on = options_.policy.enabled;
  if (policy_on && !ready.empty()) {
    // One load-feedback tick per admission batch: the adaptive threshold
    // reads fleet-wide queue pressure (queued + outstanding) and the
    // dropped-after-enqueue counter, so overload raises the admission bar
    // before jobs pile up behind it.
    admission_.observe_load(inst_.prefetch_queued->value() + inst_.prefetch_outstanding->value(),
                            inst_.prefetches_dropped->value());
    // set(), not a delta: shards sharing a registry export a representative
    // threshold rather than a meaningless sum.
    inst_.policy_threshold->set(
        static_cast<std::int64_t>(admission_.threshold() * 1e6));
  }
  for (ReadyPrefetch& rp : ready) {
    const std::string& sig_id = rp.signature->id;

    if (!config_->prefetch_enabled(sig_id)) {
      inst_.skipped_disabled->inc();
      continue;
    }
    if (const auto* conditions = config_->conditions(sig_id)) {
      const bool pass = std::all_of(
          conditions->begin(), conditions->end(),
          [&](const FieldCondition& c) { return c.evaluate(rp.predecessor_body); });
      if (!pass) {
        inst_.skipped_condition->inc();
        continue;
      }
    }
    if (policy_on) {
      // Value-based admission + budget pacing (DESIGN.md §5j): issue only
      // when the expected saving per byte clears the adaptive threshold and
      // the token bucket has room for the expected size.
      const policy::Estimate estimate = sig_model_->estimate(rp.signature->app, sig_id);
      if (!admission_.admit(estimate)) {
        inst_.policy_rejected_value->inc();
        continue;
      }
      if (!state.pacer.allows(static_cast<Bytes>(estimate.bytes), now)) {
        inst_.policy_rejected_budget->inc();
        continue;
      }
    } else if (config_->data_budget && state.prefetch_bytes_used >= *config_->data_budget) {
      // Legacy hard cliff: all prefetching stops for the rest of the session
      // once the budget is spent.
      inst_.skipped_budget->inc();
      continue;
    }

    PrefetchJob job;
    job.sig_id = sig_id;
    job.cache_key = rp.request.cache_key(ignored_headers_);
    // Probabilistic prefetching (Fig. 9 / Fig. 17). The coin is deterministic
    // per request identity: ready instances are re-emitted on every relevant
    // observation, and re-flipping would let every instance eventually win.
    const double probability = config_->probability(sig_id);
    if (probability < 1.0) {
      const std::uint64_t h = hash_combine(fnv1a(job.cache_key), seed_);
      const double coin = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (coin >= probability) {
        inst_.skipped_probability->inc();
        continue;
      }
    }
    if (state.cache.contains(job.cache_key, now) || state.inflight.contains(job.cache_key) ||
        state.forwarding.contains(job.cache_key)) {
      inst_.skipped_duplicate->inc();
      continue;
    }
    if (!state.prefetched_generation.insert(job.cache_key).second) {
      // Already attempted since the last client request; re-admitting (after
      // an eviction under cache pressure) would let cyclic dependency chains
      // prefetch without end.
      inst_.skipped_refetch->inc();
      continue;
    }
    state.inflight.insert(job.cache_key);
    job.request = std::move(rp.request);
    for (const auto& [name, value] : config_->added_headers(sig_id)) {
      job.request.headers.add(name, value);
    }
    job.enqueued_at = now;
    if (policy_on) {
      inst_.policy_admitted->inc();
      // Issue-time feedback: the batch's own admissions lower p_use for
      // signatures with no proven uses, so one fan-out burst self-limits.
      sig_model_->on_issued(rp.signature->app, sig_id);
    }
    if (auto evicted = state.scheduler.enqueue(std::move(job), sig_stats_)) {
      // The bounded queue shed its lowest-priority job before issue: release
      // its bookkeeping. Not a drop — it never counted as issued.
      state.inflight.erase(evicted->cache_key);
      inst_.skipped_queue_full->inc();
    }
  }
}

const ProxyStats& ProxyEngine::stats() const {
  // Refresh the compatibility view in place: old references observe the
  // update on the next stats() call.
  const auto count = [](const obs::Counter* c) {
    return static_cast<std::size_t>(c->value());
  };
  ProxyStats& s = stats_view_;
  s.client_requests = count(inst_.client_requests);
  s.cache_hits = count(inst_.cache_hits);
  s.cache_expired = count(inst_.cache_expired);
  s.forwarded = count(inst_.forwarded);
  s.prefetches_issued = count(inst_.prefetches_issued);
  s.prefetch_responses = count(inst_.prefetch_responses);
  s.prefetch_failures = count(inst_.prefetch_failures);
  s.skipped_disabled = count(inst_.skipped_disabled);
  s.skipped_probability = count(inst_.skipped_probability);
  s.skipped_condition = count(inst_.skipped_condition);
  s.skipped_budget = count(inst_.skipped_budget);
  s.skipped_duplicate = count(inst_.skipped_duplicate);
  s.skipped_refetch = count(inst_.skipped_refetch);
  s.skipped_queue_full = count(inst_.skipped_queue_full);
  s.policy_admitted = count(inst_.policy_admitted);
  s.policy_rejected_value = count(inst_.policy_rejected_value);
  s.policy_rejected_budget = count(inst_.policy_rejected_budget);
  s.forward_cached = count(inst_.forward_cached);
  s.prefetches_dropped = count(inst_.prefetches_dropped);
  s.evicted_lru = count(inst_.evicted_lru);
  s.evicted_expired = count(inst_.evicted_expired);
  s.users_evicted = count(inst_.users_evicted);
  s.bytes_origin_to_proxy = inst_.bytes_origin_to_proxy->value();
  s.bytes_prefetched = inst_.bytes_prefetched->value();
  s.bytes_served_from_cache = inst_.bytes_served_from_cache->value();
  s.prefetch_wasted_entries = count(inst_.wasted_entries);
  s.prefetch_wasted_bytes = inst_.wasted_bytes->value();
  s.cache_entries = static_cast<std::size_t>(inst_.cache_entries->value());
  s.cache_bytes = inst_.cache_bytes->value();
  return stats_view_;
}

// --- durable learned state (DESIGN.md §5k) -----------------------------------

std::string_view ProxyEngine::app_of(std::string_view sig_id) const {
  const TransactionSignature* sig = signatures_->find(sig_id);
  return sig == nullptr ? std::string_view{} : std::string_view(sig->app);
}

void ProxyEngine::persist_user_entry(const std::string& name, const UserState& state,
                                     ByteWriter& out) const {
  out.str(name);
  ByteWriter payload;
  payload.u64(state.prefetch_bytes_used);
  // Each learning facet is framed with its own version + length so a future
  // facet revision can evolve without bumping the "users" section framing.
  ByteWriter wildcards;
  state.learning.persist_wildcards(wildcards);
  payload.u32(LearningEngine::kWildcardsPersistVersion);
  payload.u64(wildcards.size());
  payload.raw(wildcards.data().data(), wildcards.size());
  ByteWriter flows;
  state.learning.persist_flows(flows);
  payload.u32(LearningEngine::kFlowsPersistVersion);
  payload.u64(flows.size());
  payload.raw(flows.data().data(), flows.size());
  out.u64(payload.size());
  out.raw(payload.data().data(), payload.size());
}

void ProxyEngine::persist_user_entries(ByteWriter& out) const {
  for (const auto& [name, slot] : users_) {
    persist_user_entry(name, *slots_[slot].state, out);
  }
}

void ProxyEngine::restore_user_entry(std::string_view name, ByteReader& entry,
                                     std::uint32_t version, SimTime now) {
  (void)version;  // "users" v1 is the only framing so far
  UserId id = resolve_user(name, now);
  UserState& state = *slots_[id.slot()].state;
  state.prefetch_bytes_used = entry.u64();
  const std::uint32_t wildcards_version = entry.u32();
  const std::uint64_t wildcards_len = entry.u64();
  const std::uint8_t* wildcards_data = entry.cursor();
  entry.skip(wildcards_len);
  if (wildcards_version <= LearningEngine::kWildcardsPersistVersion) {
    ByteReader in(wildcards_data, wildcards_len);
    state.learning.restore_wildcards(in, wildcards_version);
  }
  const std::uint32_t flows_version = entry.u32();
  const std::uint64_t flows_len = entry.u64();
  const std::uint8_t* flows_data = entry.cursor();
  entry.skip(flows_len);
  if (flows_version <= LearningEngine::kFlowsPersistVersion) {
    ByteReader in(flows_data, flows_len);
    state.learning.restore_flows(in, flows_version);
  }
}

void ProxyEngine::persist_sig_stats_to(SnapshotBuilder& builder) const {
  ByteWriter payload;
  sig_stats_.persist(payload);
  builder.add_raw("scheduler.sig_stats/" + std::to_string(shard_index_),
                  SignatureStats::kPersistVersion, payload);
}

void ProxyEngine::restore_sig_stats_from(const SnapshotView& view) {
  const std::string name = "scheduler.sig_stats/" + std::to_string(shard_index_);
  const SnapshotView::Section* section = view.find(name);
  if (section == nullptr || section->version > SignatureStats::kPersistVersion) return;
  ByteReader in(section->data, section->size);
  sig_stats_.restore(in, section->version);
}

void ProxyEngine::snapshot_to(SnapshotBuilder& builder) const {
  ByteWriter users;
  users.u32(static_cast<std::uint32_t>(users_.size()));
  persist_user_entries(users);
  builder.add_raw("users", kUsersSectionVersion, users);
  if (owns_sig_model()) {
    ByteWriter model;
    own_sig_model_.persist(model);
    builder.add_raw("policy.model", policy::SignatureModel::kPersistVersion, model);
  }
  persist_sig_stats_to(builder);
}

std::size_t ProxyEngine::restore_from(const SnapshotView& view, SimTime now) {
  std::size_t restored = 0;
  const SnapshotView::Section* users = view.find("users");
  if (users != nullptr && users->version <= kUsersSectionVersion) {
    ByteReader in(users->data, users->size);
    const std::uint32_t count = in.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::string name = in.str();
      const std::uint64_t len = in.u64();
      const std::uint8_t* data = in.cursor();
      in.skip(len);
      ByteReader entry(data, len);
      restore_user_entry(name, entry, users->version, now);
      ++restored;
    }
  }
  if (owns_sig_model()) {
    const SnapshotView::Section* model = view.find("policy.model");
    if (model != nullptr && model->version <= policy::SignatureModel::kPersistVersion) {
      ByteReader in(model->data, model->size);
      own_sig_model_.restore(in, model->version, now);
    }
  }
  restore_sig_stats_from(view);
  return restored;
}

std::vector<std::uint8_t> ProxyEngine::export_user(std::string_view user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return {};
  ByteWriter entry;
  persist_user_entry(it->first, *slots_[it->second].state, entry);
  SnapshotBuilder builder;
  builder.add_raw("user", kUsersSectionVersion, entry);
  return builder.finish();
}

bool ProxyEngine::import_user(const std::vector<std::uint8_t>& blob, SimTime now) {
  const SnapshotView view(blob);
  const SnapshotView::Section* section = view.find("user");
  if (section == nullptr || section->version > kUsersSectionVersion) return false;
  ByteReader in(section->data, section->size);
  const std::string name = in.str();
  const std::uint64_t len = in.u64();
  const std::uint8_t* data = in.cursor();
  in.skip(len);
  ByteReader entry(data, len);
  restore_user_entry(name, entry, section->version, now);
  return true;
}

const LearningEngine* ProxyEngine::learning_for(const std::string& user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? nullptr : &slots_[it->second].state->learning;
}

const PrefetchCache* ProxyEngine::cache_for(const std::string& user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? nullptr : &slots_[it->second].state->cache;
}

}  // namespace appx::core
