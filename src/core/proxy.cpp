#include "core/proxy.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace appx::core {

ProxyEngine::ProxyEngine(const SignatureSet* signatures, const ProxyConfig* config,
                         std::uint64_t seed)
    : signatures_(signatures), config_(config), seed_(seed), rng_(seed) {
  if (signatures == nullptr) throw InvalidArgumentError("ProxyEngine: null signature set");
  if (config == nullptr) throw InvalidArgumentError("ProxyEngine: null config");
  ignored_headers_ = config->all_added_header_names();
}

ProxyEngine::UserState& ProxyEngine::user_state(const std::string& user, SimTime now) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    it = users_.emplace(user, std::make_unique<UserState>(signatures_, *config_)).first;
    it->second->cache.set_eviction_counters(&stats_.evicted_lru, &stats_.evicted_expired);
    // New arrivals pay the bookkeeping cost: reap idle users (and enforce the
    // hard cap) only when the user set actually grows, keeping the hot
    // request path O(log n).
    evict_idle_users(now, user);
  }
  it->second->last_active = now;
  return *it->second;
}

void ProxyEngine::evict_idle_users(SimTime now, const std::string& keep) {
  if (config_->user_idle_timeout) {
    for (auto it = users_.begin(); it != users_.end();) {
      if (it->first != keep && now - it->second->last_active >= *config_->user_idle_timeout) {
        it = users_.erase(it);
        ++stats_.users_evicted;
      } else {
        ++it;
      }
    }
  }
  // Still above the cap (a burst of genuinely active users): evict the
  // least-recently-active regardless of the idle timeout so users_ stays
  // bounded no matter the workload.
  while (config_->max_users > 0 && users_.size() > config_->max_users) {
    auto victim = users_.end();
    for (auto it = users_.begin(); it != users_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == users_.end() || it->second->last_active < victim->second->last_active) {
        victim = it;
      }
    }
    if (victim == users_.end()) break;  // only `keep` is left
    users_.erase(victim);
    ++stats_.users_evicted;
  }
}

ClientDecision ProxyEngine::on_client_request(const std::string& user,
                                              const http::Request& request, SimTime now) {
  ++stats_.client_requests;
  UserState& state = user_state(user, now);
  // New client activity opens a fresh prefetch generation: keys evicted since
  // their last prefetch become eligible again.
  state.prefetched_generation.clear();

  const std::string key = request.cache_key(ignored_headers_);
  PrefetchCache::Lookup lookup = PrefetchCache::Lookup::kMiss;
  auto cached = state.cache.get(key, now, &lookup);

  // Record the hit/miss against the signature so the scheduler's hit-rate
  // prioritisation learns which prefetches pay off.
  const TransactionSignature* sig =
      signatures_->match_request(request, config_->app_for_host(request.uri.host));
  if (sig != nullptr && signatures_->is_successor(sig->id)) {
    sig_stats_.record_lookup(sig->id, lookup == PrefetchCache::Lookup::kHit);
  }

  ClientDecision decision;
  if (lookup == PrefetchCache::Lookup::kHit) {
    ++stats_.cache_hits;
    stats_.bytes_served_from_cache += cached->wire_size();
    decision.served = std::move(cached);  // shares the cache entry, no body copy
    return decision;
  }
  if (lookup == PrefetchCache::Lookup::kExpired) ++stats_.cache_expired;
  ++stats_.forwarded;
  state.forwarding.insert(key);
  return decision;
}

void ProxyEngine::on_origin_response(const std::string& user, const http::Request& request,
                                     const http::Response& response, SimTime now) {
  UserState& state = user_state(user, now);
  stats_.bytes_origin_to_proxy += response.wire_size();
  state.forwarding.erase(request.cache_key(ignored_headers_));

  admit_prefetches(state, state.learning.observe(request, response), now);
}

void ProxyEngine::on_prefetch_response(const std::string& user, const PrefetchJob& job,
                                       const http::Response& response, SimTime now,
                                       double response_time_ms) {
  UserState& state = user_state(user, now);
  state.scheduler.on_completed();
  state.inflight.erase(job.cache_key);
  ++stats_.prefetch_responses;
  stats_.bytes_prefetched += response.wire_size();
  state.prefetch_bytes_used += response.wire_size();
  sig_stats_.record_response_time(job.sig_id, response_time_ms);

  if (!response.ok()) {
    ++stats_.prefetch_failures;
    log_debug("proxy") << "prefetch for " << job.sig_id << " failed with status "
                       << response.status;
    return;
  }

  PrefetchCache::Entry entry;
  entry.set_response(response);
  entry.sig_id = job.sig_id;
  entry.fetched_at = now;
  if (const auto expiry = config_->expiration(job.sig_id)) entry.expires_at = now + *expiry;
  state.cache.put(job.cache_key, std::move(entry), now);

  // Chained prefetching: treat the prefetched transaction as an observed one
  // so successors of this signature can become ready in turn.
  admit_prefetches(state, state.learning.observe(job.request, response), now);
}

void ProxyEngine::on_prefetch_dropped(const std::string& user, const PrefetchJob& job,
                                      SimTime now) {
  UserState& state = user_state(user, now);
  state.scheduler.on_dropped();
  state.inflight.erase(job.cache_key);
  ++stats_.prefetches_dropped;
}

void ProxyEngine::admit_prefetches(UserState& state, std::vector<ReadyPrefetch> ready,
                                   SimTime now) {
  for (ReadyPrefetch& rp : ready) {
    const std::string& sig_id = rp.signature->id;

    if (!config_->prefetch_enabled(sig_id)) {
      ++stats_.skipped_disabled;
      continue;
    }
    if (const auto* conditions = config_->conditions(sig_id)) {
      const bool pass = std::all_of(
          conditions->begin(), conditions->end(),
          [&](const FieldCondition& c) { return c.evaluate(rp.predecessor_body); });
      if (!pass) {
        ++stats_.skipped_condition;
        continue;
      }
    }
    if (config_->data_budget && state.prefetch_bytes_used >= *config_->data_budget) {
      ++stats_.skipped_budget;
      continue;
    }

    PrefetchJob job;
    job.sig_id = sig_id;
    job.cache_key = rp.request.cache_key(ignored_headers_);
    // Probabilistic prefetching (Fig. 9 / Fig. 17). The coin is deterministic
    // per request identity: ready instances are re-emitted on every relevant
    // observation, and re-flipping would let every instance eventually win.
    const double probability = config_->probability(sig_id);
    if (probability < 1.0) {
      const std::uint64_t h = hash_combine(fnv1a(job.cache_key), seed_);
      const double coin = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (coin >= probability) {
        ++stats_.skipped_probability;
        continue;
      }
    }
    if (state.cache.contains(job.cache_key, now) || state.inflight.contains(job.cache_key) ||
        state.forwarding.contains(job.cache_key)) {
      ++stats_.skipped_duplicate;
      continue;
    }
    if (!state.prefetched_generation.insert(job.cache_key).second) {
      // Already attempted since the last client request; re-admitting (after
      // an eviction under cache pressure) would let cyclic dependency chains
      // prefetch without end.
      ++stats_.skipped_refetch;
      continue;
    }
    state.inflight.insert(job.cache_key);
    job.request = std::move(rp.request);
    for (const auto& [name, value] : config_->added_headers(sig_id)) {
      job.request.headers.add(name, value);
    }
    job.enqueued_at = now;
    state.scheduler.enqueue(std::move(job), sig_stats_);
  }
}

std::vector<PrefetchJob> ProxyEngine::take_prefetches(const std::string& user, SimTime now) {
  UserState& state = user_state(user, now);
  std::vector<PrefetchJob> jobs;
  while (auto job = state.scheduler.dequeue()) {
    job->user = user;
    ++stats_.prefetches_issued;
    jobs.push_back(std::move(*job));
  }
  return jobs;
}

const LearningEngine* ProxyEngine::learning_for(const std::string& user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? nullptr : &it->second->learning;
}

const PrefetchCache* ProxyEngine::cache_for(const std::string& user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? nullptr : &it->second->cache;
}

}  // namespace appx::core
