// Prefetch priority scheduling (paper §5).
//
// Multiple prefetch requests can be outstanding; the proxy prioritises
// (a) signatures whose transactions take long to complete (prefetching them
// hides the most latency) and (b) signatures with high historical hit rates
// (their prefetched responses actually get used). The priority is the linear
// combination  w_time * avg_response_time_ms + w_hit * hit_rate * scale.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/user_id.hpp"
#include "http/message.hpp"
#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "util/byte_io.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace appx::core {

// A prefetch the proxy has decided to issue.
struct PrefetchJob {
  std::string user;  // display name; uid is the routing identity
  UserId uid;        // set when the issuing engine resolved the user
  std::string sig_id;
  http::Request request;
  std::string cache_key;  // canonical identity, computed before add_headers
  double priority = 0;
  SimTime enqueued_at = 0;
};

// Per-signature response time / hit-rate statistics shared by all users.
class SignatureStats {
 public:
  // Mirror per-signature breakdowns into a registry: each signature gets
  // appx_signature_response_time_us{sig="..."} (histogram),
  // appx_signature_lookups_total{sig="..."} and
  // appx_signature_hits_total{sig="..."}. Registry must outlive this object.
  void bind_registry(obs::MetricsRegistry* registry);

  void record_response_time(std::string_view sig_id, double ms);
  void record_lookup(std::string_view sig_id, bool hit);

  double avg_response_time_ms(std::string_view sig_id) const;  // 0 when unknown
  double hit_rate(std::string_view sig_id) const;              // 0.5 prior

  // Persistence (snapshot section "scheduler.sig_stats", DESIGN.md §5k).
  // restore() merges through sig() so registry bindings are re-resolved in
  // this process rather than trusted from the snapshot.
  static constexpr std::uint32_t kPersistVersion = 1;
  void persist(ByteWriter& out) const;
  void restore(ByteReader& in, std::uint32_t version);

 private:
  struct PerSig {
    RunningAverage response_time{0.3};
    RatioTracker hits;
    // Resolved once per signature when a registry is bound.
    obs::Histogram* response_time_us = nullptr;
    obs::Counter* lookups = nullptr;
    obs::Counter* lookup_hits = nullptr;
  };
  PerSig& sig(std::string_view sig_id);

  std::map<std::string, PerSig, std::less<>> per_sig_;
  obs::MetricsRegistry* registry_ = nullptr;
};

class PrefetchScheduler {
 public:
  struct Weights {
    double time_weight = 1.0;
    // Hit rate is in [0,1]; scale it into the same magnitude as typical
    // response times (ms) so both terms matter.
    double hit_weight = 200.0;
  };

  // Queue-depth gauges shared by every per-user scheduler; a scheduler
  // subtracts its remaining contribution on destruction.
  struct Metrics {
    obs::Gauge* queued = nullptr;
    obs::Gauge* outstanding = nullptr;
  };

  // max_queued bounds the jobs waiting behind the outstanding window;
  // 0 = unbounded. Overflow evicts the lowest-priority job (see enqueue).
  explicit PrefetchScheduler(Weights weights = Weights{1.0, 200.0},
                             std::size_t max_outstanding = 32, std::size_t max_queued = 0);
  ~PrefetchScheduler();
  PrefetchScheduler(const PrefetchScheduler&) = delete;
  PrefetchScheduler& operator=(const PrefetchScheduler&) = delete;

  void bind_metrics(const Metrics& metrics);

  // Compute the job's priority from current stats and queue it. When the
  // queue bound is hit, the *lowest-priority* queued job (possibly the one
  // just inserted; newest among equals) is evicted and returned so the caller
  // can release bookkeeping for it — it was never issued, so it does not
  // count against the responses + failures + dropped == issued invariant.
  std::optional<PrefetchJob> enqueue(PrefetchJob job, const SignatureStats& stats);

  // Highest-priority job if the outstanding window has room.
  std::optional<PrefetchJob> dequeue();

  // Every dequeued job must be resolved exactly once: on_completed() when its
  // response arrived, on_dropped() when the caller abandoned it (queue
  // overflow, connection teardown, an error path that skips the response).
  // A job left unresolved would hold its outstanding-window slot forever and
  // silently throttle prefetching to zero.
  void on_completed();
  void on_dropped();

  std::size_t queued() const { return queue_.size(); }
  std::size_t outstanding() const { return outstanding_; }
  std::size_t completed() const { return completed_; }
  std::size_t dropped() const { return dropped_; }
  void set_max_outstanding(std::size_t n) { max_outstanding_ = n; }

 private:
  void gauge_add(obs::Gauge* gauge, std::int64_t delta) {
    if (gauge != nullptr && delta != 0) gauge->add(delta);
  }

  Weights weights_;
  Metrics metrics_;
  std::size_t max_outstanding_;
  std::size_t max_queued_;
  std::size_t outstanding_ = 0;
  std::size_t completed_ = 0;
  std::size_t dropped_ = 0;
  // Kept sorted by priority (descending) at insertion; ties broken FIFO.
  std::vector<PrefetchJob> queue_;
  std::uint64_t seq_ = 0;
};

}  // namespace appx::core
