#include "core/baselines.hpp"

#include <cctype>

#include "core/learning.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace appx::core {

// --- BaselineEngine -------------------------------------------------------------------

BaselineEngine::BaselineEngine(std::optional<Duration> expiration) : expiration_(expiration) {}

void BaselineEngine::seed_user(UserState& state, std::vector<PrefetchJob>* out) {
  (void)state;
  (void)out;
}

void BaselineEngine::learn(UserState& state, const http::Request& request,
                           const http::Response& response, SimTime now,
                           std::vector<PrefetchJob>* out) {
  (void)state;
  (void)request;
  (void)response;
  (void)now;
  (void)out;
}

UserId BaselineEngine::resolve_user(std::string_view user, SimTime now) {
  (void)now;
  auto it = users_.find(user);
  if (it == users_.end()) {
    it = users_.emplace(std::string(user), std::make_unique<UserState>()).first;
    it->second->id = UserId(std::make_shared<const std::string>(user), fnv1a(user),
                            /*shard=*/0, /*slot=*/0, /*generation=*/0);
  }
  return it->second->id;
}

BaselineEngine::UserState& BaselineEngine::state_for(UserId& id, SimTime now) {
  if (!id.valid()) throw InvalidArgumentError("BaselineEngine: unresolved UserId");
  const auto it = users_.find(id.name());
  if (it != users_.end()) return *it->second;
  // Baselines never evict users, so a valid id normally stays resolvable;
  // re-intern defensively for ids minted before a hypothetical reset.
  id = resolve_user(id.name(), now);
  return *users_.find(id.name())->second;
}

void BaselineEngine::issue(UserState& state, std::vector<PrefetchJob> jobs, Decision* out) {
  for (PrefetchJob& job : jobs) {
    job.user = state.id.name();
    job.uid = state.id;
    ++stats_.prefetches_issued;
    out->prefetches.push_back(std::move(job));
  }
}

void BaselineEngine::seed_once(UserState& state, Decision* out) {
  if (state.seeded) return;
  state.seeded = true;
  std::vector<PrefetchJob> jobs;
  seed_user(state, &jobs);
  issue(state, std::move(jobs), out);
}

void BaselineEngine::on_request(UserId& user, const http::Request& request, SimTime now,
                                Decision* out) {
  ++stats_.client_requests;
  UserState& state = state_for(user, now);
  PrefetchCache::Lookup lookup = PrefetchCache::Lookup::kMiss;
  auto cached = state.cache.get(request.cache_key(), now, &lookup);
  if (lookup == PrefetchCache::Lookup::kHit) {
    ++stats_.cache_hits;
    stats_.bytes_served_from_cache += cached->wire_size();
    out->served = std::move(cached);
  } else {
    if (lookup == PrefetchCache::Lookup::kExpired) ++stats_.cache_expired;
    ++stats_.forwarded;
  }
  seed_once(state, out);
}

void BaselineEngine::on_response(UserId& user, const http::Request& request,
                                 const http::Response& response, SimTime now, Decision* out) {
  UserState& state = state_for(user, now);
  stats_.bytes_origin_to_proxy += response.wire_size();
  std::vector<PrefetchJob> jobs;
  learn(state, request, response, now, &jobs);
  issue(state, std::move(jobs), out);
  seed_once(state, out);
}

void BaselineEngine::on_prefetch_response(UserId& user, const PrefetchJob& job,
                                          const http::Response& response, SimTime now,
                                          double response_time_ms, Decision* out) {
  (void)response_time_ms;
  (void)out;
  UserState& state = state_for(user, now);
  stats_.bytes_prefetched += response.wire_size();
  if (!response.ok()) {
    ++stats_.prefetch_failures;
    return;
  }
  ++stats_.prefetch_responses;
  PrefetchCache::Entry entry;
  entry.set_response(response);
  entry.sig_id = job.sig_id;
  entry.fetched_at = now;
  if (expiration_) entry.expires_at = now + *expiration_;
  state.cache.put(job.cache_key, std::move(entry), now);
}

void BaselineEngine::on_prefetch_dropped(UserId& user, const PrefetchJob& job, SimTime now) {
  (void)job;
  state_for(user, now);
  ++stats_.prefetches_dropped;
}

void BaselineEngine::pump(UserId& user, SimTime now, Decision* out) {
  seed_once(state_for(user, now), out);
}

// --- URL extraction -----------------------------------------------------------------

std::vector<std::string> extract_urls(std::string_view body) {
  std::vector<std::string> urls;
  std::size_t pos = 0;
  while (true) {
    const std::size_t start = body.find("http", pos);
    if (start == std::string_view::npos) break;
    std::string_view rest = body.substr(start);
    std::size_t scheme_len = 0;
    if (rest.starts_with("https://")) {
      scheme_len = 8;
    } else if (rest.starts_with("http://")) {
      scheme_len = 7;
    } else {
      pos = start + 4;
      continue;
    }
    // Consume until a character that cannot be part of a URL (JSON quotes,
    // whitespace, backslashes).
    std::size_t end = scheme_len;
    while (end < rest.size()) {
      const char c = rest[end];
      if (c == '"' || c == '\'' || c == '\\' || c == '<' || c == '>' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      ++end;
    }
    if (end > scheme_len) urls.emplace_back(rest.substr(0, end));
    pos = start + end;
  }
  return urls;
}

// --- LooxyEngine ----------------------------------------------------------------------

LooxyEngine::LooxyEngine(std::optional<Duration> expiration) : BaselineEngine(expiration) {}

void LooxyEngine::learn(UserState& state, const http::Request& request,
                        const http::Response& response, SimTime now,
                        std::vector<PrefetchJob>* out) {
  (void)request;
  if (!response.ok() || response.body.empty()) return;

  for (const std::string& url : extract_urls(response.body)) {
    if (!state.inflight.insert(url).second) continue;  // already handled
    PrefetchJob job;
    job.sig_id = "looxy.url";
    try {
      job.request.method = "GET";
      job.request.uri = http::Uri::parse(url);
    } catch (const ParseError&) {
      continue;  // malformed embedded URL
    }
    job.cache_key = job.request.cache_key();
    if (state.cache.contains(job.cache_key, now)) continue;
    out->push_back(std::move(job));
  }
}

// --- StaticOnlyEngine --------------------------------------------------------------------

StaticOnlyEngine::StaticOnlyEngine(const SignatureSet* signatures,
                                   std::optional<Duration> expiration)
    : BaselineEngine(expiration), signatures_(signatures) {
  if (signatures == nullptr) throw InvalidArgumentError("StaticOnlyEngine: null signatures");
  // A request is statically complete when an instance with NO bindings at all
  // is ready: no dependency holes, no run-time holes (PALOMA's requirement
  // that "an exact request message be identified during static analysis").
  for (const auto& sig : signatures->all()) {
    RequestInstance instance(sig.get(), {});
    if (instance.ready()) complete_.push_back(instance.materialize());
  }
}

void StaticOnlyEngine::seed_user(UserState& state, std::vector<PrefetchJob>* out) {
  (void)state;
  for (const http::Request& request : complete_) {
    PrefetchJob job;
    const TransactionSignature* sig = signatures_->match_request(request);
    job.sig_id = sig != nullptr ? sig->id : "static";
    job.request = request;
    job.cache_key = request.cache_key();
    out->push_back(std::move(job));
  }
}

}  // namespace appx::core
