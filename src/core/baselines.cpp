#include "core/baselines.hpp"

#include <cctype>

#include "core/learning.hpp"
#include "util/error.hpp"

namespace appx::core {

// --- URL extraction -----------------------------------------------------------------

std::vector<std::string> extract_urls(std::string_view body) {
  std::vector<std::string> urls;
  std::size_t pos = 0;
  while (true) {
    const std::size_t start = body.find("http", pos);
    if (start == std::string_view::npos) break;
    std::string_view rest = body.substr(start);
    std::size_t scheme_len = 0;
    if (rest.starts_with("https://")) {
      scheme_len = 8;
    } else if (rest.starts_with("http://")) {
      scheme_len = 7;
    } else {
      pos = start + 4;
      continue;
    }
    // Consume until a character that cannot be part of a URL (JSON quotes,
    // whitespace, backslashes).
    std::size_t end = scheme_len;
    while (end < rest.size()) {
      const char c = rest[end];
      if (c == '"' || c == '\'' || c == '\\' || c == '<' || c == '>' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      ++end;
    }
    if (end > scheme_len) urls.emplace_back(rest.substr(0, end));
    pos = start + end;
  }
  return urls;
}

// --- LooxyEngine ----------------------------------------------------------------------

LooxyEngine::LooxyEngine(std::optional<Duration> expiration) : expiration_(expiration) {}

LooxyEngine::UserState& LooxyEngine::user_state(const std::string& user) {
  auto it = users_.find(user);
  if (it == users_.end()) it = users_.emplace(user, std::make_unique<UserState>()).first;
  return *it->second;
}

ClientDecision LooxyEngine::on_client_request(const std::string& user,
                                              const http::Request& request, SimTime now) {
  ++stats_.client_requests;
  UserState& state = user_state(user);
  PrefetchCache::Lookup lookup = PrefetchCache::Lookup::kMiss;
  auto cached = state.cache.get(request.cache_key(), now, &lookup);
  ClientDecision decision;
  if (lookup == PrefetchCache::Lookup::kHit) {
    ++stats_.cache_hits;
    stats_.bytes_served_from_cache += cached->wire_size();
    decision.served = std::move(cached);
    return decision;
  }
  if (lookup == PrefetchCache::Lookup::kExpired) ++stats_.cache_expired;
  ++stats_.forwarded;
  return decision;
}

void LooxyEngine::on_origin_response(const std::string& user, const http::Request& request,
                                     const http::Response& response, SimTime now) {
  (void)request;
  (void)now;
  UserState& state = user_state(user);
  stats_.bytes_origin_to_proxy += response.wire_size();
  if (!response.ok() || response.body.empty()) return;

  for (const std::string& url : extract_urls(response.body)) {
    if (!state.inflight.insert(url).second) continue;  // already handled
    PrefetchJob job;
    job.user = user;
    job.sig_id = "looxy.url";
    try {
      job.request.method = "GET";
      job.request.uri = http::Uri::parse(url);
    } catch (const ParseError&) {
      continue;  // malformed embedded URL
    }
    job.cache_key = job.request.cache_key();
    if (state.cache.contains(job.cache_key, now)) continue;
    state.pending.push_back(std::move(job));
  }
}

void LooxyEngine::on_prefetch_response(const std::string& user, const PrefetchJob& job,
                                       const http::Response& response, SimTime now,
                                       double response_time_ms) {
  (void)response_time_ms;
  UserState& state = user_state(user);
  ++stats_.prefetch_responses;
  stats_.bytes_prefetched += response.wire_size();
  if (!response.ok()) {
    ++stats_.prefetch_failures;
    return;
  }
  PrefetchCache::Entry entry;
  entry.set_response(response);
  entry.sig_id = job.sig_id;
  entry.fetched_at = now;
  if (expiration_) entry.expires_at = now + *expiration_;
  state.cache.put(job.cache_key, std::move(entry), now);
}

std::vector<PrefetchJob> LooxyEngine::take_prefetches(const std::string& user, SimTime now) {
  (void)now;
  UserState& state = user_state(user);
  std::vector<PrefetchJob> jobs = std::move(state.pending);
  state.pending.clear();
  stats_.prefetches_issued += jobs.size();
  return jobs;
}

// --- StaticOnlyEngine --------------------------------------------------------------------

StaticOnlyEngine::StaticOnlyEngine(const SignatureSet* signatures,
                                   std::optional<Duration> expiration)
    : signatures_(signatures), expiration_(expiration) {
  if (signatures == nullptr) throw InvalidArgumentError("StaticOnlyEngine: null signatures");
  // A request is statically complete when an instance with NO bindings at all
  // is ready: no dependency holes, no run-time holes (PALOMA's requirement
  // that "an exact request message be identified during static analysis").
  for (const auto& sig : signatures->all()) {
    RequestInstance instance(sig.get(), {});
    if (instance.ready()) complete_.push_back(instance.materialize());
  }
}

ClientDecision StaticOnlyEngine::on_client_request(const std::string& user,
                                                   const http::Request& request, SimTime now) {
  ++stats_.client_requests;
  auto it = users_.find(user);
  if (it == users_.end()) it = users_.emplace(user, std::make_unique<UserState>()).first;
  PrefetchCache::Lookup lookup = PrefetchCache::Lookup::kMiss;
  auto cached = it->second->cache.get(request.cache_key(), now, &lookup);
  ClientDecision decision;
  if (lookup == PrefetchCache::Lookup::kHit) {
    ++stats_.cache_hits;
    decision.served = std::move(cached);
    return decision;
  }
  ++stats_.forwarded;
  return decision;
}

void StaticOnlyEngine::on_origin_response(const std::string& user, const http::Request& request,
                                          const http::Response& response, SimTime now) {
  (void)user;
  (void)request;
  (void)now;
  stats_.bytes_origin_to_proxy += response.wire_size();
}

void StaticOnlyEngine::on_prefetch_response(const std::string& user, const PrefetchJob& job,
                                            const http::Response& response, SimTime now,
                                            double response_time_ms) {
  (void)response_time_ms;
  auto it = users_.find(user);
  if (it == users_.end()) return;
  ++stats_.prefetch_responses;
  stats_.bytes_prefetched += response.wire_size();
  if (!response.ok()) {
    ++stats_.prefetch_failures;
    return;
  }
  PrefetchCache::Entry entry;
  entry.set_response(response);
  entry.sig_id = job.sig_id;
  entry.fetched_at = now;
  if (expiration_) entry.expires_at = now + *expiration_;
  it->second->cache.put(job.cache_key, std::move(entry), now);
}

std::vector<PrefetchJob> StaticOnlyEngine::take_prefetches(const std::string& user,
                                                           SimTime now) {
  (void)now;
  auto it = users_.find(user);
  if (it == users_.end()) it = users_.emplace(user, std::make_unique<UserState>()).first;
  if (it->second->seeded) return {};
  it->second->seeded = true;
  std::vector<PrefetchJob> jobs;
  for (const http::Request& request : complete_) {
    PrefetchJob job;
    job.user = user;
    const TransactionSignature* sig = signatures_->match_request(request);
    job.sig_id = sig != nullptr ? sig->id : "static";
    job.request = request;
    job.cache_key = request.cache_key();
    jobs.push_back(std::move(job));
  }
  stats_.prefetches_issued += jobs.size();
  return jobs;
}

}  // namespace appx::core
