#include "core/config.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::core {

namespace strings = appx::strings;

// --- FieldCondition -------------------------------------------------------------

bool FieldCondition::evaluate(const json::Value& predecessor_body) const {
  const json::Path parsed(path);
  const json::Value* node = parsed.resolve_first(predecessor_body);
  if (node == nullptr) return false;
  if (node->is_array() || node->is_object()) return false;

  const std::string lhs = node->scalar_to_string();
  const auto lhs_num = strings::to_double(lhs);
  const auto rhs_num = strings::to_double(value);

  if (op == Op::kContains) return strings::contains(lhs, value);

  if (lhs_num && rhs_num) {
    switch (op) {
      case Op::kGt: return *lhs_num > *rhs_num;
      case Op::kGe: return *lhs_num >= *rhs_num;
      case Op::kLt: return *lhs_num < *rhs_num;
      case Op::kLe: return *lhs_num <= *rhs_num;
      case Op::kEq: return *lhs_num == *rhs_num;
      case Op::kNe: return *lhs_num != *rhs_num;
      case Op::kContains: break;
    }
  }
  switch (op) {
    case Op::kGt: return lhs > value;
    case Op::kGe: return lhs >= value;
    case Op::kLt: return lhs < value;
    case Op::kLe: return lhs <= value;
    case Op::kEq: return lhs == value;
    case Op::kNe: return lhs != value;
    case Op::kContains: break;
  }
  return false;
}

std::string FieldCondition::op_name() const {
  switch (op) {
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kContains: return "contains";
  }
  return "?";
}

FieldCondition::Op FieldCondition::parse_op(std::string_view name) {
  if (name == "gt") return Op::kGt;
  if (name == "ge") return Op::kGe;
  if (name == "lt") return Op::kLt;
  if (name == "le") return Op::kLe;
  if (name == "eq") return Op::kEq;
  if (name == "ne") return Op::kNe;
  if (name == "contains") return Op::kContains;
  throw ParseError("FieldCondition: unknown operator '" + std::string(name) + "'");
}

// --- ProxyConfig -----------------------------------------------------------------

std::string ProxyConfig::app_for_host(const std::string& host) const {
  const auto it = host_apps.find(host);
  return it == host_apps.end() ? std::string{} : it->second;
}

void ProxyConfig::set_policy(SignaturePolicy policy) {
  if (policy.hash.empty()) throw InvalidArgumentError("SignaturePolicy: empty hash");
  if (policy.probability < 0 || policy.probability > 1) {
    throw InvalidArgumentError("SignaturePolicy: probability outside [0,1]");
  }
  policies_[policy.hash] = std::move(policy);
}

const SignaturePolicy* ProxyConfig::policy_for(std::string_view sig_id) const {
  const auto it = policies_.find(sig_id);
  return it == policies_.end() ? nullptr : &it->second;
}

bool ProxyConfig::prefetch_enabled(std::string_view sig_id) const {
  const SignaturePolicy* p = policy_for(sig_id);
  return p == nullptr ? true : p->prefetch;
}

double ProxyConfig::probability(std::string_view sig_id) const {
  const SignaturePolicy* p = policy_for(sig_id);
  const double local = (p == nullptr) ? 1.0 : p->probability;
  return local * global_probability;
}

std::optional<Duration> ProxyConfig::expiration(std::string_view sig_id) const {
  const SignaturePolicy* p = policy_for(sig_id);
  if (p != nullptr) return p->expiration_time;
  return default_expiration;
}

std::vector<std::pair<std::string, std::string>> ProxyConfig::added_headers(
    std::string_view sig_id) const {
  const SignaturePolicy* p = policy_for(sig_id);
  return p == nullptr ? std::vector<std::pair<std::string, std::string>>{} : p->add_headers;
}

const std::vector<FieldCondition>* ProxyConfig::conditions(std::string_view sig_id) const {
  const SignaturePolicy* p = policy_for(sig_id);
  if (p == nullptr || p->conditions.empty()) return nullptr;
  return &p->conditions;
}

std::vector<std::string> ProxyConfig::all_added_header_names() const {
  std::vector<std::string> names;
  for (const auto& [_, policy] : policies_) {
    for (const auto& [name, value] : policy.add_headers) {
      (void)value;
      if (std::find(names.begin(), names.end(), name) == names.end()) names.push_back(name);
    }
  }
  return names;
}

std::string ProxyConfig::to_json() const {
  json::Object root;
  json::Object global;
  global["probability"] = global_probability;
  global["default_expiration_ms"] =
      default_expiration ? json::Value(to_ms(*default_expiration)) : json::Value(nullptr);
  global["data_budget_bytes"] =
      data_budget ? json::Value(static_cast<std::int64_t>(*data_budget)) : json::Value(nullptr);
  global["max_outstanding_prefetches"] =
      static_cast<std::int64_t>(max_outstanding_prefetches);
  global["max_queued_prefetches"] = static_cast<std::int64_t>(max_queued_prefetches);
  global["cache_max_entries"] = static_cast<std::int64_t>(cache_max_entries);
  global["cache_max_bytes"] = static_cast<std::int64_t>(cache_max_bytes);
  global["max_users"] = static_cast<std::int64_t>(max_users);
  global["user_idle_timeout_ms"] =
      user_idle_timeout ? json::Value(to_ms(*user_idle_timeout)) : json::Value(nullptr);
  global["scheduler_time_weight"] = scheduler_time_weight;
  global["scheduler_hit_weight"] = scheduler_hit_weight;
  if (!host_apps.empty()) {
    json::Object hosts;
    for (const auto& [host, app] : host_apps) hosts[host] = app;
    global["host_apps"] = std::move(hosts);
  }
  {
    json::Object pol;
    pol["enabled"] = policy.enabled;
    pol["min_value"] = policy.min_value;
    pol["max_threshold"] = policy.max_threshold;
    pol["threshold_growth"] = policy.threshold_growth;
    pol["threshold_decay"] = policy.threshold_decay;
    pol["target_queue_depth"] = policy.target_queue_depth;
    pol["budget_window_ms"] = to_ms(policy.budget_window);
    pol["hit_byte_refund"] = policy.hit_byte_refund;
    pol["learn_expiry"] = policy.learn_expiry;
    pol["min_learned_expiry_ms"] = to_ms(policy.min_learned_expiry);
    global["policy"] = std::move(pol);
  }
  root["global"] = std::move(global);

  json::Array sigs;
  for (const auto& [_, p] : policies_) {
    json::Object entry;
    entry["hash"] = p.hash;
    entry["uri"] = p.uri;
    entry["prefetch"] = p.prefetch;
    entry["expiration_time_ms"] =
        p.expiration_time ? json::Value(to_ms(*p.expiration_time)) : json::Value(nullptr);
    entry["probability"] = p.probability;
    if (!p.add_headers.empty()) {
      json::Array headers;
      for (const auto& [name, value] : p.add_headers) {
        json::Object h;
        h["name"] = name;
        h["value"] = value;
        headers.emplace_back(std::move(h));
      }
      entry["add_header"] = std::move(headers);
    }
    if (!p.conditions.empty()) {
      json::Array conditions;
      for (const FieldCondition& c : p.conditions) {
        json::Object cond;
        cond["path"] = c.path;
        cond["op"] = c.op_name();
        cond["value"] = c.value;
        conditions.emplace_back(std::move(cond));
      }
      entry["condition"] = std::move(conditions);
    }
    sigs.emplace_back(std::move(entry));
  }
  root["signatures"] = std::move(sigs);
  return json::Value(std::move(root)).dump(2);
}

ProxyConfig ProxyConfig::from_json(std::string_view text) {
  const json::Value root = json::parse(text);
  ProxyConfig config;
  if (const json::Value* global = root.find("global")) {
    if (const json::Value* v = global->find("probability")) config.global_probability = v->as_double();
    if (const json::Value* v = global->find("default_expiration_ms")) {
      config.default_expiration =
          v->is_null() ? std::nullopt : std::optional<Duration>(milliseconds(v->as_double()));
    }
    if (const json::Value* v = global->find("data_budget_bytes")) {
      config.data_budget = v->is_null() ? std::nullopt : std::optional<Bytes>(v->as_int());
    }
    if (const json::Value* v = global->find("max_outstanding_prefetches")) {
      config.max_outstanding_prefetches = static_cast<std::size_t>(v->as_int());
    }
    if (const json::Value* v = global->find("max_queued_prefetches")) {
      config.max_queued_prefetches = static_cast<std::size_t>(v->as_int());
    }
    if (const json::Value* v = global->find("cache_max_entries")) {
      config.cache_max_entries = static_cast<std::size_t>(v->as_int());
    }
    if (const json::Value* v = global->find("cache_max_bytes")) {
      config.cache_max_bytes = static_cast<Bytes>(v->as_int());
    }
    if (const json::Value* v = global->find("max_users")) {
      config.max_users = static_cast<std::size_t>(v->as_int());
    }
    if (const json::Value* v = global->find("user_idle_timeout_ms")) {
      config.user_idle_timeout =
          v->is_null() ? std::nullopt : std::optional<Duration>(milliseconds(v->as_double()));
    }
    if (const json::Value* v = global->find("scheduler_time_weight")) {
      config.scheduler_time_weight = v->as_double();
    }
    if (const json::Value* v = global->find("scheduler_hit_weight")) {
      config.scheduler_hit_weight = v->as_double();
    }
    if (const json::Value* v = global->find("host_apps")) {
      for (const auto& [host, app] : v->as_object()) {
        config.host_apps[host] = app.as_string();
      }
    }
    if (const json::Value* pol = global->find("policy")) {
      policy::PolicyOptions& p = config.policy;
      if (const json::Value* v = pol->find("enabled")) p.enabled = v->as_bool();
      if (const json::Value* v = pol->find("min_value")) p.min_value = v->as_double();
      if (const json::Value* v = pol->find("max_threshold")) p.max_threshold = v->as_double();
      if (const json::Value* v = pol->find("threshold_growth")) {
        p.threshold_growth = v->as_double();
      }
      if (const json::Value* v = pol->find("threshold_decay")) {
        p.threshold_decay = v->as_double();
      }
      if (const json::Value* v = pol->find("target_queue_depth")) {
        p.target_queue_depth = v->as_int();
      }
      if (const json::Value* v = pol->find("budget_window_ms")) {
        p.budget_window = milliseconds(v->as_double());
      }
      if (const json::Value* v = pol->find("hit_byte_refund")) {
        p.hit_byte_refund = v->as_double();
      }
      if (const json::Value* v = pol->find("learn_expiry")) p.learn_expiry = v->as_bool();
      if (const json::Value* v = pol->find("min_learned_expiry_ms")) {
        p.min_learned_expiry = milliseconds(v->as_double());
      }
      p.validate().throw_if_error();
    }
  }
  if (const json::Value* sigs = root.find("signatures")) {
    for (const json::Value& entry : sigs->as_array()) {
      SignaturePolicy p;
      p.hash = entry.at("hash").as_string();
      if (const json::Value* v = entry.find("uri")) p.uri = v->as_string();
      if (const json::Value* v = entry.find("prefetch")) p.prefetch = v->as_bool();
      if (const json::Value* v = entry.find("expiration_time_ms")) {
        p.expiration_time =
            v->is_null() ? std::nullopt : std::optional<Duration>(milliseconds(v->as_double()));
      }
      if (const json::Value* v = entry.find("probability")) p.probability = v->as_double();
      if (const json::Value* v = entry.find("add_header")) {
        for (const json::Value& h : v->as_array()) {
          p.add_headers.emplace_back(h.at("name").as_string(), h.at("value").as_string());
        }
      }
      if (const json::Value* v = entry.find("condition")) {
        for (const json::Value& c : v->as_array()) {
          FieldCondition cond;
          cond.path = c.at("path").as_string();
          cond.op = FieldCondition::parse_op(c.at("op").as_string());
          cond.value = c.at("value").as_string();
          p.conditions.push_back(std::move(cond));
        }
      }
      config.set_policy(std::move(p));
    }
  }
  return config;
}

}  // namespace appx::core
