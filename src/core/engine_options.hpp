// One documented knob struct for the whole proxy runtime.
//
// Historically the knobs were scattered: ProxyConfig carried runtime caps
// next to the paper's per-signature policy model, PrefetchCache::Limits and
// PrefetchScheduler::Weights were constructed ad hoc, and the live servers
// had their own LiveProxyOptions. EngineOptions collapses them: the engine
// and the live front end read exactly one struct, snapshotted at
// construction, with per-field defaults below and validate() reporting bad
// values as a util::Error instead of silently clamping them.
//
// ProxyConfig keeps its runtime-cap fields only as the serialized (JSON)
// source — from_config() maps them in; the engine itself never reads caps
// from ProxyConfig at run time. Policy fields (probability, expiration,
// conditions, add_headers, host_apps, data budget) stay in ProxyConfig and
// remain live-reloadable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "policy/options.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace appx::core {

class ProxyConfig;

struct EngineOptions {
  // --- engine core ----------------------------------------------------------

  // Seed for the probabilistic-prefetch coin; shard i of a sharded engine
  // derives its own stream as seed ^ i.
  std::uint64_t seed = 1;
  // Shard count for ShardedProxyEngine; 0 = hardware_concurrency (min 1).
  std::size_t shards = 0;
  // Max outstanding prefetches per user (the scheduler window). Must be >= 1.
  std::size_t max_outstanding_prefetches = 32;
  // Per-user bound on jobs *queued* behind the outstanding window; overflow
  // evicts the lowest-priority queued job (reported as a skipped prefetch,
  // reason=queue_full — it was never issued). 0 = unbounded (historical
  // behaviour).
  std::size_t max_queued_prefetches = 0;
  // Per-user prefetch-cache footprint caps (LRU eviction beyond these);
  // 0 = unlimited.
  std::size_t cache_max_entries = 4096;
  Bytes cache_max_bytes = megabytes(64);
  // Engine-wide bound on per-user state: at most max_users user contexts per
  // shard (0 = unlimited); users idle for user_idle_timeout are evicted when
  // a new user arrives (nullopt = only the max_users cap applies).
  std::size_t max_users = 4096;
  std::optional<Duration> user_idle_timeout = minutes(30);
  // Prefetch priority = time_weight * avg_response_ms + hit_weight * hit_rate
  // (paper §5). Zeroing both degrades the scheduler to FIFO (ablation).
  double scheduler_time_weight = 1.0;
  double scheduler_hit_weight = 200.0;
  // Cost-aware prefetch policy (value-based admission, budget pacing, learned
  // expiry — DESIGN.md §5j). Off by default; ProxyConfig carries the same
  // block in its serialized `global.policy` object.
  policy::PolicyOptions policy;

  // --- live transport (LiveProxyServer); 0 disables a timeout ---------------

  // Upstream (proxy->origin) I/O bounds. A fetch that cannot complete within
  // request_deadline resolves as a 504 instead of blocking its thread.
  Duration connect_timeout = seconds(5);
  Duration io_timeout = seconds(10);        // per upstream read/write
  Duration request_deadline = seconds(15);  // whole upstream fetch
  // Prefetch execution: worker pool size (>= 1) and queue bound (overflow
  // drops the oldest queued job and reports it to the engine; 0 = unbounded).
  std::size_t prefetch_workers = 4;
  std::size_t max_prefetch_queue = 256;
  // Event-loop runtime (DESIGN.md §5g). loop_threads reactor threads share
  // the accept load via SO_REUSEPORT (0 = hardware_concurrency); each runs
  // one epoll loop driving non-blocking client connections. Engine events and
  // blocking upstream fetches run on request_workers threads off the loops
  // (0 = max(4, 2 * hardware_concurrency) — they block on origin I/O, so they
  // outnumber the loops).
  std::size_t loop_threads = 0;
  std::size_t request_workers = 0;
  // Event-loop I/O backend (DESIGN.md §5l): "epoll" (readiness mode, the
  // default), "uring" (io_uring completion mode; construction fails on
  // kernels without the required support), or "auto" (uring when supported,
  // else epoll). "" defers to the APPX_IO_BACKEND environment variable
  // (default epoll), so whole test/bench suites can be re-run under a
  // different backend without touching call sites.
  std::string io_backend;
  // listen(2) accept-queue depth per listener; 0 = SOMAXCONN. The queue must
  // absorb connection storms (an open-loop ramp to 10k clients): when it
  // fills, the kernel silently drops SYNs and clients see connect timeouts.
  // Shrink only to deliberately shed load at the kernel boundary.
  int listen_backlog = 0;
  // File descriptors the server wants available (connections + listeners +
  // epoll/eventfd/timer overhead). At startup the soft RLIMIT_NOFILE is
  // raised to at least this (up to the hard limit); if the hard limit is
  // below it, construction fails fast with an actionable error instead of
  // the runtime dying mid-run with EMFILE at ~1k connections. 0 skips the
  // check.
  std::size_t min_file_descriptors = 1024;
  // A client connection idle (or dribbling an incomplete request — slow
  // loris) this long is closed. 0 disables the idle timer.
  Duration conn_idle_timeout = seconds(60);
  // Upstream keep-alive pool: at most this many idle connections are parked
  // per origin host (0 disables pooling — every fetch reconnects), each
  // health-checked on reuse and discarded after upstream_idle_timeout.
  std::size_t upstream_pool_per_host = 8;
  Duration upstream_idle_timeout = seconds(30);
  // Per-message size bounds on client connections (431/413 beyond them).
  // Mirrors net::ReaderLimits without a core->net dependency.
  struct ReaderBounds {
    std::size_t max_head_bytes = 64 * 1024;
    std::size_t max_body_bytes = 8 * 1024 * 1024;
  };
  ReaderBounds reader_limits;
  // Observability: capacity of the request-trace ring served at /appx/trace
  // (>= 1), and optional periodic JSON metrics snapshots (empty path
  // disables).
  std::size_t trace_ring_capacity = 128;
  std::string metrics_snapshot_path;
  Duration metrics_snapshot_interval = seconds(10);
  // Durable learned state (DESIGN.md §5k): binary engine-state snapshot.
  // Empty path disables. When set, the live server restores from the file at
  // startup (missing/corrupt/future-version snapshots degrade to a logged
  // cold start, never a crash) and a background writer re-dumps the learned
  // state every state_snapshot_interval via write-to-temp + atomic rename.
  std::string state_snapshot_path;
  Duration state_snapshot_interval = seconds(30);

  // Reject out-of-domain values with a message naming the field. Engines and
  // servers call throw_if_error() on this at construction — bad options fail
  // fast instead of being silently clamped.
  util::Error validate() const;

  // Snapshot the runtime caps a serialized ProxyConfig carries. The returned
  // options keep all transport defaults.
  static EngineOptions from_config(const ProxyConfig& config);
};

}  // namespace appx::core
