#include "core/learning.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::core {

// --- RequestInstance -----------------------------------------------------------

namespace {

std::string make_fingerprint(const Bindings& bindings) {
  std::string out;
  for (const auto& [k, v] : bindings) {  // std::map: already sorted by key
    out += k;
    out += '=';
    out += v;
    out += '\x1f';
  }
  return out;
}

}  // namespace

RequestInstance::RequestInstance(const TransactionSignature* sig, Bindings dependency_bindings)
    : sig_(sig),
      bindings_(dependency_bindings),
      dependency_bindings_(std::move(dependency_bindings)),
      fingerprint_(make_fingerprint(dependency_bindings_)) {}

void RequestInstance::bind(const Bindings& more) {
  for (const auto& [k, v] : more) bindings_[k] = v;
}

void RequestInstance::set_absent_optional(const std::vector<std::string>& absent) {
  absent_optional_.clear();
  absent_optional_.insert(absent.begin(), absent.end());
}

bool RequestInstance::field_present(const RequestField& field) const {
  return !field.optional || !absent_optional_.contains(field_key(field));
}

std::vector<std::string> RequestInstance::missing_holes() const {
  std::vector<std::string> missing;
  const auto check = [&](const FieldTemplate& t) {
    for (const std::string& hole : t.hole_names()) {
      if (!bindings_.contains(hole) &&
          std::find(missing.begin(), missing.end(), hole) == missing.end()) {
        missing.push_back(hole);
      }
    }
  };
  check(sig_->request.scheme);
  check(sig_->request.host);
  check(sig_->request.path);
  for (const auto* group : {&sig_->request.query, &sig_->request.headers, &sig_->request.body}) {
    for (const RequestField& f : *group) {
      if (field_present(f)) check(f.value);
    }
  }
  return missing;
}

bool RequestInstance::ready() const { return missing_holes().empty(); }

http::Request RequestInstance::materialize() const {
  if (!ready()) {
    throw InvalidStateError("RequestInstance: materialize before all holes are bound (" +
                            sig_->label + ")");
  }
  http::Request req;
  req.method = sig_->request.method;
  const auto scheme = sig_->request.scheme.fill(bindings_);
  req.uri.scheme = (scheme && !scheme->empty()) ? *scheme : "https";
  req.uri.host = *sig_->request.host.fill(bindings_);
  req.uri.path = *sig_->request.path.fill(bindings_);
  for (const RequestField& f : sig_->request.query) {
    if (field_present(f)) req.uri.add_query_param(f.name, *f.value.fill(bindings_));
  }
  for (const RequestField& f : sig_->request.headers) {
    if (field_present(f)) req.headers.add(f.name, *f.value.fill(bindings_));
  }
  if (sig_->request.body_kind == BodyKind::kForm) {
    http::FormFields fields;
    for (const RequestField& f : sig_->request.body) {
      if (field_present(f)) fields.emplace_back(f.name, *f.value.fill(bindings_));
    }
    req.set_form_fields(fields);
  }
  return req;
}

// --- LearningEngine --------------------------------------------------------------

LearningEngine::LearningEngine(const SignatureSet* signatures,
                               const std::map<std::string, std::string>* host_apps)
    : signatures_(signatures), host_apps_(host_apps) {
  if (signatures == nullptr) throw InvalidArgumentError("LearningEngine: null signature set");
}

std::vector<ReadyPrefetch> LearningEngine::observe(const http::Request& request,
                                                   const http::Response& response) {
  ++stats_.transactions_observed;
  std::vector<ReadyPrefetch> ready;

  // Fig. 6: identify the learning target by matching the incoming
  // transaction against the signatures. Signatures with no dependency in
  // either direction are filtered out implicitly (neither branch fires).
  std::string app_hint;
  if (host_apps_ != nullptr) {
    const auto it = host_apps_->find(request.uri.host);
    if (it != host_apps_->end()) app_hint = it->second;
  }
  const TransactionSignature* sig = signatures_->match_request(request, app_hint);
  if (sig == nullptr) return ready;
  ++stats_.signature_matches;

  const bool successor = signatures_->is_successor(sig->id);
  const bool predecessor = signatures_->is_predecessor(sig->id);

  if (successor) {
    // Learning target is a successor: the observed request is itself an
    // example instance; learn run-time values and the current instance class.
    const auto match = sig->match_ex(request);
    if (match) {
      ++stats_.successor_events;
      learn_from_successor(*sig, *match);
      collect_ready(*sig, json::Value(json::Object{}), ready);
    }
  }
  if (predecessor && response.ok()) {
    ++stats_.predecessor_events;
    learn_from_predecessor(*sig, response, ready);
  }
  return ready;
}

void LearningEngine::learn_from_successor(const TransactionSignature& succ,
                                          const TransactionSignature::MatchResult& match) {
  SignatureState& state = states_[succ.id];
  state.observed = true;
  state.recent_absent = match.absent_optional;

  // Only run-time holes are learned here; dependency holes are bound per
  // instance from predecessor responses (their values differ per target).
  for (const std::string& hole : signatures_->runtime_holes(succ.id)) {
    const auto it = match.bindings.find(hole);
    if (it != match.bindings.end()) state.runtime_bindings[hole] = it->second;
  }

  // Adapt pending instances to the most recent condition (Fig. 7 case 2).
  for (auto& [_, instance] : state.instances) {
    instance->bind(state.runtime_bindings);
    instance->set_absent_optional(state.recent_absent);
  }
}

void LearningEngine::learn_from_predecessor(const TransactionSignature& pred,
                                            const http::Response& response,
                                            std::vector<ReadyPrefetch>& out) {
  if (pred.response.body_kind != ResponseBodyKind::kJson) return;
  json::Value body;
  try {
    body = json::parse(response.body);
  } catch (const ParseError& e) {
    log_warn("learning") << "predecessor " << pred.label << ": unparsable response body: "
                         << e.what();
    return;
  }

  // Group outgoing edges by successor; each group yields one or more
  // instances of that successor.
  std::map<std::string, std::vector<const DependencyEdge*>> by_succ;
  for (const DependencyEdge* e : signatures_->edges_from(pred.id)) {
    by_succ[e->succ_id].push_back(e);
  }

  for (const auto& [succ_id, edges] : by_succ) {
    const TransactionSignature* succ = signatures_->find(succ_id);
    if (succ == nullptr) continue;
    SignatureState& state = states_[succ_id];

    for (Bindings& bindings : binding_sets_for(edges, body)) {
      if (bindings.empty()) continue;
      auto it = state.instances.find(make_fingerprint(bindings));
      if (it == state.instances.end()) {
        auto instance = std::make_unique<RequestInstance>(succ, std::move(bindings));
        // Seed with whatever run-time knowledge we already have.
        instance->bind(state.runtime_bindings);
        instance->set_absent_optional(state.recent_absent);
        const std::string fp = instance->fingerprint();
        it = state.instances.emplace(fp, std::move(instance)).first;
        ++stats_.instances_created;
      } else {
        it->second->bind(bindings);
      }
    }
    collect_ready(*succ, body, out);

    // Bound memory: drop issued instances once the pool gets large.
    if (state.instances.size() > 2048) {
      std::erase_if(state.instances, [](const auto& kv) { return kv.second->issued(); });
    }
  }
}

void LearningEngine::collect_ready(const TransactionSignature& sig,
                                   const json::Value& predecessor_body,
                                   std::vector<ReadyPrefetch>& out) {
  const auto it = states_.find(sig.id);
  if (it == states_.end()) return;
  for (auto& [_, instance] : it->second.instances) {
    if (!instance->ready()) continue;
    // Note: ready instances are re-emitted on every relevant observation;
    // the proxy deduplicates against its cache and in-flight set. This is
    // what allows re-prefetching after a cached response expires.
    ReadyPrefetch rp;
    rp.signature = &sig;
    rp.instance = instance.get();
    rp.request = instance->materialize();
    rp.predecessor_body = predecessor_body;
    instance->mark_issued();
    ++stats_.instances_ready;
    out.push_back(std::move(rp));
  }
}

std::vector<const RequestInstance*> LearningEngine::instances_of(std::string_view sig_id) const {
  std::vector<const RequestInstance*> out;
  const auto it = states_.find(sig_id);
  if (it == states_.end()) return out;
  for (const auto& [_, instance] : it->second.instances) out.push_back(instance.get());
  return out;
}

// --- persistence -------------------------------------------------------------------

namespace {

void write_bindings(ByteWriter& out, const Bindings& bindings) {
  out.u32(static_cast<std::uint32_t>(bindings.size()));
  for (const auto& [k, v] : bindings) {
    out.str(k);
    out.str(v);
  }
}

Bindings read_bindings(ByteReader& in) {
  Bindings bindings;
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string k = in.str();
    bindings[std::move(k)] = in.str();
  }
  return bindings;
}

void write_string_list(ByteWriter& out, const std::vector<std::string>& items) {
  out.u32(static_cast<std::uint32_t>(items.size()));
  for (const std::string& s : items) out.str(s);
}

std::vector<std::string> read_string_list(ByteReader& in) {
  std::vector<std::string> items;
  const std::uint32_t count = in.u32();
  items.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) items.push_back(in.str());
  return items;
}

}  // namespace

void LearningEngine::persist_wildcards(ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(states_.size()));
  for (const auto& [sig_id, state] : states_) {
    out.str(sig_id);
    out.u8(state.observed ? 1 : 0);
    write_bindings(out, state.runtime_bindings);
    write_string_list(out, state.recent_absent);
  }
}

void LearningEngine::restore_wildcards(ByteReader& in, std::uint32_t version) {
  (void)version;  // v1 is the only layout so far
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string sig_id = in.str();
    const bool observed = in.u8() != 0;
    Bindings runtime = read_bindings(in);
    std::vector<std::string> absent = read_string_list(in);
    // A signature the current set no longer carries: consume and drop.
    if (signatures_->find(sig_id) == nullptr) continue;
    SignatureState& state = states_[sig_id];
    state.observed = state.observed || observed;
    for (auto& [k, v] : runtime) state.runtime_bindings[k] = std::move(v);
    state.recent_absent = std::move(absent);
  }
}

void LearningEngine::persist_flows(ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(states_.size()));
  for (const auto& [sig_id, state] : states_) {
    out.str(sig_id);
    out.u32(static_cast<std::uint32_t>(state.instances.size()));
    for (const auto& [_, instance] : state.instances) {
      write_bindings(out, instance->dependency_bindings());
      write_bindings(out, instance->bindings());
      std::vector<std::string> absent(instance->absent_optional().begin(),
                                      instance->absent_optional().end());
      write_string_list(out, absent);
      // No issued flag: a snapshot outlives the cache, so restored instances
      // always come back un-issued (collect_ready + proxy dedup re-issue
      // them exactly once). Keeping the flag out of the format makes
      // persist(restore(x)) byte-identical to x.
    }
  }
}

void LearningEngine::restore_flows(ByteReader& in, std::uint32_t version) {
  (void)version;  // v1 is the only layout so far
  const std::uint32_t sig_count = in.u32();
  for (std::uint32_t s = 0; s < sig_count; ++s) {
    const std::string sig_id = in.str();
    const TransactionSignature* sig = signatures_->find(sig_id);
    const std::uint32_t instance_count = in.u32();
    for (std::uint32_t i = 0; i < instance_count; ++i) {
      Bindings dep = read_bindings(in);
      Bindings merged = read_bindings(in);
      std::vector<std::string> absent = read_string_list(in);
      if (sig == nullptr) continue;  // dropped signature: consume and skip
      auto instance = std::make_unique<RequestInstance>(sig, std::move(dep));
      instance->bind(merged);
      instance->set_absent_optional(absent);
      const std::string fp = instance->fingerprint();
      SignatureState& state = states_[sig_id];
      if (!state.instances.contains(fp)) {
        state.instances.emplace(fp, std::move(instance));
        ++stats_.instances_created;
      }
    }
  }
}

// --- dependency value extraction ---------------------------------------------------

namespace {

// Resolve a span of path steps against a value (same semantics as
// json::Path::resolve but usable on sub-paths).
std::vector<const json::Value*> resolve_steps(const json::Value& root,
                                              const json::PathStep* steps, std::size_t count) {
  std::vector<const json::Value*> frontier{&root};
  for (std::size_t s = 0; s < count; ++s) {
    const json::PathStep& step = steps[s];
    std::vector<const json::Value*> next;
    for (const json::Value* v : frontier) {
      const json::Value* target = v;
      if (!step.key.empty()) {
        target = v->find(step.key);
        if (target == nullptr) continue;
      }
      if (!step.indexed) {
        next.push_back(target);
        continue;
      }
      if (!target->is_array()) continue;
      const json::Array& arr = target->as_array();
      if (step.wildcard) {
        for (const json::Value& elem : arr) next.push_back(&elem);
      } else if (step.index < arr.size()) {
        next.push_back(&arr[step.index]);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

std::optional<std::string> scalar_at(const json::Value* v) {
  if (v == nullptr || v->is_array() || v->is_object()) return std::nullopt;
  return v->scalar_to_string();
}

}  // namespace

std::vector<Bindings> LearningEngine::binding_sets_for(
    const std::vector<const DependencyEdge*>& edges, const json::Value& body) {
  // Split edges into scalar paths and array-replicating ([*]) paths.
  Bindings shared;
  struct MultiGroup {
    std::string prefix_text;
    std::vector<json::PathStep> prefix;  // steps up to and including the [*] step,
                                         // with the wildcard stripped (yields the array)
    std::vector<std::pair<const DependencyEdge*, std::vector<json::PathStep>>> members;
  };
  std::vector<MultiGroup> groups;

  for (const DependencyEdge* edge : edges) {
    const json::Path path(edge->pred_path);
    const auto& steps = path.steps();
    std::size_t wild = steps.size();
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (steps[i].wildcard) {
        wild = i;
        break;
      }
    }
    if (wild == steps.size()) {
      // Scalar path: one value shared by every instance.
      const auto values = resolve_steps(body, steps.data(), steps.size());
      const auto value = scalar_at(values.empty() ? nullptr : values.front());
      if (value) shared[edge->hole] = *value;
      continue;
    }
    // Array path: group by the textual prefix so edges reading different
    // fields of the same array element land in the same instance.
    std::string prefix_text;
    for (std::size_t i = 0; i <= wild; ++i) {
      if (i != 0) prefix_text += '.';
      prefix_text += steps[i].key;
    }
    auto group = std::find_if(groups.begin(), groups.end(), [&](const MultiGroup& g) {
      return g.prefix_text == prefix_text;
    });
    if (group == groups.end()) {
      MultiGroup g;
      g.prefix_text = prefix_text;
      g.prefix.assign(steps.begin(), steps.begin() + static_cast<std::ptrdiff_t>(wild + 1));
      g.prefix.back().indexed = false;  // stop at the array itself
      g.prefix.back().wildcard = false;
      groups.push_back(std::move(g));
      group = groups.end() - 1;
    }
    group->members.emplace_back(
        edge, std::vector<json::PathStep>(steps.begin() + static_cast<std::ptrdiff_t>(wild + 1),
                                          steps.end()));
  }

  if (groups.empty()) {
    if (shared.empty()) return {};
    return {shared};
  }

  // One instance per element of the first group's array; further groups are
  // zipped by index when their arrays align, otherwise only their first
  // element contributes (distinct arrays rarely feed one request in
  // practice; when they do, element pairing by position is the best
  // information available statically).
  std::vector<Bindings> sets;
  const MultiGroup& first = groups.front();
  const auto arrays = resolve_steps(body, first.prefix.data(), first.prefix.size());
  if (arrays.empty() || !arrays.front()->is_array()) return shared.empty() ? std::vector<Bindings>{} : std::vector<Bindings>{shared};
  const json::Array& lead = arrays.front()->as_array();

  for (std::size_t i = 0; i < lead.size(); ++i) {
    Bindings bindings = shared;
    bool complete = true;
    for (const MultiGroup& group : groups) {
      const auto group_arrays = resolve_steps(body, group.prefix.data(), group.prefix.size());
      if (group_arrays.empty() || !group_arrays.front()->is_array()) {
        complete = false;
        break;
      }
      const json::Array& arr = group_arrays.front()->as_array();
      const std::size_t index = (arr.size() == lead.size()) ? i : 0;
      if (index >= arr.size()) {
        complete = false;
        break;
      }
      for (const auto& [edge, remainder] : group.members) {
        const auto values = resolve_steps(arr[index], remainder.data(), remainder.size());
        const auto value = scalar_at(values.empty() ? nullptr : values.front());
        if (!value) {
          complete = false;
          break;
        }
        bindings[edge->hole] = *value;
      }
      if (!complete) break;
    }
    if (complete) sets.push_back(std::move(bindings));
  }
  return sets;
}

}  // namespace appx::core
