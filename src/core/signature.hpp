// Transaction signatures and inter-transaction dependencies.
//
// A TransactionSignature is the static-analysis description of one HTTP
// transaction (request-response pair) an app can perform — the paper's Fig. 5.
// Request-side fields are FieldTemplates (literal text + named holes);
// response-side fields are JSON paths with value shapes. A DependencyEdge
// states that the value at a path of one signature's *response* binds a named
// hole in another signature's *request* — the "blue lines" in the paper's
// figures, and the entire basis for prefetching.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "http/message.hpp"
#include "json/json.hpp"
#include "pattern/template.hpp"
#include "util/byte_io.hpp"
#include "util/units.hpp"

namespace appx::core {

using pattern::Bindings;
using pattern::FieldTemplate;

// Where a request field lives.
enum class FieldLocation : std::uint8_t { kQuery, kHeader, kBody };

std::string_view to_string(FieldLocation location);

// One named request field. `optional` marks fields whose inclusion depends on
// a branch condition in the app code (paper Fig. 8); dynamic learning decides
// per run which optional fields are present by observing live traffic.
struct RequestField {
  FieldLocation location = FieldLocation::kBody;
  std::string name;
  FieldTemplate value;
  bool optional = false;

  bool operator==(const RequestField&) const = default;
};

// Body encoding of the request.
enum class BodyKind : std::uint8_t { kNone, kForm };

struct RequestSignature {
  std::string method = "GET";
  // Scheme+host may be unresolvable statically (paper C2: "the host URI of
  // HTTP requests that change dynamically"); then `host` contains a hole.
  FieldTemplate scheme;  // usually literal "https"
  FieldTemplate host;
  FieldTemplate path;  // URI path template, e.g. literal "/product/get"
  std::vector<RequestField> query;
  std::vector<RequestField> headers;
  BodyKind body_kind = BodyKind::kNone;
  std::vector<RequestField> body;

  // All hole names appearing anywhere in the request.
  std::vector<std::string> hole_names() const;

  bool operator==(const RequestSignature&) const = default;
};

// A field the analysis identified in a JSON response body.
struct ResponseField {
  std::string path;   // json::Path text, e.g. "data.products[*].product_info.id"
  std::string shape;  // value regex, usually ".*"

  bool operator==(const ResponseField&) const = default;
};

enum class ResponseBodyKind : std::uint8_t { kJson, kOpaque };

struct ResponseSignature {
  std::vector<RequestField> headers;  // e.g. Set-Cookie: .*
  ResponseBodyKind body_kind = ResponseBodyKind::kJson;
  std::vector<ResponseField> fields;

  bool operator==(const ResponseSignature&) const = default;
};

struct TransactionSignature {
  std::string id;     // stable short digest, assigned by finalize()
  std::string app;    // owning app package name
  std::string label;  // human-readable, e.g. "wish.get_feed"
  RequestSignature request;
  ResponseSignature response;

  // Recompute `id` from content (label excluded so renaming is harmless).
  void finalize();

  // URI regex in the paper's display form, e.g. "https://.*/product/get".
  std::string uri_regex() const;

  // Whole-request match against a concrete message: method, URI, headers and
  // body must all fit the templates, with consistent hole bindings across
  // fields. Optional fields may be absent. Returns the bindings on success.
  std::optional<Bindings> match(const http::Request& request) const;

  // Like match(), but also reports which optional fields were absent — the
  // "instance class" of the observed request (paper Fig. 8). Keys are
  // "<location>:<name>", e.g. "body:credit_id".
  struct MatchResult {
    Bindings bindings;
    std::vector<std::string> absent_optional;
  };
  std::optional<MatchResult> match_ex(const http::Request& request) const;

  // Names of holes in this request NOT fed by any dependency edge; these are
  // run-time values (host, cookie, version, ...) learned from live traffic.
  // (Computed by SignatureSet which knows the edges.)

  void serialize(ByteWriter& out) const;
  static TransactionSignature deserialize(ByteReader& in);

  bool operator==(const TransactionSignature&) const = default;
};

// Response-path -> request-hole dependency.
struct DependencyEdge {
  std::string pred_id;
  std::string pred_path;  // JSON path in the predecessor's response body
  std::string succ_id;
  std::string hole;  // hole name in the successor's request templates

  bool operator==(const DependencyEdge&) const = default;
};

class SignatureIndex;

// The complete analysis output for one or more apps: signatures + edges.
class SignatureSet {
 public:
  SignatureSet();
  SignatureSet(SignatureSet&&) noexcept;
  SignatureSet& operator=(SignatureSet&&) noexcept;
  ~SignatureSet();

  // Takes ownership; finalizes the signature if it has no id yet.
  // Throws InvalidArgumentError on duplicate ids.
  const TransactionSignature& add(TransactionSignature sig);
  void add_edge(DependencyEdge edge);

  const TransactionSignature* find(std::string_view id) const;
  const TransactionSignature& get(std::string_view id) const;  // throws NotFoundError
  const TransactionSignature* find_by_label(std::string_view label) const;

  const std::vector<std::unique_ptr<TransactionSignature>>& all() const { return signatures_; }
  const std::vector<DependencyEdge>& edges() const { return edges_; }
  std::size_t size() const { return signatures_.size(); }

  std::vector<const DependencyEdge*> edges_from(std::string_view pred_id) const;
  std::vector<const DependencyEdge*> edges_to(std::string_view succ_id) const;

  // Paper terminology: a signature is a *successor* (prefetchable) if some
  // edge feeds it, a *predecessor* if some edge reads from its response.
  bool is_successor(std::string_view id) const;
  bool is_predecessor(std::string_view id) const;
  std::vector<const TransactionSignature*> prefetchable() const;

  // Holes of `id` not bound by any incoming edge: run-time holes.
  std::vector<std::string> runtime_holes(std::string_view id) const;
  // Holes of `id` bound by incoming edges: dependency holes.
  std::vector<std::string> dependency_holes(std::string_view id) const;

  // Longest successive dependency chain (number of edges on the longest
  // simple path through the dependency DAG) — Table 3's "Max len".
  std::size_t max_chain_length() const;

  // First signature whose templates match the request (paper Fig. 6: "regex
  // matching" identifies the learning target). Signatures of `app` only when
  // app != "". Dispatches through a lazily (re)built SignatureIndex, so the
  // cost is near-constant in the set size; results are identical to
  // match_request_linear.
  const TransactionSignature* match_request(const http::Request& request,
                                            std::string_view app = "") const;

  // Reference implementation: linear scan over all signatures in insertion
  // order. Kept for tests and benchmarks of the dispatch index.
  const TransactionSignature* match_request_linear(const http::Request& request,
                                                   std::string_view app = "") const;

  // The dispatch index over the current signatures (built on first use,
  // invalidated by add/absorb).
  const SignatureIndex& index() const;

  // Restrict to one app's signatures (copies; used per-proxy-target).
  SignatureSet subset_for_app(std::string_view app) const;

  // Copy every signature and edge of `other` into this set (the paper's
  // multi-app proxy: "the proxy can accelerate multiple target apps").
  // Throws InvalidArgumentError on id collisions.
  void absorb(const SignatureSet& other);

  std::vector<std::uint8_t> serialize() const;
  static SignatureSet deserialize(const std::vector<std::uint8_t>& data);

 private:
  std::vector<std::unique_ptr<TransactionSignature>> signatures_;
  std::map<std::string, const TransactionSignature*, std::less<>> by_id_;
  std::vector<DependencyEdge> edges_;
  mutable std::unique_ptr<SignatureIndex> index_;  // null until first lookup
};

// Composite key identifying a field within a request: "<location>:<name>".
std::string field_key(const RequestField& field);

// Helper used by signature matching and learning: match a set of RequestField
// templates against concrete (name, value) pairs. Every non-optional field
// must be present and match; present optional fields must match; extra
// concrete pairs are allowed only if `allow_extra`. Bindings accumulate into
// `bindings` (shared across fields for consistency). When `absent_out` is
// non-null, the field keys of absent optional fields are appended to it.
bool match_fields(const std::vector<RequestField>& fields,
                  const std::vector<std::pair<std::string, std::string>>& concrete,
                  bool case_insensitive_names, bool allow_extra, Bindings& bindings,
                  std::vector<std::string>* absent_out = nullptr);

}  // namespace appx::core
