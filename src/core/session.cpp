#include "core/session.hpp"

namespace appx::core {

void ProxyLike::pump(UserId& user, SimTime now, Decision* out) {
  (void)user;
  (void)now;
  (void)out;
}

Session ProxyLike::session(std::string_view user, SimTime now) {
  return Session(this, resolve_user(user, now));
}

void ProxyLike::stash(const std::string& user, std::vector<PrefetchJob> jobs) {
  if (jobs.empty()) return;
  std::vector<PrefetchJob>& pending = compat_pending_[user];
  for (PrefetchJob& job : jobs) pending.push_back(std::move(job));
}

ClientDecision ProxyLike::on_client_request(const std::string& user,
                                            const http::Request& request, SimTime now) {
  UserId id = resolve_user(user, now);
  Decision d;
  on_request(id, request, now, &d);
  stash(user, std::move(d.prefetches));
  ClientDecision out;
  out.served = std::move(d.served);
  return out;
}

void ProxyLike::on_origin_response(const std::string& user, const http::Request& request,
                                   const http::Response& response, SimTime now) {
  UserId id = resolve_user(user, now);
  Decision d;
  on_response(id, request, response, now, &d);
  stash(user, std::move(d.prefetches));
}

void ProxyLike::on_prefetch_response(const std::string& user, const PrefetchJob& job,
                                     const http::Response& response, SimTime now,
                                     double response_time_ms) {
  UserId id = resolve_user(user, now);
  Decision d;
  on_prefetch_response(id, job, response, now, response_time_ms, &d);
  stash(user, std::move(d.prefetches));
}

void ProxyLike::on_prefetch_dropped(const std::string& user, const PrefetchJob& job,
                                    SimTime now) {
  UserId id = resolve_user(user, now);
  on_prefetch_dropped(id, job, now);
}

std::vector<PrefetchJob> ProxyLike::take_prefetches(const std::string& user, SimTime now) {
  UserId id = resolve_user(user, now);
  Decision d;
  pump(id, now, &d);
  std::vector<PrefetchJob> jobs;
  const auto it = compat_pending_.find(user);
  if (it != compat_pending_.end()) {
    jobs = std::move(it->second);
    compat_pending_.erase(it);
  }
  for (PrefetchJob& job : d.prefetches) jobs.push_back(std::move(job));
  return jobs;
}

}  // namespace appx::core
