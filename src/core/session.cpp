#include "core/session.hpp"

namespace appx::core {

void ProxyLike::pump(UserId& user, SimTime now, Decision* out) {
  (void)user;
  (void)now;
  (void)out;
}

Session ProxyLike::session(std::string_view user, SimTime now) {
  return Session(this, resolve_user(user, now));
}

}  // namespace appx::core
