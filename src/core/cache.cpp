#include "core/cache.hpp"

namespace appx::core {

void PrefetchCache::put(std::string key, Entry entry) {
  ++inserted_;
  entries_[std::move(key)] = std::move(entry);
}

std::shared_ptr<const http::Response> PrefetchCache::get(std::string_view key, SimTime now,
                                                         Lookup* result) {
  const auto set_result = [&](Lookup r) {
    if (result != nullptr) *result = r;
  };
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    set_result(Lookup::kMiss);
    return nullptr;
  }
  Entry& entry = it->second;
  if (entry.expires_at && now >= *entry.expires_at) {
    entries_.erase(it);
    set_result(Lookup::kExpired);
    return nullptr;
  }
  if (!entry.used) {
    entry.used = true;
    ++used_unique_;
  }
  set_result(Lookup::kHit);
  return entry.response;
}

bool PrefetchCache::contains(std::string_view key, SimTime now) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  const Entry& entry = it->second;
  return !(entry.expires_at && now >= *entry.expires_at);
}

std::size_t PrefetchCache::entries_used() const { return used_unique_; }

void PrefetchCache::clear() { entries_.clear(); }

}  // namespace appx::core
