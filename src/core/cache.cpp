#include "core/cache.hpp"

namespace appx::core {

PrefetchCache::~PrefetchCache() {
  // Entries still unused when the cache dies (user eviction, shutdown) were
  // prefetched for nothing: report them before the bytes vanish.
  if (hooks_.wasted) {
    for (const Node& node : lru_) fire_wasted(node);
  }
  // Give back this cache's share of the shared gauges.
  gauge_entries(-static_cast<std::int64_t>(index_.size()));
  gauge_bytes(-bytes_);
}

void PrefetchCache::fire_wasted(const Node& node) {
  if (hooks_.wasted && !node.entry.used) hooks_.wasted(node.entry.sig_id, node.charged);
}

void PrefetchCache::bind_metrics(const Metrics& metrics) {
  // Remove the old binding's contribution before adding to the new one.
  gauge_entries(-static_cast<std::int64_t>(index_.size()));
  gauge_bytes(-bytes_);
  metrics_ = metrics;
  gauge_entries(static_cast<std::int64_t>(index_.size()));
  gauge_bytes(bytes_);
}

void PrefetchCache::gauge_entries(std::int64_t delta) {
  if (metrics_.entries != nullptr && delta != 0) metrics_.entries->add(delta);
}

void PrefetchCache::gauge_bytes(Bytes delta) {
  if (metrics_.bytes != nullptr && delta != 0) metrics_.bytes->add(delta);
}

void PrefetchCache::count_eviction(bool was_expired) {
  if (was_expired) {
    ++evicted_expired_;
    if (sink_expired_ != nullptr) ++*sink_expired_;
    if (metrics_.evicted_expired != nullptr) metrics_.evicted_expired->inc();
  } else {
    ++evicted_lru_;
    if (sink_lru_ != nullptr) ++*sink_lru_;
    if (metrics_.evicted_lru != nullptr) metrics_.evicted_lru->inc();
  }
}

void PrefetchCache::erase_node(LruList::iterator it, bool count_as_expired) {
  fire_wasted(*it);
  count_eviction(count_as_expired);
  bytes_ -= it->charged;
  gauge_entries(-1);
  gauge_bytes(-it->charged);
  index_.erase(it->key);
  lru_.erase(it);
}

void PrefetchCache::enforce_limits(SimTime now) {
  const auto over = [&] {
    return (limits_.max_entries > 0 && index_.size() > limits_.max_entries) ||
           (limits_.max_bytes > 0 && bytes_ > limits_.max_bytes);
  };
  if (!over()) return;
  // Prefer reclaiming dead weight before punishing live entries.
  sweep(now);
  while (over() && !lru_.empty()) {
    erase_node(std::prev(lru_.end()), /*count_as_expired=*/false);
  }
}

void PrefetchCache::set_limits(Limits limits) {
  limits_ = limits;
  enforce_limits(0);
}

void PrefetchCache::put(std::string key, Entry entry, SimTime now) {
  ++inserted_;
  if (++puts_since_sweep_ >= kSweepInterval) {
    puts_since_sweep_ = 0;
    sweep(now);
  }
  const Bytes charged = entry.response->wire_size();
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // Overwrite in place and promote; not an eviction — but a replaced
    // response that was never served was still fetched for nothing.
    LruList::iterator node = it->second;
    fire_wasted(*node);
    bytes_ += charged - node->charged;
    gauge_bytes(charged - node->charged);
    node->charged = charged;
    node->entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, node);
  } else {
    lru_.push_front(Node{std::move(key), std::move(entry), charged});
    index_[lru_.front().key] = lru_.begin();
    bytes_ += charged;
    gauge_entries(1);
    gauge_bytes(charged);
  }
  enforce_limits(now);
}

std::shared_ptr<const http::Response> PrefetchCache::get(std::string_view key, SimTime now,
                                                         Lookup* result) {
  const auto set_result = [&](Lookup r) {
    if (result != nullptr) *result = r;
  };
  const auto it = index_.find(key);
  if (it == index_.end()) {
    set_result(Lookup::kMiss);
    return nullptr;
  }
  LruList::iterator node = it->second;
  if (expired(node->entry, now)) {
    erase_node(node, /*count_as_expired=*/true);
    set_result(Lookup::kExpired);
    return nullptr;
  }
  if (!node->entry.used) {
    node->entry.used = true;
    ++used_unique_;
    if (hooks_.first_use) hooks_.first_use(node->entry.sig_id, node->charged);
  }
  lru_.splice(lru_.begin(), lru_, node);  // promote to most-recently-used
  set_result(Lookup::kHit);
  return node->entry.response;
}

bool PrefetchCache::contains(std::string_view key, SimTime now) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  if (expired(it->second->entry, now)) {
    erase_node(it->second, /*count_as_expired=*/true);
    return false;
  }
  return true;
}

bool PrefetchCache::contains(std::string_view key, SimTime now) const {
  const auto it = index_.find(key);
  return it != index_.end() && !expired(it->second->entry, now);
}

std::size_t PrefetchCache::sweep(SimTime now) {
  std::size_t removed = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    const auto next = std::next(it);
    if (expired(it->entry, now)) {
      erase_node(it, /*count_as_expired=*/true);
      ++removed;
    }
    it = next;
  }
  return removed;
}

std::size_t PrefetchCache::entries_used() const { return used_unique_; }

Bytes PrefetchCache::unused_bytes() const {
  Bytes total = 0;
  for (const Node& node : lru_) {
    if (!node.entry.used) total += node.charged;
  }
  return total;
}

void PrefetchCache::clear() {
  gauge_entries(-static_cast<std::int64_t>(index_.size()));
  gauge_bytes(-bytes_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace appx::core
