#include "fuzz/fuzzer.hpp"

#include "util/error.hpp"

namespace appx::fuzz {

using apps::Interaction;

Fuzzer::Fuzzer(apps::AppClient* client, sim::Simulator* sim, FuzzParams params)
    : client_(client), sim_(sim), params_(params), rng_(params.seed) {
  if (client == nullptr) throw InvalidArgumentError("Fuzzer: null client");
  if (sim == nullptr) throw InvalidArgumentError("Fuzzer: null simulator");
}

void Fuzzer::start(std::function<void(const FuzzStats&)> done) {
  done_ = std::move(done);
  end_time_ = sim_->now() + params_.duration;

  // Launching the app is the session's first act (Monkey starts the app).
  busy_ = true;
  ++stats_.interactions_started;
  stats_.interactions_covered.insert(apps::kLaunchInteraction);
  client_->run_interaction(apps::kLaunchInteraction, 0,
                           [this](const apps::InteractionResult&) { busy_ = false; });
  sim_->schedule(params_.event_interval, [this] { on_event(); });
}

void Fuzzer::on_event() {
  if (sim_->now() >= end_time_) {
    if (done_) done_(stats_);
    return;
  }
  sim_->schedule(params_.event_interval, [this] { on_event(); });
  ++stats_.events;

  if (busy_) {
    ++stats_.events_while_busy;
    return;
  }
  if (!rng_.chance(params_.actionable_probability)) return;  // dead tap

  // Weighted pick over UI-triggered interactions.
  const auto& interactions = client_->spec().interactions;
  double total_weight = 0;
  for (const Interaction& it : interactions) {
    if (it.trigger == Interaction::Trigger::kUi) total_weight += it.fuzz_weight;
  }
  if (total_weight <= 0) return;
  double draw = rng_.uniform(0, total_weight);
  const Interaction* chosen = nullptr;
  for (const Interaction& it : interactions) {
    if (it.trigger != Interaction::Trigger::kUi) continue;
    draw -= it.fuzz_weight;
    if (draw <= 0) {
      chosen = &it;
      break;
    }
  }
  if (chosen == nullptr) return;

  // Random element selection, like a random tap on a list.
  std::size_t selection = 0;
  const auto& first_wave = chosen->waves.front();
  if (!first_wave.empty()) {
    const auto& ep = client_->spec().endpoint(first_wave.front().endpoint);
    const std::size_t n = client_->available_elements(ep);
    if (n > 0) selection = rng_.index(n);
  }
  if (!client_->can_run(chosen->name, selection)) {
    ++stats_.events_not_runnable;
    return;
  }
  busy_ = true;
  ++stats_.interactions_started;
  stats_.interactions_covered.insert(chosen->name);
  client_->run_interaction(chosen->name, selection,
                           [this](const apps::InteractionResult&) { busy_ = false; });
}

}  // namespace appx::fuzz
