// Monkey-style UI fuzzing (paper §4.3 and §6.1).
//
// Replays the paper's methodology: "we use Monkey to generate an arbitrary
// stream of user events, such as click or scrolling, at a 500 ms interval for
// a duration of an hour". Events land on the app's UI surface: each event
// either triggers one of the UI-triggered interactions (weighted pick) or is
// a no-op touch (scrolling over static content, taps while a page loads).
// Background and server-push interactions are unreachable — the coverage gap
// Table 3 quantifies.
#pragma once

#include <functional>
#include <set>
#include <string>

#include "apps/catalog.hpp"
#include "apps/client.hpp"
#include "util/rng.hpp"

namespace appx::fuzz {

struct FuzzParams {
  Duration event_interval = milliseconds(500);
  Duration duration = minutes(60);
  std::uint64_t seed = 1;
  // Probability that an event lands on an actionable element at all.
  double actionable_probability = 0.7;
};

struct FuzzStats {
  std::size_t events = 0;
  std::size_t interactions_started = 0;
  std::size_t events_while_busy = 0;
  std::size_t events_not_runnable = 0;
  std::set<std::string> interactions_covered;
};

class Fuzzer {
 public:
  // The client must be freshly constructed (the fuzzer performs the launch).
  Fuzzer(apps::AppClient* client, sim::Simulator* sim, FuzzParams params);

  // Schedules the whole fuzzing session on the simulator; call sim->run()
  // (or run_until) afterwards. `done` fires at the end of the session.
  void start(std::function<void(const FuzzStats&)> done = {});

  const FuzzStats& stats() const { return stats_; }

 private:
  void on_event();

  apps::AppClient* client_;
  sim::Simulator* sim_;
  FuzzParams params_;
  Rng rng_;
  FuzzStats stats_;
  SimTime end_time_ = 0;
  bool busy_ = false;
  std::function<void(const FuzzStats&)> done_;
};

}  // namespace appx::fuzz
