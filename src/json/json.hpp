// JSON value model, parser and serialiser.
//
// App transaction bodies are JSON (paper Fig. 5); the analysis describes
// response schemas as JSON paths ("data.products[*].product_info.id") and
// dynamic learning extracts dependency values from concrete responses at
// those paths. This is a small, strict implementation: UTF-8 pass-through,
// \uXXXX escapes decoded for the BMP, numbers kept as double or int64.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace appx::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys ordered, which makes serialisation canonical —
// important because signature hashes are computed over serialised forms.
using Object = std::map<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}
  Value(std::int64_t v) : data_(v) {}
  Value(double v) : data_(v) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Checked accessors; throw appx::InvalidStateError on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  // accepts int too
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  // Object member access. `at` throws NotFoundError; `find` returns nullptr.
  const Value& at(const std::string& key) const;
  const Value* find(const std::string& key) const;
  Value& operator[](const std::string& key);  // creates members (object only)

  // Array element access.
  const Value& at(std::size_t index) const;
  std::size_t size() const;  // array/object size; 0 otherwise

  // Render any scalar as a string (numbers/bools formatted; strings verbatim).
  // Used when a JSON field feeds a URI/query/body hole.
  std::string scalar_to_string() const;

  std::string dump(int indent = -1) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

// Parse a complete JSON document; throws appx::ParseError on malformed input.
Value parse(std::string_view text);

// --- Path queries -----------------------------------------------------------
//
// Path grammar: dot-separated member names with optional array steps:
//   data.products[*].product_info.id     (all elements)
//   data.products[0].id                  (one element)
// A path addressing through [*] can produce multiple results; this is exactly
// the paper's case of one /api/get-feed response yielding 30 prefetch
// instances (one per item id).

struct PathStep {
  std::string key;           // member name ("" for a bare index step)
  bool indexed = false;      // has [..]?
  bool wildcard = false;     // [*]
  std::size_t index = 0;     // [n]
};

class Path {
 public:
  // Parses the textual form; throws ParseError on bad syntax.
  explicit Path(std::string_view text);
  Path() = default;

  const std::string& text() const { return text_; }
  const std::vector<PathStep>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }

  // All values at this path (empty when the path does not resolve).
  std::vector<const Value*> resolve(const Value& root) const;

  // First value, or nullptr.
  const Value* resolve_first(const Value& root) const;

  // True when [*] appears: a single response can yield multiple bindings.
  bool is_multi() const;

  bool operator==(const Path& other) const { return text_ == other.text_; }

 private:
  std::string text_;
  std::vector<PathStep> steps_;
};

// Set the value at a path, creating intermediate objects/arrays. Wildcards
// are not allowed. Used by the content-store / server model.
void set_at(Value& root, const Path& path, Value value);

}  // namespace appx::json
