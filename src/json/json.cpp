#include "json/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace appx::json {

Value::Type Value::type() const {
  return static_cast<Type>(data_.index());
}

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  throw InvalidStateError("json: not a bool");
}

std::int64_t Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  throw InvalidStateError("json: not an int");
}

double Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  throw InvalidStateError("json: not a number");
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  throw InvalidStateError("json: not a string");
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&data_)) return *a;
  throw InvalidStateError("json: not an array");
}

Array& Value::as_array() {
  if (auto* a = std::get_if<Array>(&data_)) return *a;
  throw InvalidStateError("json: not an array");
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&data_)) return *o;
  throw InvalidStateError("json: not an object");
}

Object& Value::as_object() {
  if (auto* o = std::get_if<Object>(&data_)) return *o;
  throw InvalidStateError("json: not an object");
}

const Value& Value::at(const std::string& key) const {
  const Object& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) throw NotFoundError("json: no member '" + key + "'");
  return it->second;
}

const Value* Value::find(const std::string& key) const {
  const auto* obj = std::get_if<Object>(&data_);
  if (obj == nullptr) return nullptr;
  const auto it = obj->find(key);
  return it == obj->end() ? nullptr : &it->second;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = Object{};
  return as_object()[key];
}

const Value& Value::at(std::size_t index) const {
  const Array& arr = as_array();
  if (index >= arr.size()) throw NotFoundError("json: array index out of range");
  return arr[index];
}

std::size_t Value::size() const {
  if (const auto* a = std::get_if<Array>(&data_)) return a->size();
  if (const auto* o = std::get_if<Object>(&data_)) return o->size();
  return 0;
}

std::string Value::scalar_to_string() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return as_bool() ? "true" : "false";
    case Type::kInt: return std::to_string(as_int());
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", as_double());
      return buf;
    }
    case Type::kString: return as_string();
    case Type::kArray:
    case Type::kObject:
      throw InvalidStateError("json: scalar_to_string on a container");
  }
  throw InvalidStateError("json: bad type");
}

// --- serialisation ----------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void dump_value(const Value& v, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; return;
    case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Type::kInt: out += std::to_string(v.as_int()); return;
    case Value::Type::kDouble: {
      const double d = v.as_double();
      if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      return;
    }
    case Value::Type::kString: dump_string(v.as_string(), out); return;
    case Value::Type::kArray: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i != 0) out += ',';
        newline(depth + 1);
        dump_value(arr[i], indent, depth + 1, out);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Value::Type::kObject: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : obj) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        dump_string(key, out);
        out += pretty ? ": " : ":";
        dump_value(value, indent, depth + 1, out);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

// --- parsing ----------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json at offset " + std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw ParseError("json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_keyword("true")) return Value(true);
        fail("bad keyword");
      case 'f':
        if (consume_keyword("false")) return Value(false);
        fail("bad keyword");
      case 'n':
        if (consume_keyword("null")) return Value(nullptr);
        fail("bad keyword");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Encode BMP code point as UTF-8 (surrogate pairs unsupported —
          // sufficient for the synthetic workloads).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '-'/'+' only valid inside exponents, but from_chars re-validates.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    if (!is_double) {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) return Value(value);
    }
    double value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) fail("bad number");
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return JsonParser(text).parse_document(); }

// --- paths ------------------------------------------------------------------

Path::Path(std::string_view text) : text_(text) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    PathStep step;
    // Member name up to '.', '[' or end.
    const std::size_t name_end = text.find_first_of(".[", pos);
    step.key = std::string(text.substr(pos, name_end - pos));
    pos = (name_end == std::string_view::npos) ? text.size() : name_end;
    if (pos < text.size() && text[pos] == '[') {
      const std::size_t close = text.find(']', pos);
      if (close == std::string_view::npos) throw ParseError("json path: missing ']'");
      const std::string_view inner = text.substr(pos + 1, close - pos - 1);
      step.indexed = true;
      if (inner == "*") {
        step.wildcard = true;
      } else {
        std::size_t idx = 0;
        for (char c : inner) {
          if (!std::isdigit(static_cast<unsigned char>(c))) {
            throw ParseError("json path: bad index '" + std::string(inner) + "'");
          }
          idx = idx * 10 + static_cast<std::size_t>(c - '0');
        }
        if (inner.empty()) throw ParseError("json path: empty index");
        step.index = idx;
      }
      pos = close + 1;
    }
    if (step.key.empty() && !step.indexed) {
      throw ParseError("json path '" + std::string(text) + "': empty step");
    }
    steps_.push_back(std::move(step));
    if (pos < text.size()) {
      if (text[pos] != '.') throw ParseError("json path: expected '.'");
      ++pos;
      if (pos == text.size()) throw ParseError("json path: trailing '.'");
    }
  }
  if (steps_.empty()) throw ParseError("json path: empty path");
}

std::vector<const Value*> Path::resolve(const Value& root) const {
  std::vector<const Value*> frontier{&root};
  for (const PathStep& step : steps_) {
    std::vector<const Value*> next;
    for (const Value* v : frontier) {
      const Value* target = v;
      if (!step.key.empty()) {
        target = v->find(step.key);
        if (target == nullptr) continue;
      }
      if (!step.indexed) {
        next.push_back(target);
        continue;
      }
      if (!target->is_array()) continue;
      const Array& arr = target->as_array();
      if (step.wildcard) {
        for (const Value& elem : arr) next.push_back(&elem);
      } else if (step.index < arr.size()) {
        next.push_back(&arr[step.index]);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

const Value* Path::resolve_first(const Value& root) const {
  const auto all = resolve(root);
  return all.empty() ? nullptr : all.front();
}

bool Path::is_multi() const {
  for (const PathStep& step : steps_) {
    if (step.wildcard) return true;
  }
  return false;
}

void set_at(Value& root, const Path& path, Value value) {
  Value* node = &root;
  const auto& steps = path.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const PathStep& step = steps[i];
    if (step.wildcard) throw InvalidArgumentError("json set_at: wildcard not allowed");
    const bool last = (i + 1 == steps.size());
    if (!step.key.empty()) {
      if (node->is_null()) *node = Value(Object{});
      node = &(*node)[step.key];
    }
    if (step.indexed) {
      if (node->is_null()) *node = Value(Array{});
      Array& arr = node->as_array();
      if (arr.size() <= step.index) arr.resize(step.index + 1);
      node = &arr[step.index];
    }
    if (last) *node = std::move(value);
  }
}

}  // namespace appx::json
