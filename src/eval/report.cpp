#include "eval/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace appx::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw InvalidArgumentError("TablePrinter: no columns");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw InvalidArgumentError("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  print_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace appx::eval
