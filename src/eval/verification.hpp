// Testing & verification phase (paper §4.3).
//
// Before deployment, APPx drives the app with UI fuzzing through the proxy
// against the real servers and watches the proxy's own prefetch traffic:
//
//   * signatures whose reconstructed requests draw errors or no response are
//     disabled (here: the nonce-protected cart endpoint draws 403s),
//   * an expiration time is estimated per prefetchable signature by
//     re-fetching at growing intervals until the content changes,
//   * the result is emitted as the initial proxy configuration (Fig. 9)
//     which the service provider can then hand-tune.
#pragma once

#include <map>
#include <set>
#include <string>

#include "eval/experiments.hpp"

namespace appx::eval {

struct VerificationParams {
  fuzz::FuzzParams fuzz;
  // Expiration probing: start period and cap (doubling in between).
  Duration min_expiry_probe = minutes(1);
  Duration max_expiry_probe = minutes(128);
};

struct VerificationOutcome {
  // Signatures whose prefetches failed during fuzzing -> prefetch disabled.
  std::set<std::string> failing;
  // Verified-working prefetchable signatures.
  std::set<std::string> verified;
  // Estimated content lifetime per signature (probing result).
  std::map<std::string, Duration> expiry_estimates;
  // The generated initial configuration.
  core::ProxyConfig initial_config;
  std::size_t prefetches_observed = 0;
};

VerificationOutcome run_verification(const AnalyzedApp& app, const VerificationParams& params);

}  // namespace appx::eval
