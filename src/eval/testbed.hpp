// The simulated testbed (paper §6 methodology).
//
// Wires one app's clients, the acceleration proxy, and the origin servers
// onto a discrete-event simulator:
//
//   client(s) --- 55 ms RTT / 25 Mbps ---> proxy --- per-host RTT ---> origins
//
// matching the paper's setup ("RTT of 55 ms and bandwidth of 25 Mbps between
// the client and proxy", per-app origin RTTs from Table 2). The "Orig"
// baseline routes through the same path with prefetching disabled, exactly
// like measuring with the proxy as a dumb forwarder.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/client.hpp"
#include "apps/server.hpp"
#include "apps/spec.hpp"
#include "core/baselines.hpp"
#include "core/proxy.hpp"
#include "core/session.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace appx::eval {

// Which prefetching engine the testbed hosts.
enum class ProxyKind { kAppx, kLooxy, kStaticOnly };

struct TestbedConfig {
  ProxyKind proxy_kind = ProxyKind::kAppx;
  Duration client_proxy_rtt = milliseconds(55);
  double client_proxy_bw = mbps(25);
  // 0 = use the app's configured origin bandwidth.
  double proxy_origin_bw = 0;
  // Fig. 15/16: override every origin RTT (moves the proxy along the path).
  std::optional<Duration> proxy_origin_rtt_override;
  bool prefetch_enabled = true;  // false = "Orig" baseline
  core::ProxyConfig proxy_config;
  std::uint64_t seed = 1;
  // Uniform +-fraction noise on origin processing delays (load variance).
  double origin_proc_jitter = 0.2;
  // Fault injection: drop every Nth taken prefetch job (reported to the
  // engine via on_prefetch_dropped) instead of forwarding it to the origin.
  // 0 = never drop. Exercises the outstanding-window release path.
  std::size_t drop_every_nth_prefetch = 0;
};

// A request observed on the proxy's client side (for coverage analysis).
struct ObservedRequest {
  std::string user;
  SimTime at = 0;
  http::Request request;
};

class Testbed {
 public:
  // `app` and `signatures` must outlive the testbed.
  Testbed(const apps::AppSpec* app, const core::SignatureSet* signatures, TestbedConfig config);

  sim::Simulator& sim() { return sim_; }
  // The hosted engine; proxy() is the APPx engine and throws for baselines.
  core::ProxyLike& engine() { return *engine_; }
  core::ProxyEngine& proxy();
  apps::OriginServer& origin() { return origin_; }
  const TestbedConfig& config() const { return config_; }

  // Lazily creates the per-user client (per-user cookie/device env).
  apps::AppClient& client_for(const std::string& user);
  // Drops a user's client state (app re-launch / fresh install); the proxy's
  // per-user cache is NOT touched. Must not be called while that client has
  // interactions in flight (drain the simulator first).
  void reset_client(const std::string& user);

  // Data transferred origin->proxy (the paper's data-usage metric).
  Bytes origin_down_bytes() const;
  Bytes client_down_bytes() const;

  const std::vector<ObservedRequest>& observed_requests() const { return observed_; }

  // Prefetch jobs shed by drop_every_nth_prefetch fault injection.
  std::size_t prefetches_dropped() const { return prefetches_dropped_; }

  // Called with every completed prefetch (verification phase hooks in here).
  std::function<void(const core::PrefetchJob&, const http::Response&)> on_prefetch_response;

 private:
  apps::AppClient::Transport transport_for(const std::string& user);
  void forward_to_origin(const http::Request& request,
                         std::function<void(http::Response)> deliver);
  // Issue (or fault-inject-drop) the jobs an engine event surfaced; completed
  // prefetches feed their follow-up Decisions back through here (chaining).
  void dispatch_prefetches(std::vector<core::PrefetchJob> jobs);
  core::Session& session_for(const std::string& user);
  sim::Channel& origin_channel(const std::string& host);
  http::Response serve_with_epoch(const http::Request& request);

  const apps::AppSpec* app_;
  TestbedConfig config_;
  sim::Simulator sim_;
  apps::OriginServer origin_;
  core::ProxyConfig effective_config_;
  std::unique_ptr<core::ProxyLike> engine_;
  core::ProxyEngine* appx_ = nullptr;  // non-null in kAppx mode
  std::unique_ptr<sim::Channel> client_channel_;
  std::map<std::string, std::unique_ptr<sim::Channel>> origin_channels_;
  std::map<std::string, core::Session> sessions_;  // resolved once per user
  std::map<std::string, std::unique_ptr<apps::AppClient>> clients_;
  std::vector<ObservedRequest> observed_;
  std::size_t prefetches_taken_ = 0;
  std::size_t prefetches_dropped_ = 0;
  Rng proc_rng_{0xabcd1234};
};

}  // namespace appx::eval
