#include "eval/testbed.hpp"

#include "util/error.hpp"

namespace appx::eval {

Testbed::Testbed(const apps::AppSpec* app, const core::SignatureSet* signatures,
                 TestbedConfig config)
    : app_(app), config_(std::move(config)), origin_(app),
      effective_config_(config_.proxy_config) {
  if (app == nullptr) throw InvalidArgumentError("Testbed: null app spec");
  if (signatures == nullptr) throw InvalidArgumentError("Testbed: null signature set");
  if (!config_.prefetch_enabled) {
    // "Orig" baseline: same path, proxy never prefetches.
    effective_config_.global_probability = 0.0;
  }
  switch (config_.proxy_kind) {
    case ProxyKind::kAppx: {
      auto appx =
          std::make_unique<core::ProxyEngine>(signatures, &effective_config_, config_.seed);
      appx_ = appx.get();
      engine_ = std::move(appx);
      break;
    }
    case ProxyKind::kLooxy:
      engine_ = std::make_unique<core::LooxyEngine>(
          config_.prefetch_enabled ? effective_config_.default_expiration
                                   : std::optional<Duration>(Duration{0}));
      break;
    case ProxyKind::kStaticOnly:
      engine_ = std::make_unique<core::StaticOnlyEngine>(signatures,
                                                         effective_config_.default_expiration);
      break;
  }
  client_channel_ =
      std::make_unique<sim::Channel>(&sim_, config_.client_proxy_rtt, config_.client_proxy_bw);
}

sim::Channel& Testbed::origin_channel(const std::string& host) {
  auto it = origin_channels_.find(host);
  if (it == origin_channels_.end()) {
    const Duration rtt = config_.proxy_origin_rtt_override.value_or(app_->rtt_for_host(host));
    const double bw =
        config_.proxy_origin_bw > 0 ? config_.proxy_origin_bw : app_->bw_for_host(host);
    it = origin_channels_.emplace(host, std::make_unique<sim::Channel>(&sim_, rtt, bw)).first;
  }
  return *it->second;
}

http::Response Testbed::serve_with_epoch(const http::Request& request) {
  // Content epochs advance with simulated time, per endpoint TTL.
  if (const apps::EndpointSpec* ep = origin_.match(request)) {
    if (ep->content_ttl > 0) {
      origin_.set_epoch(static_cast<std::uint64_t>(sim_.now() / ep->content_ttl));
    } else {
      origin_.set_epoch(0);
    }
  }
  return origin_.serve(request);
}

void Testbed::forward_to_origin(const http::Request& request,
                                std::function<void(http::Response)> deliver) {
  sim::Channel& channel = origin_channel(request.uri.host);
  channel.up().send(request.wire_size(), [this, request, deliver = std::move(deliver),
                                          &channel]() mutable {
    Duration proc = origin_.proc_delay(request);
    if (config_.origin_proc_jitter > 0 && proc > 0) {
      proc = static_cast<Duration>(static_cast<double>(proc) *
                                   proc_rng_.uniform(1.0 - config_.origin_proc_jitter,
                                                     1.0 + config_.origin_proc_jitter));
    }
    sim_.schedule(proc, [this, request, deliver = std::move(deliver), &channel]() mutable {
      const http::Response response = serve_with_epoch(request);
      channel.down().send(response.wire_size(),
                          [deliver = std::move(deliver), response] { deliver(response); });
    });
  });
}

core::ProxyEngine& Testbed::proxy() {
  if (appx_ == nullptr) throw InvalidStateError("Testbed: not running the APPx engine");
  return *appx_;
}

core::Session& Testbed::session_for(const std::string& user) {
  auto it = sessions_.find(user);
  if (it == sessions_.end()) {
    it = sessions_.emplace(user, engine_->session(user, sim_.now())).first;
  }
  return it->second;
}

void Testbed::dispatch_prefetches(std::vector<core::PrefetchJob> jobs) {
  for (core::PrefetchJob& job : jobs) {
    ++prefetches_taken_;
    if (config_.drop_every_nth_prefetch > 0 &&
        prefetches_taken_ % config_.drop_every_nth_prefetch == 0) {
      // Simulated shedding: the job is abandoned before it reaches the
      // origin; the engine must release its outstanding slot. The freed
      // window slot may make a queued job issuable — pump picks it up.
      ++prefetches_dropped_;
      engine_->on_prefetch_dropped(job.uid, job, sim_.now());
      core::Decision freed;
      engine_->pump(job.uid, sim_.now(), &freed);
      dispatch_prefetches(std::move(freed.prefetches));
      continue;
    }
    const SimTime started = sim_.now();
    forward_to_origin(job.request, [this, job, started](http::Response response) mutable {
      core::Decision chained;
      engine_->on_prefetch_response(job.uid, job, response, sim_.now(),
                                    to_ms(sim_.now() - started), &chained);
      if (on_prefetch_response) on_prefetch_response(job, response);
      dispatch_prefetches(std::move(chained.prefetches));
    });
  }
}

apps::AppClient::Transport Testbed::transport_for(const std::string& user) {
  return [this, user](http::Request request, std::function<void(http::Response)> cb) {
    observed_.push_back({user, sim_.now(), request});
    client_channel_->up().send(request.wire_size(), [this, user, request,
                                                     cb = std::move(cb)]() mutable {
      auto decision = session_for(user).on_request(request, sim_.now());
      if (decision.served) {
        // Hold the shared cache entry across the simulated downlink instead
        // of copying the response body.
        client_channel_->down().send(decision.served->wire_size(),
                                     [cb = std::move(cb), served = decision.served] {
                                       cb(*served);
                                     });
        dispatch_prefetches(std::move(decision.prefetches));
        return;
      }
      dispatch_prefetches(std::move(decision.prefetches));
      forward_to_origin(request, [this, user, request,
                                  cb = std::move(cb)](http::Response response) mutable {
        auto learned = session_for(user).on_response(request, response, sim_.now());
        dispatch_prefetches(std::move(learned.prefetches));
        client_channel_->down().send(response.wire_size(),
                                     [cb = std::move(cb), response] { cb(response); });
      });
    });
  };
}

apps::AppClient& Testbed::client_for(const std::string& user) {
  auto it = clients_.find(user);
  if (it == clients_.end()) {
    it = clients_
             .emplace(user, std::make_unique<apps::AppClient>(
                                app_, apps::ClientEnv::for_user(*app_, user), &sim_,
                                transport_for(user)))
             .first;
  }
  return *it->second;
}

void Testbed::reset_client(const std::string& user) { clients_.erase(user); }

Bytes Testbed::origin_down_bytes() const {
  Bytes total = 0;
  for (const auto& [host, channel] : origin_channels_) total += channel->down().bytes_carried();
  return total;
}

Bytes Testbed::client_down_bytes() const { return client_channel_->down().bytes_carried(); }

}  // namespace appx::eval
