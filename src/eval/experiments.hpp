// Experiment drivers for every table and figure in the paper's evaluation.
//
// Each function runs a complete scenario on the testbed and returns the raw
// numbers; the bench binaries format them into the paper's rows/series.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "eval/testbed.hpp"
#include "fuzz/fuzzer.hpp"
#include "trace/trace.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace appx::eval {

// Analysis output for one app, computed once and shared by experiments.
struct AnalyzedApp {
  apps::AppSpec spec;
  analysis::AnalysisResult analysis;
};

AnalyzedApp analyze_app(apps::AppSpec spec);
std::vector<AnalyzedApp> analyze_all_apps();

// The deployed proxy configuration (paper §6 methodology): prefetching is
// enabled for the signatures behind the app's launch and main interaction
// (thumbnails, item detail, related items, photos, reviews) and disabled for
// everything else — "for each app, we select a representative user
// interaction ... as the prefetching target and configure the proxy as
// such". `probability` maps to Fig. 17's global prefetch-probability knob.
core::ProxyConfig deployment_config(const AnalyzedApp& app, double probability = 1.0);

// --- Fig. 13 / Fig. 14: microbenchmarks against origin servers ------------------

struct Breakdown {
  double total_ms = 0;
  double network_ms = 0;
  double processing_ms = 0;
  // Distribution of per-run total latency, from an obs::Histogram over the
  // measured runs (paper reports CDFs, not just means).
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;  // with few runs this degenerates to the max — report anyway
  std::size_t runs = 0;
  // Prefetch cost accounting over the whole run (warm-up included): issued
  // jobs, bytes fetched, and the share of those bytes never served to the
  // client — evicted/expired unused plus entries still sitting unused in the
  // cache at the end. All zero for the Orig baseline.
  std::size_t prefetches_issued = 0;
  Bytes prefetch_bytes = 0;
  Bytes wasted_bytes = 0;
  double waste_ratio = 0;  // wasted_bytes / prefetch_bytes, 0 when nothing fetched
  // Admission decisions of the cost-aware policy (zero when disabled).
  std::size_t policy_admitted = 0;
  std::size_t policy_rejected_value = 0;
  std::size_t policy_rejected_budget = 0;
};

// User-perceived latency of the app's main interaction, averaged over `runs`
// distinct item selections after the proxy has learned the app (Fig. 13).
Breakdown measure_main_interaction(const AnalyzedApp& app, TestbedConfig config, int runs = 10);

// App-launch latency of a warm session (the proxy has seen one prior session
// of the same user), averaged over `runs` re-launches (Fig. 14).
Breakdown measure_launch(const AnalyzedApp& app, TestbedConfig config, int runs = 10);

// --- Fig. 15 / 16 / 17: user-study trace replay -----------------------------------

struct TraceExperimentResult {
  SampleSet main_latency_ms;   // user-perceived latency of the main interaction
  SampleSet all_latency_ms;    // every interaction
  Bytes origin_bytes = 0;      // proxy<->server down bytes (data usage)
  std::size_t interactions = 0;
  std::size_t skipped_events = 0;
  core::ProxyStats proxy_stats;
};

// Replay all user traces (sequential sessions) through one proxy instance.
TraceExperimentResult run_trace_experiment(const AnalyzedApp& app, TestbedConfig config,
                                           const std::vector<trace::UserTrace>& traces);

// --- multiplexing: concurrent sessions on one edge cell ---------------------------

// The paper's conclusion positions APPx for "lightly multiplexed
// environments, such as the mobile edge cloud". This experiment runs N user
// sessions CONCURRENTLY through one proxy sharing one access link, instead of
// sequentially, to expose the contention behaviour.
struct MultiplexResult {
  int users = 0;
  double orig_median_ms = 0;
  double appx_median_ms = 0;
  double orig_p90_ms = 0;
  double appx_p90_ms = 0;
};

std::vector<MultiplexResult> run_multiplex_experiment(const AnalyzedApp& app,
                                                      const std::vector<int>& user_counts,
                                                      const trace::TraceParams& trace_params);

// --- Table 3: coverage comparison -------------------------------------------------

struct CoverageMetrics {
  std::size_t total = 0;
  std::size_t prefetchable = 0;
  std::size_t dependencies = 0;
  std::size_t max_chain = 0;
};

struct CoverageRow {
  std::string app;
  CoverageMetrics appx;  // static analysis
  CoverageMetrics fuzz;  // 1 h Monkey @ 500 ms
  CoverageMetrics user;  // 30 x 3 min user traces
};

// Metrics over the subgraph induced by a set of observed signature ids.
CoverageMetrics induced_metrics(const core::SignatureSet& signatures,
                                const std::set<std::string>& observed_ids);

// Match a request log against the signature set -> observed signature ids.
std::set<std::string> observed_signatures(const core::SignatureSet& signatures,
                                          const std::vector<ObservedRequest>& log);

CoverageRow run_coverage_experiment(const AnalyzedApp& app, const fuzz::FuzzParams& fuzz_params,
                                    const trace::TraceParams& trace_params);

}  // namespace appx::eval
