// Fixed-width table formatting for the benchmark binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace appx::eval {

// Column-aligned plain-text tables, printed to any stream.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

  static std::string fmt(double value, int decimals = 1);
  static std::string pct(double fraction, int decimals = 0);  // 0.47 -> "47%"

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace appx::eval
