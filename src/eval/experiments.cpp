#include "eval/experiments.hpp"

#include <algorithm>
#include <functional>

#include "apps/compiler.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::eval {

AnalyzedApp analyze_app(apps::AppSpec spec) {
  AnalyzedApp out{std::move(spec), {}};
  out.analysis = analysis::analyze(apps::compile_app(out.spec));
  return out;
}

std::vector<AnalyzedApp> analyze_all_apps() {
  std::vector<AnalyzedApp> out;
  for (apps::AppSpec& spec : apps::make_all_apps()) out.push_back(analyze_app(std::move(spec)));
  return out;
}

core::ProxyConfig deployment_config(const AnalyzedApp& app, double probability) {
  core::ProxyConfig config;
  config.global_probability = probability;
  config.default_expiration = minutes(30);
  for (const auto* sig : app.analysis.signatures.prefetchable()) {
    core::SignaturePolicy policy;
    policy.hash = sig->id;
    policy.uri = sig->uri_regex();
    policy.prefetch = app.spec.accelerated_labels.contains(sig->label);
    config.set_policy(std::move(policy));
  }
  return config;
}

// --- microbenchmarks ---------------------------------------------------------------

namespace {

// Run one interaction to completion (drains the simulator).
apps::InteractionResult run_to_completion(Testbed& bed, const std::string& user,
                                          const std::string& interaction,
                                          std::size_t selection) {
  apps::InteractionResult result;
  bool done = false;
  bed.client_for(user).run_interaction(interaction, selection,
                                       [&](const apps::InteractionResult& r) {
                                         result = r;
                                         done = true;
                                       });
  bed.sim().run();
  if (!done) throw InvalidStateError("experiment: interaction never completed");
  return result;
}

Breakdown to_breakdown(const std::vector<apps::InteractionResult>& results) {
  Breakdown out;
  obs::Histogram total_us;
  for (const apps::InteractionResult& r : results) {
    out.total_ms += to_ms(r.total);
    out.network_ms += to_ms(r.network);
    out.processing_ms += to_ms(r.processing);
    total_us.record(r.total);  // Duration is already microseconds
  }
  const double n = std::max<std::size_t>(results.size(), 1);
  out.total_ms /= n;
  out.network_ms /= n;
  out.processing_ms /= n;
  if (total_us.count() > 0) {
    out.p50_ms = to_ms(total_us.quantile(0.50));
    out.p95_ms = to_ms(total_us.quantile(0.95));
    out.p99_ms = to_ms(total_us.quantile(0.99));
    out.p999_ms = to_ms(total_us.quantile(0.999));
  }
  out.runs = results.size();
  return out;
}

// End-of-run prefetch cost accounting: registry totals plus the bytes still
// sitting unused in the user's cache (waste hooks only fire when an entry
// leaves the cache, which a short run may never trigger).
void fill_prefetch_accounting(Breakdown& out, Testbed& bed, const std::string& user) {
  const core::ProxyStats& stats = bed.engine().stats();
  out.prefetches_issued = stats.prefetches_issued;
  out.prefetch_bytes = stats.bytes_prefetched;
  Bytes wasted = stats.prefetch_wasted_bytes;
  if (bed.config().proxy_kind == ProxyKind::kAppx && bed.config().prefetch_enabled) {
    if (const core::PrefetchCache* cache = bed.proxy().cache_for(user)) {
      wasted += cache->unused_bytes();
    }
  }
  out.wasted_bytes = wasted;
  out.waste_ratio = out.prefetch_bytes > 0
                        ? static_cast<double>(wasted) / static_cast<double>(out.prefetch_bytes)
                        : 0.0;
  out.policy_admitted = stats.policy_admitted;
  out.policy_rejected_value = stats.policy_rejected_value;
  out.policy_rejected_budget = stats.policy_rejected_budget;
}

}  // namespace

Breakdown measure_main_interaction(const AnalyzedApp& app, TestbedConfig config, int runs) {
  Testbed bed(&app.spec, &app.analysis.signatures, config);
  const std::string user = "bench";

  // Warm-up: launch the app and perform the main interaction once so the
  // proxy learns the run-time values, then let outstanding prefetches drain
  // ("the proxy prefetches content in advance for the main interaction").
  run_to_completion(bed, user, apps::kLaunchInteraction, 0);
  run_to_completion(bed, user, app.spec.main_interaction, 0);

  std::vector<apps::InteractionResult> measured;
  for (int i = 0; i < runs; ++i) {
    const std::size_t selection = 1 + static_cast<std::size_t>(i);
    measured.push_back(run_to_completion(bed, user, app.spec.main_interaction, selection));
  }
  Breakdown out = to_breakdown(measured);
  fill_prefetch_accounting(out, bed, user);
  return out;
}

Breakdown measure_launch(const AnalyzedApp& app, TestbedConfig config, int runs) {
  Testbed bed(&app.spec, &app.analysis.signatures, config);
  const std::string user = "bench";

  // Session 1 warms the proxy (launch + one main interaction).
  run_to_completion(bed, user, apps::kLaunchInteraction, 0);
  run_to_completion(bed, user, app.spec.main_interaction, 0);

  std::vector<apps::InteractionResult> measured;
  for (int i = 0; i < runs; ++i) {
    bed.reset_client(user);  // app killed and restarted; proxy state persists
    measured.push_back(run_to_completion(bed, user, apps::kLaunchInteraction, 0));
  }
  Breakdown out = to_breakdown(measured);
  fill_prefetch_accounting(out, bed, user);
  return out;
}

// --- trace replay ---------------------------------------------------------------------

TraceExperimentResult run_trace_experiment(const AnalyzedApp& app, TestbedConfig config,
                                           const std::vector<trace::UserTrace>& traces) {
  Testbed bed(&app.spec, &app.analysis.signatures, config);
  TraceExperimentResult out;

  for (const trace::UserTrace& user_trace : traces) {
    trace::TraceReplayer replayer(&bed.client_for(user_trace.user_id), &bed.sim());
    replayer.replay(user_trace);
    bed.sim().run();  // drain the session (and its prefetches) completely
    out.skipped_events += replayer.skipped();
    for (const apps::InteractionResult& r : replayer.results()) {
      ++out.interactions;
      out.all_latency_ms.add(to_ms(r.total));
      if (r.interaction == app.spec.main_interaction) {
        out.main_latency_ms.add(to_ms(r.total));
      }
    }
  }
  out.origin_bytes = bed.origin_down_bytes();
  out.proxy_stats = bed.engine().stats();
  return out;
}

// --- multiplexing -------------------------------------------------------------------------

namespace {

// Replay all sessions overlapping in time; return main-interaction samples.
SampleSet replay_concurrently(const AnalyzedApp& app, TestbedConfig config,
                              const std::vector<trace::UserTrace>& traces) {
  Testbed bed(&app.spec, &app.analysis.signatures, config);
  std::vector<std::unique_ptr<trace::TraceReplayer>> replayers;
  replayers.reserve(traces.size());
  for (const trace::UserTrace& user_trace : traces) {
    replayers.push_back(
        std::make_unique<trace::TraceReplayer>(&bed.client_for(user_trace.user_id), &bed.sim()));
    replayers.back()->replay(user_trace);
  }
  bed.sim().run();
  SampleSet samples;
  for (const auto& replayer : replayers) {
    for (const apps::InteractionResult& r : replayer->results()) {
      if (r.interaction == app.spec.main_interaction) samples.add(to_ms(r.total));
    }
  }
  return samples;
}

}  // namespace

std::vector<MultiplexResult> run_multiplex_experiment(const AnalyzedApp& app,
                                                      const std::vector<int>& user_counts,
                                                      const trace::TraceParams& trace_params) {
  std::vector<MultiplexResult> results;
  for (const int users : user_counts) {
    trace::TraceParams params = trace_params;
    params.users = users;
    const auto traces = trace::generate_traces(app.spec, params);

    TestbedConfig orig;
    orig.prefetch_enabled = false;
    const SampleSet base = replay_concurrently(app, orig, traces);

    TestbedConfig accel;
    accel.prefetch_enabled = true;
    accel.proxy_config = deployment_config(app);
    const SampleSet fast = replay_concurrently(app, accel, traces);

    MultiplexResult row;
    row.users = users;
    row.orig_median_ms = base.empty() ? 0 : base.median();
    row.appx_median_ms = fast.empty() ? 0 : fast.median();
    row.orig_p90_ms = base.empty() ? 0 : base.percentile(0.9);
    row.appx_p90_ms = fast.empty() ? 0 : fast.percentile(0.9);
    results.push_back(row);
  }
  return results;
}

// --- coverage (Table 3) ------------------------------------------------------------------

std::set<std::string> observed_signatures(const core::SignatureSet& signatures,
                                          const std::vector<ObservedRequest>& log) {
  std::set<std::string> observed;
  for (const ObservedRequest& entry : log) {
    if (const auto* sig = signatures.match_request(entry.request)) observed.insert(sig->id);
  }
  return observed;
}

CoverageMetrics induced_metrics(const core::SignatureSet& signatures,
                                const std::set<std::string>& observed_ids) {
  CoverageMetrics out;
  out.total = observed_ids.size();

  std::vector<const core::DependencyEdge*> observed_edges;
  for (const core::DependencyEdge& e : signatures.edges()) {
    if (observed_ids.contains(e.pred_id) && observed_ids.contains(e.succ_id)) {
      observed_edges.push_back(&e);
    }
  }
  out.dependencies = observed_edges.size();

  std::set<std::string> successors;
  for (const auto* e : observed_edges) successors.insert(e->succ_id);
  out.prefetchable = successors.size();

  // Longest path over the induced edge set.
  std::map<std::string, std::vector<std::string>> adjacency;
  for (const auto* e : observed_edges) adjacency[e->pred_id].push_back(e->succ_id);
  std::map<std::string, std::size_t> memo;
  const std::function<std::size_t(const std::string&)> depth =
      [&](const std::string& node) -> std::size_t {
    const auto it = memo.find(node);
    if (it != memo.end()) return it->second;
    memo[node] = 0;  // cycle guard
    std::size_t best = 0;
    const auto adj = adjacency.find(node);
    if (adj != adjacency.end()) {
      for (const std::string& next : adj->second) best = std::max(best, 1 + depth(next));
    }
    memo[node] = best;
    return best;
  };
  for (const std::string& id : observed_ids) out.max_chain = std::max(out.max_chain, depth(id));
  return out;
}

CoverageRow run_coverage_experiment(const AnalyzedApp& app, const fuzz::FuzzParams& fuzz_params,
                                    const trace::TraceParams& trace_params) {
  CoverageRow row;
  row.app = app.spec.name;
  const core::SignatureSet& signatures = app.analysis.signatures;

  // APPx column: pure static analysis.
  row.appx.total = signatures.size();
  row.appx.prefetchable = signatures.prefetchable().size();
  row.appx.dependencies = signatures.edges().size();
  row.appx.max_chain = signatures.max_chain_length();

  // Fuzzing column: 1 h of Monkey events, then regex-match the traffic.
  {
    TestbedConfig config;
    config.prefetch_enabled = false;  // trace collection, not acceleration
    Testbed bed(&app.spec, &signatures, config);
    fuzz::Fuzzer fuzzer(&bed.client_for("monkey"), &bed.sim(), fuzz_params);
    fuzzer.start();
    bed.sim().run();
    row.fuzz = induced_metrics(signatures, observed_signatures(signatures,
                                                               bed.observed_requests()));
  }

  // User-study column: 30 x 3 min sessions.
  {
    TestbedConfig config;
    config.prefetch_enabled = false;
    Testbed bed(&app.spec, &signatures, config);
    const auto traces = trace::generate_traces(app.spec, trace_params);
    for (const trace::UserTrace& user_trace : traces) {
      trace::TraceReplayer replayer(&bed.client_for(user_trace.user_id), &bed.sim());
      replayer.replay(user_trace);
      bed.sim().run();
    }
    row.user = induced_metrics(signatures, observed_signatures(signatures,
                                                               bed.observed_requests()));
  }
  return row;
}

}  // namespace appx::eval
