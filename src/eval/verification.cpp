#include "eval/verification.hpp"

#include <map>

#include "util/log.hpp"

namespace appx::eval {

VerificationOutcome run_verification(const AnalyzedApp& app, const VerificationParams& params) {
  VerificationOutcome outcome;
  const core::SignatureSet& signatures = app.analysis.signatures;

  // Phase A: fuzz the app through a prefetching proxy and log per-signature
  // prefetch outcomes and one concrete request sample per signature.
  TestbedConfig config;
  config.prefetch_enabled = true;
  config.proxy_config.default_expiration = std::nullopt;  // keep everything
  Testbed bed(&app.spec, &signatures, config);

  std::map<std::string, http::Request> sample_requests;
  bed.on_prefetch_response = [&](const core::PrefetchJob& job, const http::Response& response) {
    ++outcome.prefetches_observed;
    if (response.ok()) {
      outcome.verified.insert(job.sig_id);
      sample_requests.emplace(job.sig_id, job.request);
    } else {
      outcome.failing.insert(job.sig_id);
      log_info("verify") << app.spec.name << ": signature " << job.sig_id
                         << " drew status " << response.status << " -> disabling prefetch";
    }
  };

  fuzz::Fuzzer fuzzer(&bed.client_for("verifier"), &bed.sim(), params.fuzz);
  fuzzer.start();
  bed.sim().run();

  // A signature that failed even once must not be prefetched (C3).
  for (const std::string& id : outcome.failing) outcome.verified.erase(id);

  // Phase B: expiration estimation. "The proxy periodically prefetches and
  // checks the difference between the new one and the old one. The prefetch
  // period is increased until the new one differs."
  for (const auto& [sig_id, request] : sample_requests) {
    if (outcome.failing.contains(sig_id)) continue;
    const apps::EndpointSpec* ep = bed.origin().match(request);
    if (ep == nullptr || ep->content_ttl <= 0) continue;
    const SimTime base_time = bed.sim().now();
    const auto body_at = [&](SimTime t) {
      bed.origin().set_epoch(static_cast<std::uint64_t>(t / ep->content_ttl));
      const http::Response response = bed.origin().serve(request);
      return std::make_pair(response.body, response.opaque_payload);
    };
    const auto baseline = body_at(base_time);
    Duration period = params.min_expiry_probe;
    while (period < params.max_expiry_probe && body_at(base_time + period) == baseline) {
      period *= 2;
    }
    outcome.expiry_estimates[sig_id] = period;
  }

  // Phase C: emit the initial configuration (Fig. 9).
  for (const auto* sig : signatures.prefetchable()) {
    core::SignaturePolicy policy;
    policy.hash = sig->id;
    policy.uri = sig->uri_regex();
    policy.prefetch = !outcome.failing.contains(sig->id);
    const auto expiry = outcome.expiry_estimates.find(sig->id);
    if (expiry != outcome.expiry_estimates.end()) {
      // Conservative: expire at half the observed change period.
      policy.expiration_time = expiry->second / 2;
    }
    outcome.initial_config.set_policy(std::move(policy));
  }
  return outcome;
}

}  // namespace appx::eval
