#include "pattern/template.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace appx::pattern {

FieldTemplate FieldTemplate::literal(std::string_view text) {
  FieldTemplate t;
  t.append_literal(text);
  return t;
}

FieldTemplate FieldTemplate::hole(std::string name, std::string shape) {
  FieldTemplate t;
  t.append_hole(std::move(name), std::move(shape));
  return t;
}

FieldTemplate FieldTemplate::parse(std::string_view spec) {
  FieldTemplate t;
  std::string literal;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c == '{') {
      if (i + 1 < spec.size() && spec[i + 1] == '{') {
        literal += '{';
        ++i;
        continue;
      }
      const std::size_t close = spec.find('}', i);
      if (close == std::string_view::npos) {
        throw ParseError("FieldTemplate::parse: unterminated '{' in '" + std::string(spec) + "'");
      }
      if (!literal.empty()) {
        t.append_literal(literal);
        literal.clear();
      }
      std::string_view inner = spec.substr(i + 1, close - i - 1);
      const std::size_t colon = inner.find(':');
      if (colon == std::string_view::npos) {
        if (inner.empty()) throw ParseError("FieldTemplate::parse: empty hole name");
        t.append_hole(std::string(inner));
      } else {
        std::string_view name = inner.substr(0, colon);
        std::string_view shape = inner.substr(colon + 1);
        if (name.empty()) throw ParseError("FieldTemplate::parse: empty hole name");
        if (shape.empty()) throw ParseError("FieldTemplate::parse: empty hole shape");
        t.append_hole(std::string(name), std::string(shape));
      }
      i = close;
    } else if (c == '}') {
      if (i + 1 < spec.size() && spec[i + 1] == '}') {
        literal += '}';
        ++i;
        continue;
      }
      throw ParseError("FieldTemplate::parse: stray '}' in '" + std::string(spec) + "'");
    } else {
      literal += c;
    }
  }
  if (!literal.empty()) t.append_literal(literal);
  return t;
}

FieldTemplate& FieldTemplate::append_literal(std::string_view text) {
  if (text.empty()) return *this;
  if (!segments_.empty() && !segments_.back().is_hole) {
    segments_.back().text += text;
  } else {
    segments_.push_back(Segment{false, std::string(text), ""});
    compiled_.resize(segments_.size());
  }
  compiled_.assign(segments_.size(), nullptr);
  return *this;
}

FieldTemplate& FieldTemplate::append_hole(std::string name, std::string shape) {
  if (name.empty()) throw InvalidArgumentError("FieldTemplate: hole name must be non-empty");
  if (shape.empty()) throw InvalidArgumentError("FieldTemplate: hole shape must be non-empty");
  segments_.push_back(Segment{true, std::move(name), std::move(shape)});
  compiled_.assign(segments_.size(), nullptr);
  return *this;
}

FieldTemplate& FieldTemplate::append(const FieldTemplate& other) {
  for (const Segment& seg : other.segments_) {
    if (seg.is_hole) {
      append_hole(seg.text, seg.shape);
    } else {
      append_literal(seg.text);
    }
  }
  return *this;
}

bool FieldTemplate::is_concrete() const { return hole_count() == 0; }

std::size_t FieldTemplate::hole_count() const {
  return static_cast<std::size_t>(
      std::count_if(segments_.begin(), segments_.end(), [](const Segment& s) { return s.is_hole; }));
}

std::vector<std::string> FieldTemplate::hole_names() const {
  std::vector<std::string> names;
  for (const Segment& s : segments_) {
    if (s.is_hole) names.push_back(s.text);
  }
  return names;
}

bool FieldTemplate::has_hole(std::string_view name) const {
  return std::any_of(segments_.begin(), segments_.end(),
                     [&](const Segment& s) { return s.is_hole && s.text == name; });
}

const Regex* FieldTemplate::shape_regex(std::size_t seg_index) const {
  const Segment& seg = segments_[seg_index];
  if (!seg.is_hole || seg.shape == ".*") return nullptr;  // universal: no check needed
  if (compiled_.size() != segments_.size()) compiled_.assign(segments_.size(), nullptr);
  if (!compiled_[seg_index]) {
    compiled_[seg_index] = std::make_shared<const Regex>(seg.shape);
  }
  return compiled_[seg_index].get();
}

bool FieldTemplate::matches(std::string_view value) const {
  Bindings scratch;
  return match_from(value, 0, 0, scratch);
}

std::optional<Bindings> FieldTemplate::extract(std::string_view value) const {
  Bindings bindings;
  if (!match_from(value, 0, 0, bindings)) return std::nullopt;
  return bindings;
}

bool FieldTemplate::match_from(std::string_view value, std::size_t value_pos,
                               std::size_t seg_index, Bindings& bindings) const {
  if (seg_index == segments_.size()) return value_pos == value.size();
  const Segment& seg = segments_[seg_index];
  if (!seg.is_hole) {
    if (value.compare(value_pos, seg.text.size(), seg.text) != 0) return false;
    return match_from(value, value_pos + seg.text.size(), seg_index + 1, bindings);
  }
  // Hole: try every candidate length (shortest first) and backtrack. If a
  // binding for this hole name already exists (repeated hole), it must agree.
  const Regex* shape = shape_regex(seg_index);
  const auto existing = bindings.find(seg.text);
  for (std::size_t len = 0; value_pos + len <= value.size(); ++len) {
    const std::string_view candidate = value.substr(value_pos, len);
    if (existing != bindings.end() && candidate != existing->second) continue;
    if (shape != nullptr && !shape->full_match(candidate)) continue;
    const bool fresh = (existing == bindings.end());
    if (fresh) bindings[seg.text] = std::string(candidate);
    if (match_from(value, value_pos + len, seg_index + 1, bindings)) return true;
    if (fresh) bindings.erase(seg.text);
  }
  return false;
}

std::optional<std::string> FieldTemplate::fill(const Bindings& bindings) const {
  std::string out;
  for (const Segment& seg : segments_) {
    if (!seg.is_hole) {
      out += seg.text;
      continue;
    }
    const auto it = bindings.find(seg.text);
    if (it == bindings.end()) return std::nullopt;
    out += it->second;
  }
  return out;
}

FieldTemplate FieldTemplate::partial_fill(const Bindings& bindings) const {
  FieldTemplate out;
  for (const Segment& seg : segments_) {
    if (!seg.is_hole) {
      out.append_literal(seg.text);
      continue;
    }
    const auto it = bindings.find(seg.text);
    if (it == bindings.end()) {
      out.append_hole(seg.text, seg.shape);
    } else {
      out.append_literal(it->second);
    }
  }
  return out;
}

std::optional<std::string> FieldTemplate::concrete_value() const {
  return fill(Bindings{});
}

std::string FieldTemplate::to_regex_string() const {
  std::string out;
  for (const Segment& seg : segments_) {
    if (seg.is_hole) {
      out += seg.shape;
    } else {
      out += Regex::escape(seg.text);
    }
  }
  return out;
}

std::string FieldTemplate::to_display_string() const {
  std::string out;
  for (const Segment& seg : segments_) {
    if (seg.is_hole) {
      out += '{';
      out += seg.text;
      if (seg.shape != ".*") {
        out += ':';
        out += seg.shape;
      }
      out += '}';
    } else {
      for (char c : seg.text) {
        if (c == '{' || c == '}') out += c;  // double for escaping
        out += c;
      }
    }
  }
  return out;
}

void FieldTemplate::serialize(ByteWriter& out) const {
  out.u32(static_cast<std::uint32_t>(segments_.size()));
  for (const Segment& seg : segments_) {
    out.u8(seg.is_hole ? 1 : 0);
    out.str(seg.text);
    out.str(seg.shape);
  }
}

FieldTemplate FieldTemplate::deserialize(ByteReader& in) {
  FieldTemplate t;
  const std::uint32_t n = in.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const bool is_hole = in.u8() != 0;
    std::string text = in.str();
    std::string shape = in.str();
    if (is_hole) {
      t.append_hole(std::move(text), std::move(shape));
    } else {
      t.append_literal(text);
    }
  }
  return t;
}

bool FieldTemplate::operator==(const FieldTemplate& other) const {
  if (segments_.size() != other.segments_.size()) return false;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& a = segments_[i];
    const Segment& b = other.segments_[i];
    if (a.is_hole != b.is_hole || a.text != b.text || a.shape != b.shape) return false;
  }
  return true;
}

}  // namespace appx::pattern
