// Field templates: the core data type of signature fields.
//
// A signature field (URI, header value, query parameter, body field) is a
// mixed sequence of literal text and named *holes*. A hole is a value the
// static analysis could not resolve: either a run-time value (device id,
// host), or a value that flows in from another transaction's response (a
// dependency, e.g. the 'cid' of /product/get coming from the 'id' in the
// /api/get-feed response).
//
// The template supports the three operations dynamic learning needs:
//   - matches / extract : recognise an observed concrete value and recover
//     the hole bindings (learning from predecessors and successors),
//   - fill / bind       : substitute learned values to reconstruct the exact
//     prefetch request (paper R2),
//   - to_regex_string   : render the paper's display form where every hole
//     is its shape regex (".*" by default), used for signature matching.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pattern/regex.hpp"
#include "util/byte_io.hpp"

namespace appx::pattern {

// Bindings map hole names to concrete learned values.
using Bindings = std::map<std::string, std::string>;

class FieldTemplate {
 public:
  struct Segment {
    bool is_hole = false;
    std::string text;   // literal text, or hole name
    std::string shape;  // hole shape regex source ("" for literals; ".*" default)
  };

  // Empty template; matches only the empty string.
  FieldTemplate() = default;

  // A template that is exactly `text`.
  static FieldTemplate literal(std::string_view text);
  // A template that is a single hole.
  static FieldTemplate hole(std::string name, std::string shape = ".*");
  // Parse "{name}" / "{name:regex}" spec syntax, e.g. "/image?cid={pred.id}".
  // "{{" and "}}" escape literal braces.
  static FieldTemplate parse(std::string_view spec);

  FieldTemplate& append_literal(std::string_view text);
  FieldTemplate& append_hole(std::string name, std::string shape = ".*");
  FieldTemplate& append(const FieldTemplate& other);

  bool is_concrete() const;
  std::size_t hole_count() const;
  std::vector<std::string> hole_names() const;
  bool has_hole(std::string_view name) const;
  const std::vector<Segment>& segments() const { return segments_; }

  // Whole-string match of a concrete value against the template.
  bool matches(std::string_view value) const;

  // Match and recover hole values. Returns nullopt when the value does not
  // fit. With adjacent holes the shortest-leftmost split is chosen.
  std::optional<Bindings> extract(std::string_view value) const;

  // Substitute every hole; nullopt if any hole is unbound.
  std::optional<std::string> fill(const Bindings& bindings) const;

  // Substitute the bound holes, keep the rest as holes. Adjacent literals
  // are merged. This is how a prefetch request instance "becomes more
  // specific with each step of learning" (paper §4.2).
  FieldTemplate partial_fill(const Bindings& bindings) const;

  // Concrete value if the template has no holes.
  std::optional<std::string> concrete_value() const;

  // Display forms.
  std::string to_regex_string() const;    // holes rendered as their shape
  std::string to_display_string() const;  // holes rendered as "{name}"

  void serialize(ByteWriter& out) const;
  static FieldTemplate deserialize(ByteReader& in);

  bool operator==(const FieldTemplate& other) const;

 private:
  bool match_from(std::string_view value, std::size_t value_pos, std::size_t seg_index,
                  Bindings& bindings) const;
  const Regex* shape_regex(std::size_t seg_index) const;

  std::vector<Segment> segments_;
  // Lazily compiled shape regexes, parallel to segments_ (null for literals
  // and for the universal ".*" shape which always matches).
  mutable std::vector<std::shared_ptr<const Regex>> compiled_;
};

}  // namespace appx::pattern
