#include "pattern/regex.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace appx::pattern {

namespace {
constexpr std::string_view kMetaChars = ".*+?()[]|\\^$";
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent over
//   alt    := concat ('|' concat)*
//   concat := repeat*
//   repeat := atom ('*' | '+' | '?')*
//   atom   := char | '.' | class | '(' alt ')'
// Each production returns an NFA fragment (start state + dangling exits).
// ---------------------------------------------------------------------------

struct Regex::Parser {
  Regex& re;
  std::string_view src;
  std::size_t pos = 0;

  bool at_end() const { return pos >= src.size(); }
  char peek() const { return src[pos]; }
  char take() { return src[pos++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("regex '" + std::string(src) + "': " + message);
  }

  Fragment parse_alt() {
    Fragment left = parse_concat();
    while (!at_end() && peek() == '|') {
      take();
      Fragment right = parse_concat();
      // New split state with epsilon edges to both branches.
      State split;
      const std::int32_t s = re.add_state(split);
      re.states_[static_cast<std::size_t>(s)].eps.push_back(left.start);
      re.states_[static_cast<std::size_t>(s)].eps.push_back(right.start);
      Fragment merged;
      merged.start = s;
      merged.dangling = left.dangling;
      merged.dangling.insert(merged.dangling.end(), right.dangling.begin(),
                             right.dangling.end());
      left = std::move(merged);
    }
    return left;
  }

  Fragment parse_concat() {
    // An empty concat (e.g. "(|a)" branch or whole-empty regex) is a single
    // epsilon state.
    if (at_end() || peek() == '|' || peek() == ')') {
      State s;
      const std::int32_t id = re.add_state(s);
      return Fragment{id, {id}};
    }
    Fragment frag = parse_repeat();
    while (!at_end() && peek() != '|' && peek() != ')') {
      Fragment next = parse_repeat();
      re.patch(frag.dangling, next.start);
      frag.dangling = std::move(next.dangling);
    }
    return frag;
  }

  Fragment parse_repeat() {
    Fragment frag = parse_atom();
    while (!at_end() && (peek() == '*' || peek() == '+' || peek() == '?')) {
      const char op = take();
      State split;
      const std::int32_t s = re.add_state(split);
      if (op == '*') {
        re.states_[static_cast<std::size_t>(s)].eps.push_back(frag.start);
        re.patch(frag.dangling, s);
        frag = Fragment{s, {s}};
      } else if (op == '+') {
        re.states_[static_cast<std::size_t>(s)].eps.push_back(frag.start);
        re.patch(frag.dangling, s);
        frag = Fragment{frag.start, {s}};
      } else {  // '?'
        re.states_[static_cast<std::size_t>(s)].eps.push_back(frag.start);
        Fragment out{s, {s}};
        out.dangling.insert(out.dangling.end(), frag.dangling.begin(), frag.dangling.end());
        frag = std::move(out);
      }
    }
    return frag;
  }

  Fragment parse_atom() {
    if (at_end()) fail("unexpected end of expression");
    const char c = take();
    switch (c) {
      case '(': {
        Fragment inner = parse_alt();
        if (at_end() || take() != ')') fail("missing ')'");
        return inner;
      }
      case '[':
        return parse_class();
      case '.': {
        State s;
        s.kind = State::Kind::kAny;
        const std::int32_t id = re.add_state(s);
        return Fragment{id, {id}};
      }
      case '\\': {
        if (at_end()) fail("dangling escape");
        return literal_atom(unescape(take()));
      }
      case '*':
      case '+':
      case '?':
        fail("quantifier with nothing to repeat");
      case ')':
        fail("unbalanced ')'");
      case '|':
        fail("internal: '|' reached parse_atom");
      default:
        return literal_atom(c);
    }
  }

  static char unescape(char c) {
    switch (c) {
      case 'n': return '\n';
      case 'r': return '\r';
      case 't': return '\t';
      default: return c;  // escaped metachar or literal
    }
  }

  Fragment literal_atom(char c) {
    State s;
    s.kind = State::Kind::kChar;
    s.ch = c;
    const std::int32_t id = re.add_state(s);
    return Fragment{id, {id}};
  }

  Fragment parse_class() {
    std::vector<std::uint8_t> bitmap(256, 0);
    bool negate = false;
    if (!at_end() && peek() == '^') {
      negate = true;
      take();
    }
    bool first = true;
    while (true) {
      if (at_end()) fail("unterminated character class");
      char c = take();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (at_end()) fail("dangling escape in class");
        c = unescape(take());
      }
      if (!at_end() && peek() == '-' && pos + 1 < src.size() && src[pos + 1] != ']') {
        take();  // '-'
        char hi = take();
        if (hi == '\\') {
          if (at_end()) fail("dangling escape in class");
          hi = unescape(take());
        }
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          fail("inverted range in character class");
        }
        for (int b = static_cast<unsigned char>(c); b <= static_cast<unsigned char>(hi); ++b) {
          bitmap[static_cast<std::size_t>(b)] = 1;
        }
      } else {
        bitmap[static_cast<unsigned char>(c)] = 1;
      }
    }
    if (negate) {
      for (auto& bit : bitmap) bit = !bit;
    }
    State s;
    s.kind = State::Kind::kClass;
    s.cls = static_cast<std::uint32_t>(re.class_sets_.size());
    re.class_sets_.push_back(std::move(bitmap));
    const std::int32_t id = re.add_state(s);
    return Fragment{id, {id}};
  }
};

Regex::Regex(std::string_view expression) : source_(expression) {
  Parser parser{*this, expression};
  Fragment frag = parser.parse_alt();
  if (!parser.at_end()) parser.fail("unbalanced ')'");
  State accept;
  accept_ = add_state(accept);
  patch(frag.dangling, accept_);
  start_ = frag.start;
}

Regex::Regex(const Regex& other)
    : source_(other.source_),
      states_(other.states_),
      class_sets_(other.class_sets_),
      start_(other.start_),
      accept_(other.accept_) {}

Regex& Regex::operator=(const Regex& other) {
  if (this == &other) return *this;
  source_ = other.source_;
  states_ = other.states_;
  class_sets_ = other.class_sets_;
  start_ = other.start_;
  accept_ = other.accept_;
  dfa_.reset();  // the assigned-to regex starts with a cold cache
  return *this;
}

std::int32_t Regex::add_state(State s) {
  states_.push_back(std::move(s));
  return static_cast<std::int32_t>(states_.size() - 1);
}

void Regex::patch(const std::vector<std::int32_t>& dangling, std::int32_t target) {
  for (std::int32_t id : dangling) {
    State& s = states_[static_cast<std::size_t>(id)];
    if (s.kind == State::Kind::kNone) {
      s.eps.push_back(target);
    } else {
      s.next = target;
    }
  }
}

// ---------------------------------------------------------------------------
// NFA simulation.
//
// Frontier sets and visited marks live in a thread-local scratch arena so the
// per-message fast path allocates nothing in steady state. Marks are
// generation-stamped: bumping the generation invalidates every mark in O(1)
// instead of refilling the vector.
// ---------------------------------------------------------------------------

namespace {

struct NfaScratch {
  std::vector<std::int32_t> current;
  std::vector<std::int32_t> next;
  std::vector<std::uint32_t> stamp;  // stamp[s] == generation  <=>  s marked
  std::uint32_t generation = 0;

  // Prepares the arena for a regex with `nstates` NFA states and returns a
  // fresh generation.
  std::uint32_t begin(std::size_t nstates) {
    if (stamp.size() < nstates) stamp.resize(nstates, 0);
    return bump();
  }
  std::uint32_t bump() {
    if (++generation == 0) {  // wrapped: stamps from older eras may collide
      std::fill(stamp.begin(), stamp.end(), 0);
      generation = 1;
    }
    return generation;
  }
};

NfaScratch& scratch_arena() {
  // Reclaimed at thread exit: the sharded runtime matches from short-lived
  // connection threads, so a leaked-by-design arena would accumulate (and
  // trips LeakSanitizer). Matching from a destructor that outlives this
  // thread_local is not a pattern this codebase has.
  thread_local NfaScratch arena;
  return arena;
}

}  // namespace

void Regex::add_closure(std::int32_t id, std::vector<std::int32_t>& set,
                        std::vector<std::uint32_t>& stamp, std::uint32_t generation) const {
  if (stamp[static_cast<std::size_t>(id)] == generation) return;
  stamp[static_cast<std::size_t>(id)] = generation;
  set.push_back(id);
  for (std::int32_t e : states_[static_cast<std::size_t>(id)].eps) {
    add_closure(e, set, stamp, generation);
  }
}

bool Regex::step_nfa(const std::vector<std::int32_t>& current, unsigned char c,
                     std::vector<std::int32_t>& next, std::vector<std::uint32_t>& stamp,
                     std::uint32_t generation) const {
  next.clear();
  for (std::int32_t id : current) {
    const State& s = states_[static_cast<std::size_t>(id)];
    bool consume = false;
    switch (s.kind) {
      case State::Kind::kChar: consume = (static_cast<unsigned char>(s.ch) == c); break;
      case State::Kind::kAny: consume = true; break;
      case State::Kind::kClass: consume = class_sets_[s.cls][c] != 0; break;
      case State::Kind::kNone: break;
    }
    if (consume && s.next >= 0) add_closure(s.next, next, stamp, generation);
  }
  return !next.empty();
}

std::ptrdiff_t Regex::longest_prefix_match_nfa(std::string_view input) const {
  NfaScratch& arena = scratch_arena();
  std::uint32_t generation = arena.begin(states_.size());
  // The frontier vectors are swapped locally but owned by the arena, so their
  // capacity survives across matches.
  std::vector<std::int32_t>& current = arena.current;
  std::vector<std::int32_t>& next = arena.next;
  current.clear();
  add_closure(start_, current, arena.stamp, generation);

  const auto accepting = [&](std::uint32_t gen) {
    return arena.stamp[static_cast<std::size_t>(accept_)] == gen;
  };
  std::ptrdiff_t best = accepting(generation) ? 0 : -1;

  for (std::size_t i = 0; i < input.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    const std::uint32_t gen = arena.bump();
    if (!step_nfa(current, c, next, arena.stamp, gen)) return best;
    current.swap(next);
    if (accepting(gen)) best = static_cast<std::ptrdiff_t>(i + 1);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Lazy DFA: subset construction on demand. Each cached DFA state remembers
// the (sorted) NFA set it stands for; a missing transition is filled by one
// NFA step from that set and interned, so repeated matches settle into one
// array lookup per input byte.
// ---------------------------------------------------------------------------

std::int32_t Regex::intern_dfa_state(std::vector<std::int32_t> set) const {
  if (set.empty()) return kTransDead;
  std::sort(set.begin(), set.end());
  const auto it = dfa_->interned.find(set);
  if (it != dfa_->interned.end()) return it->second;
  if (dfa_->states.size() >= kMaxDfaStates) return kTransUnknown;  // cache full
  DfaState state;
  state.next.fill(kTransUnknown);
  state.accepting = std::binary_search(set.begin(), set.end(), accept_);
  state.nfa = set;
  dfa_->states.push_back(std::move(state));
  const std::int32_t id = static_cast<std::int32_t>(dfa_->states.size() - 1);
  dfa_->interned.emplace(std::move(set), id);
  return id;
}

void Regex::ensure_dfa_start() const {
  if (dfa_) return;
  dfa_ = std::make_unique<Dfa>();
  NfaScratch& arena = scratch_arena();
  const std::uint32_t generation = arena.begin(states_.size());
  std::vector<std::int32_t> closure;
  add_closure(start_, closure, arena.stamp, generation);
  intern_dfa_state(std::move(closure));  // state 0; never empty (start exists)
}

std::int32_t Regex::dfa_step(std::int32_t from, unsigned char c) const {
  const std::int32_t cached = dfa_->states[static_cast<std::size_t>(from)].next[c];
  if (cached != kTransUnknown) return cached;
  NfaScratch& arena = scratch_arena();
  const std::uint32_t generation = arena.begin(states_.size());
  std::vector<std::int32_t> next;
  step_nfa(dfa_->states[static_cast<std::size_t>(from)].nfa, c, next, arena.stamp, generation);
  const std::int32_t target = intern_dfa_state(std::move(next));
  if (target != kTransUnknown) {
    dfa_->states[static_cast<std::size_t>(from)].next[c] = target;
  }
  return target;
}

std::ptrdiff_t Regex::longest_prefix_match(std::string_view input) const {
  ensure_dfa_start();
  std::int32_t current = 0;
  std::ptrdiff_t best = dfa_->states[0].accepting ? 0 : -1;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::int32_t target = dfa_step(current, static_cast<unsigned char>(input[i]));
    if (target == kTransDead) return best;
    if (target == kTransUnknown) {
      // DFA cache blew its cap mid-walk: redo this match on the NFA. The
      // states cached so far stay usable for future matches.
      return longest_prefix_match_nfa(input);
    }
    current = target;
    if (dfa_->states[static_cast<std::size_t>(current)].accepting) {
      best = static_cast<std::ptrdiff_t>(i + 1);
    }
  }
  return best;
}

bool Regex::full_match(std::string_view input) const {
  return longest_prefix_match(input) == static_cast<std::ptrdiff_t>(input.size());
}

std::size_t Regex::dfa_state_count() const { return dfa_ ? dfa_->states.size() : 0; }

std::string Regex::required_prefix() const {
  // Walk forward while every surviving NFA thread agrees on the next literal
  // byte: the closure must not accept yet, and its consuming states must all
  // be the same single character.
  NfaScratch& arena = scratch_arena();
  std::string prefix;
  std::vector<std::int32_t> closure;
  std::uint32_t generation = arena.begin(states_.size());
  add_closure(start_, closure, arena.stamp, generation);

  std::vector<std::int32_t> next;
  while (true) {
    if (arena.stamp[static_cast<std::size_t>(accept_)] == generation) return prefix;
    char required = 0;
    bool have_required = false;
    for (std::int32_t id : closure) {
      const State& s = states_[static_cast<std::size_t>(id)];
      if (s.kind == State::Kind::kNone) continue;
      if (s.kind != State::Kind::kChar) return prefix;  // '.'/class: not literal
      if (have_required && s.ch != required) return prefix;
      required = s.ch;
      have_required = true;
    }
    if (!have_required) return prefix;  // dead end (matches nothing further)
    generation = arena.bump();
    if (!step_nfa(closure, static_cast<unsigned char>(required), next, arena.stamp, generation)) {
      return prefix;
    }
    prefix += required;
    closure.swap(next);
  }
}

std::string Regex::escape(std::string_view literal) {
  std::string out;
  out.reserve(literal.size());
  for (char c : literal) {
    if (kMetaChars.find(c) != std::string_view::npos) out += '\\';
    out += c;
  }
  return out;
}

}  // namespace appx::pattern
