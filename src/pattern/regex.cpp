#include "pattern/regex.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace appx::pattern {

namespace {
constexpr std::string_view kMetaChars = ".*+?()[]|\\^$";
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent over
//   alt    := concat ('|' concat)*
//   concat := repeat*
//   repeat := atom ('*' | '+' | '?')*
//   atom   := char | '.' | class | '(' alt ')'
// Each production returns an NFA fragment (start state + dangling exits).
// ---------------------------------------------------------------------------

struct Regex::Parser {
  Regex& re;
  std::string_view src;
  std::size_t pos = 0;

  bool at_end() const { return pos >= src.size(); }
  char peek() const { return src[pos]; }
  char take() { return src[pos++]; }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("regex '" + std::string(src) + "': " + message);
  }

  Fragment parse_alt() {
    Fragment left = parse_concat();
    while (!at_end() && peek() == '|') {
      take();
      Fragment right = parse_concat();
      // New split state with epsilon edges to both branches.
      State split;
      const std::int32_t s = re.add_state(split);
      re.states_[static_cast<std::size_t>(s)].eps.push_back(left.start);
      re.states_[static_cast<std::size_t>(s)].eps.push_back(right.start);
      Fragment merged;
      merged.start = s;
      merged.dangling = left.dangling;
      merged.dangling.insert(merged.dangling.end(), right.dangling.begin(),
                             right.dangling.end());
      left = std::move(merged);
    }
    return left;
  }

  Fragment parse_concat() {
    // An empty concat (e.g. "(|a)" branch or whole-empty regex) is a single
    // epsilon state.
    if (at_end() || peek() == '|' || peek() == ')') {
      State s;
      const std::int32_t id = re.add_state(s);
      return Fragment{id, {id}};
    }
    Fragment frag = parse_repeat();
    while (!at_end() && peek() != '|' && peek() != ')') {
      Fragment next = parse_repeat();
      re.patch(frag.dangling, next.start);
      frag.dangling = std::move(next.dangling);
    }
    return frag;
  }

  Fragment parse_repeat() {
    Fragment frag = parse_atom();
    while (!at_end() && (peek() == '*' || peek() == '+' || peek() == '?')) {
      const char op = take();
      State split;
      const std::int32_t s = re.add_state(split);
      if (op == '*') {
        re.states_[static_cast<std::size_t>(s)].eps.push_back(frag.start);
        re.patch(frag.dangling, s);
        frag = Fragment{s, {s}};
      } else if (op == '+') {
        re.states_[static_cast<std::size_t>(s)].eps.push_back(frag.start);
        re.patch(frag.dangling, s);
        frag = Fragment{frag.start, {s}};
      } else {  // '?'
        re.states_[static_cast<std::size_t>(s)].eps.push_back(frag.start);
        Fragment out{s, {s}};
        out.dangling.insert(out.dangling.end(), frag.dangling.begin(), frag.dangling.end());
        frag = std::move(out);
      }
    }
    return frag;
  }

  Fragment parse_atom() {
    if (at_end()) fail("unexpected end of expression");
    const char c = take();
    switch (c) {
      case '(': {
        Fragment inner = parse_alt();
        if (at_end() || take() != ')') fail("missing ')'");
        return inner;
      }
      case '[':
        return parse_class();
      case '.': {
        State s;
        s.kind = State::Kind::kAny;
        const std::int32_t id = re.add_state(s);
        return Fragment{id, {id}};
      }
      case '\\': {
        if (at_end()) fail("dangling escape");
        return literal_atom(unescape(take()));
      }
      case '*':
      case '+':
      case '?':
        fail("quantifier with nothing to repeat");
      case ')':
        fail("unbalanced ')'");
      case '|':
        fail("internal: '|' reached parse_atom");
      default:
        return literal_atom(c);
    }
  }

  static char unescape(char c) {
    switch (c) {
      case 'n': return '\n';
      case 'r': return '\r';
      case 't': return '\t';
      default: return c;  // escaped metachar or literal
    }
  }

  Fragment literal_atom(char c) {
    State s;
    s.kind = State::Kind::kChar;
    s.ch = c;
    const std::int32_t id = re.add_state(s);
    return Fragment{id, {id}};
  }

  Fragment parse_class() {
    std::vector<std::uint8_t> bitmap(256, 0);
    bool negate = false;
    if (!at_end() && peek() == '^') {
      negate = true;
      take();
    }
    bool first = true;
    while (true) {
      if (at_end()) fail("unterminated character class");
      char c = take();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (at_end()) fail("dangling escape in class");
        c = unescape(take());
      }
      if (!at_end() && peek() == '-' && pos + 1 < src.size() && src[pos + 1] != ']') {
        take();  // '-'
        char hi = take();
        if (hi == '\\') {
          if (at_end()) fail("dangling escape in class");
          hi = unescape(take());
        }
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          fail("inverted range in character class");
        }
        for (int b = static_cast<unsigned char>(c); b <= static_cast<unsigned char>(hi); ++b) {
          bitmap[static_cast<std::size_t>(b)] = 1;
        }
      } else {
        bitmap[static_cast<unsigned char>(c)] = 1;
      }
    }
    if (negate) {
      for (auto& bit : bitmap) bit = !bit;
    }
    State s;
    s.kind = State::Kind::kClass;
    s.cls = static_cast<std::uint32_t>(re.class_sets_.size());
    re.class_sets_.push_back(std::move(bitmap));
    const std::int32_t id = re.add_state(s);
    return Fragment{id, {id}};
  }
};

Regex::Regex(std::string_view expression) : source_(expression) {
  Parser parser{*this, expression};
  Fragment frag = parser.parse_alt();
  if (!parser.at_end()) parser.fail("unbalanced ')'");
  State accept;
  accept_ = add_state(accept);
  patch(frag.dangling, accept_);
  start_ = frag.start;
}

std::int32_t Regex::add_state(State s) {
  states_.push_back(std::move(s));
  return static_cast<std::int32_t>(states_.size() - 1);
}

void Regex::patch(const std::vector<std::int32_t>& dangling, std::int32_t target) {
  for (std::int32_t id : dangling) {
    State& s = states_[static_cast<std::size_t>(id)];
    if (s.kind == State::Kind::kNone) {
      s.eps.push_back(target);
    } else {
      s.next = target;
    }
  }
}

void Regex::add_closure(std::int32_t id, std::vector<std::int32_t>& set,
                        std::vector<std::uint8_t>& mark) const {
  if (mark[static_cast<std::size_t>(id)]) return;
  mark[static_cast<std::size_t>(id)] = 1;
  set.push_back(id);
  for (std::int32_t e : states_[static_cast<std::size_t>(id)].eps) add_closure(e, set, mark);
}

bool Regex::full_match(std::string_view input) const {
  return longest_prefix_match(input) == static_cast<std::ptrdiff_t>(input.size());
}

std::ptrdiff_t Regex::longest_prefix_match(std::string_view input) const {
  std::vector<std::int32_t> current;
  std::vector<std::uint8_t> mark(states_.size(), 0);
  add_closure(start_, current, mark);

  std::ptrdiff_t best = -1;
  auto is_accepting = [&](const std::vector<std::int32_t>& set) {
    return std::find(set.begin(), set.end(), accept_) != set.end();
  };
  if (is_accepting(current)) best = 0;

  std::vector<std::int32_t> next;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(input[i]);
    next.clear();
    std::fill(mark.begin(), mark.end(), 0);
    for (std::int32_t id : current) {
      const State& s = states_[static_cast<std::size_t>(id)];
      bool consume = false;
      switch (s.kind) {
        case State::Kind::kChar: consume = (static_cast<unsigned char>(s.ch) == c); break;
        case State::Kind::kAny: consume = true; break;
        case State::Kind::kClass: consume = class_sets_[s.cls][c] != 0; break;
        case State::Kind::kNone: break;
      }
      if (consume && s.next >= 0) add_closure(s.next, next, mark);
    }
    if (next.empty()) return best;
    current.swap(next);
    if (is_accepting(current)) best = static_cast<std::ptrdiff_t>(i + 1);
  }
  return best;
}

std::string Regex::escape(std::string_view literal) {
  std::string out;
  out.reserve(literal.size());
  for (char c : literal) {
    if (kMetaChars.find(c) != std::string_view::npos) out += '\\';
    out += c;
  }
  return out;
}

}  // namespace appx::pattern
