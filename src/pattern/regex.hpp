// A small regular-expression engine.
//
// Transaction signatures extracted by the static analysis are regular
// expressions over URIs, header values and body fields (paper Fig. 5:
// ".*/api/get-feed", "cid: .*", "offset: (0|-1)"). Matching them is on the
// proxy's per-message fast path, so we implement the needed subset directly
// as a Thompson NFA rather than going through std::regex:
//
//   literals, '.', character classes [a-z0-9_] (with ranges and '^'
//   negation), grouping (...), alternation '|', postfix '*', '+', '?',
//   and '\' escapes.
//
// Matches are whole-string (anchored at both ends), which is how the paper's
// signatures are written; use ".*" affixes for substring behaviour.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace appx::pattern {

class Regex {
 public:
  // Compiles the expression; throws appx::ParseError on invalid syntax.
  explicit Regex(std::string_view expression);

  Regex(const Regex&) = default;
  Regex(Regex&&) noexcept = default;
  Regex& operator=(const Regex&) = default;
  Regex& operator=(Regex&&) noexcept = default;

  // True if the entire input matches.
  bool full_match(std::string_view input) const;

  // Length of the longest prefix of `input` that the expression matches, or
  // -1 if no prefix (not even the empty one) matches. Used by template
  // extraction.
  std::ptrdiff_t longest_prefix_match(std::string_view input) const;

  const std::string& source() const { return source_; }

  // Escapes all metacharacters so the result matches `literal` exactly.
  static std::string escape(std::string_view literal);

 private:
  struct State {
    // Transition kinds: epsilon edges in eps[], plus at most one consuming
    // edge described by (kind, lo/hi or class bitmap index).
    enum class Kind : std::uint8_t { kNone, kChar, kAny, kClass };
    Kind kind = Kind::kNone;
    char ch = 0;             // for kChar
    std::uint32_t cls = 0;   // index into class_sets_ for kClass
    std::int32_t next = -1;  // target of the consuming edge
    std::vector<std::int32_t> eps;
  };

  struct Fragment {
    std::int32_t start;
    std::vector<std::int32_t> dangling;  // states whose `next`/eps needs patching
  };

  // --- compilation ---
  struct Parser;
  std::int32_t add_state(State s);
  void patch(const std::vector<std::int32_t>& dangling, std::int32_t target);

  // --- simulation ---
  void add_closure(std::int32_t s, std::vector<std::int32_t>& set,
                   std::vector<std::uint8_t>& mark) const;

  std::string source_;
  std::vector<State> states_;
  std::vector<std::vector<std::uint8_t>> class_sets_;  // 256-bit bitmaps
  std::int32_t start_ = -1;
  std::int32_t accept_ = -1;
};

}  // namespace appx::pattern
