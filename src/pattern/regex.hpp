// A small regular-expression engine.
//
// Transaction signatures extracted by the static analysis are regular
// expressions over URIs, header values and body fields (paper Fig. 5:
// ".*/api/get-feed", "cid: .*", "offset: (0|-1)"). Matching them is on the
// proxy's per-message fast path, so we implement the needed subset directly
// rather than going through std::regex:
//
//   literals, '.', character classes [a-z0-9_] (with ranges and '^'
//   negation), grouping (...), alternation '|', postfix '*', '+', '?',
//   and '\' escapes.
//
// Matches are whole-string (anchored at both ends), which is how the paper's
// signatures are written; use ".*" affixes for substring behaviour.
//
// Execution is two-tier (RE2-style):
//   1. a lazily-built DFA: subset-construction states are cached keyed by
//      their NFA state set the first time the match walk needs them, so the
//      steady state is one table lookup per input byte;
//   2. the Thompson NFA simulation, used to seed DFA states, as the fallback
//      when the DFA cache reaches its size cap, and as the reference
//      implementation for property tests.
// Both tiers produce identical results by construction. Like the rest of the
// pattern layer (see FieldTemplate's lazily compiled shapes), lazy state is
// mutable-under-const and not synchronised: callers serialise concurrent
// matching on a shared Regex themselves (the proxy front end already
// serialises engine access).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace appx::pattern {

class Regex {
 public:
  // Compiles the expression; throws appx::ParseError on invalid syntax.
  explicit Regex(std::string_view expression);

  // Copies share no DFA cache (the copy starts cold); the NFA is copied.
  Regex(const Regex& other);
  Regex(Regex&&) noexcept = default;
  Regex& operator=(const Regex& other);
  Regex& operator=(Regex&&) noexcept = default;

  // True if the entire input matches.
  bool full_match(std::string_view input) const;

  // Length of the longest prefix of `input` that the expression matches, or
  // -1 if no prefix (not even the empty one) matches. Used by template
  // extraction.
  std::ptrdiff_t longest_prefix_match(std::string_view input) const;

  // Reference Thompson-NFA simulation. Semantics are identical to
  // longest_prefix_match (which runs the lazy DFA); exposed for property
  // tests and benchmarks of the pre-DFA path.
  std::ptrdiff_t longest_prefix_match_nfa(std::string_view input) const;

  // The longest literal string every match must start with (the run of
  // single-character states reachable without choice from the start). Feeds
  // the signature dispatch index's prefilter.
  std::string required_prefix() const;

  // Number of DFA states cached so far (0 until the first match).
  std::size_t dfa_state_count() const;

  const std::string& source() const { return source_; }

  // Escapes all metacharacters so the result matches `literal` exactly.
  static std::string escape(std::string_view literal);

 private:
  struct State {
    // Transition kinds: epsilon edges in eps[], plus at most one consuming
    // edge described by (kind, lo/hi or class bitmap index).
    enum class Kind : std::uint8_t { kNone, kChar, kAny, kClass };
    Kind kind = Kind::kNone;
    char ch = 0;             // for kChar
    std::uint32_t cls = 0;   // index into class_sets_ for kClass
    std::int32_t next = -1;  // target of the consuming edge
    std::vector<std::int32_t> eps;
  };

  struct Fragment {
    std::int32_t start;
    std::vector<std::int32_t> dangling;  // states whose `next`/eps needs patching
  };

  // --- lazy DFA --------------------------------------------------------------
  // Transition values: >= 0 is a DFA state id; kTransUnknown means "not built
  // yet"; kTransDead means "no NFA state survives this byte".
  static constexpr std::int32_t kTransUnknown = -1;
  static constexpr std::int32_t kTransDead = -2;
  // Cap on cached DFA states; beyond it, matches that step off the cached
  // frontier fall back to NFA simulation. Signature patterns compile to a
  // handful of states; the cap only guards pathological inputs.
  static constexpr std::size_t kMaxDfaStates = 512;

  struct DfaState {
    std::array<std::int32_t, 256> next;
    std::vector<std::int32_t> nfa;  // sorted NFA state set this represents
    bool accepting = false;
  };
  struct Dfa {
    std::vector<DfaState> states;
    // Interning table: sorted NFA state set -> DFA state id.
    std::map<std::vector<std::int32_t>, std::int32_t> interned;
  };

  void ensure_dfa_start() const;
  // Builds (or returns the cached) successor of `from` on byte `c`. Returns
  // kTransDead for the dead state, or kTransUnknown when the cache is full
  // and the caller must fall back to the NFA.
  std::int32_t dfa_step(std::int32_t from, unsigned char c) const;
  // Interns the sorted NFA set; returns its id, kTransDead when empty, or
  // kTransUnknown when the cache is at capacity.
  std::int32_t intern_dfa_state(std::vector<std::int32_t> set) const;

  // --- compilation ---
  struct Parser;
  std::int32_t add_state(State s);
  void patch(const std::vector<std::int32_t>& dangling, std::int32_t target);

  // --- simulation ---
  void add_closure(std::int32_t s, std::vector<std::int32_t>& set,
                   std::vector<std::uint32_t>& stamp, std::uint32_t generation) const;
  bool step_nfa(const std::vector<std::int32_t>& current, unsigned char c,
                std::vector<std::int32_t>& next, std::vector<std::uint32_t>& stamp,
                std::uint32_t generation) const;

  std::string source_;
  std::vector<State> states_;
  std::vector<std::vector<std::uint8_t>> class_sets_;  // 256-bit bitmaps
  std::int32_t start_ = -1;
  std::int32_t accept_ = -1;
  mutable std::unique_ptr<Dfa> dfa_;  // built on first match
};

}  // namespace appx::pattern
