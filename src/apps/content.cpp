#include "apps/content.hpp"

#include "util/hash.hpp"

namespace appx::apps {

std::string derive_value(ProducesSpec::Kind kind, std::string_view endpoint_label,
                         std::string_view seed, std::size_t index, std::uint64_t epoch) {
  std::string material;
  material.reserve(endpoint_label.size() + seed.size() + 24);
  material += endpoint_label;
  material += '|';
  material += seed;
  material += '|';
  material += std::to_string(index);
  material += '|';
  material += std::to_string(epoch);

  switch (kind) {
    case ProducesSpec::Kind::kId:
      return short_digest(material, 8);
    case ProducesSpec::Kind::kName:
      return "n_" + short_digest("name:" + material, 6);
    case ProducesSpec::Kind::kNumber:
      return std::to_string(fnv1a("num:" + material) % 5000);
    case ProducesSpec::Kind::kText:
      return "t_" + short_digest("text:" + material, 16);
  }
  return short_digest(material, 8);
}

}  // namespace appx::apps
