// Simulated origin server for one app.
//
// Stands in for the commercial backends (and for the paper's record/replay
// server used in the user-study evaluation): it answers any request that
// matches an endpoint of the spec with deterministic content derived from
// the request's seed field. Unknown requests get a 404; requests missing
// their seed field get a 400 — both of which the verification phase (§4.3)
// relies on to filter bad prefetch signatures.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <optional>
#include <string>

#include "apps/content.hpp"
#include "apps/spec.hpp"
#include "http/message.hpp"

namespace appx::apps {

class OriginServer {
 public:
  explicit OriginServer(const AppSpec* spec);

  // Pure request -> response mapping (the simulator adds delays).
  http::Response serve(const http::Request& request) const;

  // Endpoint matching a concrete request (host + path + method), if any.
  const EndpointSpec* match(const http::Request& request) const;

  // Content epoch: bump to simulate origin-side content churn.
  std::uint64_t epoch() const { return epoch_; }
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }

  // Server-side processing delay for a request (0 for unmatched requests).
  Duration proc_delay(const http::Request& request) const;

  // Expected seed value a request carries for content derivation, "" when
  // the endpoint is seedless. Exposed for tests.
  static std::optional<std::string> seed_of(const EndpointSpec& ep, const http::Request& request);

  std::size_t requests_served() const { return served_.load(std::memory_order_relaxed); }

 private:
  const AppSpec* spec_;
  std::uint64_t epoch_ = 0;
  // serve() is called concurrently by LiveOriginServer's event-loop threads
  // with no external lock: served_ is atomic, the nonce set has its own
  // mutex, and everything else is read-only after construction (epoch_
  // changes only between test phases, never during live serving).
  mutable std::atomic<std::size_t> served_{0};
  mutable std::mutex nonce_mutex_;
  mutable std::set<std::string> seen_nonces_;
};

}  // namespace appx::apps
