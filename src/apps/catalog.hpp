// The five evaluation apps (paper Table 1), sized from the paper's
// measurements:
//
//   Wish          shopping        item detail     RTT 165 ms, images ~315 KB
//   Geek          shopping        item detail     RTT 165 ms, images ~315 KB
//   DoorDash      food delivery   restaurant info RTT 145 ms
//   Purple Ocean  psychic reading advisor page    RTT 230 ms, large proc delay
//   Postmates     food delivery   restaurant info RTT 5 ms, menus ~7 KB
//
// Each app is produced by one generator parameterised per app: a core
// interaction chain (launch -> feed -> detail -> merchant -> ...), UI tab
// families, a deep background dependency chain (Table 3 "max len"), padding
// successors carrying the bulk of the dependency-edge count, and
// background/push endpoints only static analysis can discover.
#pragma once

#include <vector>

#include "apps/spec.hpp"

namespace appx::apps {

AppSpec make_wish();
AppSpec make_geek();
AppSpec make_doordash();
AppSpec make_purpleocean();
AppSpec make_postmates();

// All five, in the paper's order.
std::vector<AppSpec> make_all_apps();

// Well-known interaction names produced by the generator.
inline constexpr const char* kLaunchInteraction = "launch";
inline constexpr const char* kMainInteraction = "item_detail";
inline constexpr const char* kMerchantInteraction = "merchant_page";

}  // namespace appx::apps
