#include "apps/server.hpp"

#include "json/json.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::apps {

OriginServer::OriginServer(const AppSpec* spec) : spec_(spec) {
  if (spec == nullptr) throw InvalidArgumentError("OriginServer: null spec");
}

const EndpointSpec* OriginServer::match(const http::Request& request) const {
  for (const EndpointSpec& ep : spec_->endpoints) {
    if (ep.host == request.uri.host && ep.path == request.uri.path &&
        ep.method == request.method) {
      return &ep;
    }
  }
  return nullptr;
}

std::optional<std::string> OriginServer::seed_of(const EndpointSpec& ep,
                                                 const http::Request& request) {
  if (ep.seed_field.empty()) return std::string{};
  if (const auto q = request.uri.query_param(ep.seed_field)) return *q;
  for (const auto& [name, value] : request.form_fields()) {
    if (name == ep.seed_field) return value;
  }
  return std::nullopt;
}

Duration OriginServer::proc_delay(const http::Request& request) const {
  const EndpointSpec* ep = match(request);
  return ep == nullptr ? Duration{0} : ep->proc_delay;
}

http::Response OriginServer::serve(const http::Request& request) const {
  ++served_;
  const EndpointSpec* ep = match(request);
  if (ep == nullptr) {
    http::Response resp;
    resp.status = 404;
    resp.reason = std::string(http::reason_phrase(404));
    resp.body = R"({"error":"no such endpoint"})";
    return resp;
  }
  const auto seed = seed_of(*ep, request);
  if (!seed) {
    http::Response resp;
    resp.status = 400;
    resp.reason = std::string(http::reason_phrase(400));
    resp.body = R"({"error":"missing seed field )" + ep->seed_field + "\"}";
    return resp;
  }

  if (ep->requires_nonce) {
    std::string nonce;
    if (const auto q = request.uri.query_param("nonce")) nonce = *q;
    for (const auto& [name, value] : request.form_fields()) {
      if (name == "nonce") nonce = value;
    }
    const std::lock_guard<std::mutex> nonce_lock(nonce_mutex_);
    if (nonce.empty() || !seen_nonces_.insert(nonce).second) {
      http::Response resp;
      resp.status = 403;
      resp.reason = std::string(http::reason_phrase(403));
      resp.body = R"({"error":"nonce missing or replayed"})";
      return resp;
    }
  }

  http::Response resp;
  if (ep->opaque) {
    resp.headers.set("Content-Type", "image/jpeg");
    resp.opaque_payload = ep->opaque_size;
    return resp;
  }

  json::Value root{json::Object{}};
  const auto value_at = [&](const ProducesSpec& p, std::size_t index) {
    if (p.kind == ProducesSpec::Kind::kUrl) {
      return p.url_base + derive_value(ProducesSpec::Kind::kId, ep->label, *seed, index, epoch_);
    }
    return derive_value(p.kind, ep->label, *seed, index, epoch_);
  };
  for (const ProducesSpec& p : ep->produces) {
    std::string prefix, remainder;
    if (split_wildcard_path(p.path, prefix, remainder)) {
      for (int i = 0; i < ep->list_count; ++i) {
        std::string concrete = prefix + "[" + std::to_string(i) + "]";
        if (!remainder.empty()) concrete += "." + remainder;
        json::set_at(root, json::Path(concrete),
                     json::Value(value_at(p, static_cast<std::size_t>(i))));
      }
    } else {
      json::set_at(root, json::Path(p.path), json::Value(value_at(p, 0)));
    }
  }
  if (ep->json_padding > 0) {
    json::set_at(root, json::Path("_pad"),
                 json::Value(std::string(static_cast<std::size_t>(ep->json_padding), 'x')));
  }
  resp.headers.set("Content-Type", "application/json");
  resp.body = root.dump();
  return resp;
}

}  // namespace appx::apps
