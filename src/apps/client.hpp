// The app client engine: replays an app's interactions over a transport.
//
// Plays the role of the instrumented Nexus 6 in the paper's testbed. Driven
// by the fuzzer (Monkey-style random events), by user-study traces, or
// directly by benchmarks. Builds requests from the same AppSpec the SAPK
// binary was compiled from, so live traffic matches the analysed signatures
// exactly — the property real apps have by construction.
//
// Latency accounting follows §6: user-perceived latency = input processing
// (pre_delay) + network waves (each wave is a render barrier) + render time;
// the network share is the sum of wave durations, the rest is processing
// delay (Fig. 13/14's breakdown).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "apps/spec.hpp"
#include "http/message.hpp"
#include "json/json.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace appx::apps {

struct ClientEnv {
  std::map<std::string, std::string> values;  // env name -> concrete value
  std::set<std::string> flags;                // conditional-field flags that are ON

  // Spec defaults + per-user overrides (cookie, device id).
  static ClientEnv for_user(const AppSpec& spec, const std::string& user_id);
};

struct InteractionResult {
  std::string interaction;
  Duration total = 0;       // user-perceived latency
  Duration network = 0;     // sum of wave durations
  Duration processing = 0;  // total - network
  std::size_t requests = 0;
  bool ok = true;  // false when a dependency could not be resolved
};

class AppClient {
 public:
  // Sends a request; must invoke the callback exactly once with the response.
  using Transport =
      std::function<void(http::Request, std::function<void(http::Response)>)>;
  using DoneFn = std::function<void(const InteractionResult&)>;

  // `jitter` adds uniform +-25% noise to interaction pre/render delays
  // (device scheduling, GC pauses); 0 disables it. The stream is seeded from
  // the user cookie, so runs stay reproducible.
  AppClient(const AppSpec* spec, ClientEnv env, sim::Simulator* sim, Transport transport,
            double jitter = 0.25);

  // True when every dependency of the interaction is resolvable now (or will
  // be produced by an earlier wave of the same interaction) and `selection`
  // is within the predecessor's list bounds.
  bool can_run(const std::string& interaction, std::size_t selection = 0) const;

  // Drive one interaction; `done` fires when the last wave has rendered.
  void run_interaction(const std::string& interaction, std::size_t selection, DoneFn done);

  // Concrete request for an endpoint (element_index selects [*] elements).
  // nullopt when a dependency value is unavailable.
  std::optional<http::Request> build_request(const EndpointSpec& ep,
                                             std::size_t element_index) const;

  // Number of elements available for per-element/selection steps of an
  // endpoint's first wildcard dependency (0 when unknown).
  std::size_t available_elements(const EndpointSpec& ep) const;

  const json::Value* last_response(const std::string& endpoint_label) const;
  const AppSpec& spec() const { return *spec_; }
  ClientEnv& env() { return env_; }
  std::size_t nonces_minted() const { return nonce_counter_; }

 private:
  struct RunState;
  void start_wave(std::shared_ptr<RunState> run);
  std::optional<std::string> resolve_dep(const ValueSpec& value,
                                         std::size_t element_index) const;

  const AppSpec* spec_;
  ClientEnv env_;
  sim::Simulator* sim_;
  Transport transport_;
  Duration jittered(Duration base);

  std::map<std::string, json::Value> responses_;  // endpoint label -> last body
  mutable std::size_t nonce_counter_ = 0;
  double jitter_;
  Rng rng_;
};

}  // namespace appx::apps
