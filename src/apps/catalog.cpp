#include "apps/catalog.hpp"

#include <string>

#include "util/error.hpp"

namespace appx::apps {

namespace {

using FL = core::FieldLocation;
using VS = ValueSpec;

// Per-app knobs; defaults are overridden by each make_* function.
struct Params {
  std::string package;
  std::string name;
  std::string category;
  std::string main_desc;
  std::string api_host;
  std::string img_host;
  Duration api_rtt = milliseconds(100);
  Duration img_rtt = milliseconds(15);

  // Payloads.
  Bytes feed_padding = kilobytes(6);
  Bytes detail_padding = kilobytes(14);
  Bytes thumb_size = kilobytes(40);
  Bytes photo_size = kilobytes(315);
  int feed_count = 30;
  int detail_photos = 4;

  // Scale (drives Table 3).
  int tabs = 10;              // UI tab families: root + list successor each
  int chain_length = 10;      // background chain depth (max len driver)
  int chain_deps = 6;         // dep fields per chain link
  int pad_successors = 8;     // extra feed successors (scalar deps)
  int pad_succ_deps = 20;     // dep fields each (aux1..)
  int aux0_deps = 12;         // aux0 is part of the launch tail: keep it light
  int detail_deps = 8;        // dep fields of the detail request (per item)
  int tab_succ_deps = 4;
  int tabs_hidden = 0;        // tabs reachable only behind login etc. (no UI)
  int ui_screens = 0;         // simple UI screens over pairs of bg endpoints
  bool merchant_ui = true;    // merchant page reachable from the UI?
  bool launch_featured = false;  // launch also opens a featured item/store
  int bg_roots = 40;          // push/telemetry endpoints, no interaction

  // Client-side processing (Fig. 13/14 "processing delay").
  Duration main_pre = milliseconds(80);
  Duration main_render = milliseconds(320);
  Duration launch_pre = milliseconds(400);
  Duration launch_render = milliseconds(600);
  Duration server_proc = milliseconds(40);
};

// Adds `n` produces entries "data.items[*].f<i>" (per-element) to `ep` and
// returns the paths.
std::vector<std::string> add_item_fields(EndpointSpec& ep, const std::string& list_path,
                                         int n, const std::string& tag) {
  std::vector<std::string> paths;
  for (int i = 0; i < n; ++i) {
    const std::string path = list_path + "[*]." + tag + std::to_string(i);
    ep.produces.push_back({path, ProducesSpec::Kind::kText});
    paths.push_back(path);
  }
  return paths;
}

std::vector<std::string> add_scalar_fields(EndpointSpec& ep, int n, const std::string& tag) {
  std::vector<std::string> paths;
  for (int i = 0; i < n; ++i) {
    const std::string path = "data.meta." + tag + std::to_string(i);
    ep.produces.push_back({path, ProducesSpec::Kind::kText});
    paths.push_back(path);
  }
  return paths;
}

// Standard device/session fields every API request carries.
void add_session_fields(EndpointSpec& ep) {
  ep.fields.push_back({FL::kHeader, "Cookie", VS::env("cookie"), false, ""});
  ep.fields.push_back({FL::kHeader, "User-Agent", VS::env("user_agent"), false, ""});
}

AppSpec build_app(const Params& p) {
  AppSpec app;
  app.package = p.package;
  app.name = p.name;
  app.category = p.category;
  app.main_interaction_desc = p.main_desc;
  app.main_interaction = kMainInteraction;
  app.default_rtt = p.api_rtt;
  app.host_rtt[p.api_host] = p.api_rtt;
  app.host_rtt[p.img_host] = p.img_rtt;
  // Image CDNs peer close to the proxy with plenty of headroom; the paper's
  // measured 6-16 ms image RTTs imply exactly this.
  app.host_bw[p.img_host] = mbps(100);
  app.env_defaults = {
      {"api_host", p.api_host}, {"img_host", p.img_host},   {"client", "android"},
      {"ver", "4.13.0"},        {"user_agent", "Mozilla/5.0"}, {"cookie", "anon"},
      {"device_id", "dev0"},
  };
  app.accelerated_labels = {"thumb", "detail", "related", "photo", "reviews",
                            "aux0",  "tab0_content"};

  // --- core chain -----------------------------------------------------------

  // boot config: serial launch prelude.
  {
    EndpointSpec ep;
    ep.label = "boot_config";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/api/boot";
    add_session_fields(ep);
    ep.fields.push_back({FL::kQuery, "device", VS::env("device_id"), false, ""});
    ep.produces.push_back({"data.session.token", ProducesSpec::Kind::kId});
    ep.json_padding = kilobytes(2);
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  // feed: the start-page item list.
  {
    EndpointSpec ep;
    ep.label = "feed";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/api/get-feed";
    add_session_fields(ep);
    ep.fields.push_back({FL::kQuery, "offset", VS::constant("0"), false, ""});
    ep.fields.push_back({FL::kQuery, "count", VS::constant(std::to_string(p.feed_count)), false, ""});
    ep.fields.push_back({FL::kBody, "_client", VS::env("client"), false, ""});
    ep.fields.push_back({FL::kBody, "_ver", VS::env("ver"), false, ""});
    ep.method = "POST";
    ep.list_count = p.feed_count;
    ep.produces.push_back({"data.items[*].id", ProducesSpec::Kind::kId});
    ep.produces.push_back({"data.items[*].merchant", ProducesSpec::Kind::kName});
    // Real feeds embed absolute thumbnail URLs; URL-scanning prefetchers
    // (the Looxy baseline) can use these, and only these.
    ep.produces.push_back({"data.items[*].thumb_url", ProducesSpec::Kind::kUrl,
                           "https://" + p.img_host + "/thumb?cid="});
    ep.json_padding = p.feed_padding;
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  auto& feed = app.endpoints.back();
  const auto feed_item_fields = add_item_fields(feed, "data.items", p.detail_deps, "f");

  // thumbnails: one per feed item at launch (Rx route, per-element).
  {
    EndpointSpec ep;
    ep.label = "thumb";
    ep.host = p.img_host;
    ep.host_env = "img_host";
    ep.path = "/thumb";
    ep.fields.push_back({FL::kQuery, "cid", VS::dep("feed", "data.items[*].id"), false, ""});
    ep.route = DepRoute::kRxFlatMap;
    ep.seed_field = "cid";
    ep.opaque = true;
    ep.opaque_size = p.thumb_size;
    ep.proc_delay = milliseconds(3);
    app.endpoints.push_back(ep);
  }
  // item detail: the main interaction (heap-chained deps, conditional field).
  {
    EndpointSpec ep;
    ep.label = "detail";
    ep.method = "POST";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/product/get";
    add_session_fields(ep);
    ep.fields.push_back({FL::kBody, "cid", VS::dep("feed", "data.items[*].id"), false, ""});
    for (std::size_t i = 0; i < feed_item_fields.size(); ++i) {
      ep.fields.push_back({FL::kBody, "attr" + std::to_string(i),
                           VS::dep("feed", feed_item_fields[i]), false, ""});
    }
    ep.fields.push_back({FL::kBody, "_client", VS::env("client"), false, ""});
    ep.fields.push_back({FL::kBody, "_ver", VS::env("ver"), false, ""});
    ep.fields.push_back({FL::kBody, "_build", VS::constant("amazon"), false, ""});
    ep.fields.push_back({FL::kBody, "credit_id", VS::env("credit_id"), true, "has_credit"});
    ep.route = DepRoute::kHeapChain;
    ep.seed_field = "cid";
    ep.produces.push_back({"data.contest.merchant_name", ProducesSpec::Kind::kName});
    ep.produces.push_back({"data.contest.price", ProducesSpec::Kind::kNumber});
    ep.produces.push_back({"data.contest.photos[*].id", ProducesSpec::Kind::kId});
    ep.produces.push_back({"data.contest.photos[*].url", ProducesSpec::Kind::kUrl,
                           "https://" + p.img_host + "/photo?pid="});
    ep.produces.push_back({"data.contest.reviews_token", ProducesSpec::Kind::kId});
    ep.list_count = p.detail_photos;
    ep.json_padding = p.detail_padding;
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  app.env_defaults["credit_id"] = "cc_none";
  // related items: issued alongside detail, also keyed by the feed item id.
  {
    EndpointSpec ep;
    ep.label = "related";
    ep.method = "POST";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/related/get";
    add_session_fields(ep);
    ep.fields.push_back({FL::kBody, "cid", VS::dep("feed", "data.items[*].id"), false, ""});
    ep.fields.push_back({FL::kBody, "count", VS::constant("10"), false, ""});
    ep.route = DepRoute::kDirect;
    ep.seed_field = "cid";
    ep.produces.push_back({"data.related[*].id", ProducesSpec::Kind::kId});
    ep.list_count = 10;
    ep.json_padding = kilobytes(4);
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  // detail photos: large product images on the detail page.
  {
    EndpointSpec ep;
    ep.label = "photo";
    ep.host = p.img_host;
    ep.host_env = "img_host";
    ep.path = "/photo";
    ep.fields.push_back(
        {FL::kQuery, "pid", VS::dep("detail", "data.contest.photos[*].id"), false, ""});
    ep.route = DepRoute::kRxFlatMap;
    ep.seed_field = "pid";
    ep.opaque = true;
    ep.opaque_size = p.photo_size;
    ep.proc_delay = milliseconds(3);
    app.endpoints.push_back(ep);
  }
  // reviews: a further serial round trip on the detail page.
  {
    EndpointSpec ep;
    ep.label = "reviews";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/reviews/get";
    add_session_fields(ep);
    ep.fields.push_back(
        {FL::kQuery, "token", VS::dep("detail", "data.contest.reviews_token"), false, ""});
    ep.fields.push_back({FL::kQuery, "count", VS::constant("20"), false, ""});
    ep.route = DepRoute::kDirect;
    ep.seed_field = "token";
    ep.produces.push_back({"data.reviews[*].id", ProducesSpec::Kind::kId});
    ep.list_count = 20;
    ep.json_padding = kilobytes(6);
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  // merchant page chain (Fig. 2/3c): name -> merchant -> ratings/items/image.
  {
    EndpointSpec ep;
    ep.label = "merchant";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/api/merchant";
    add_session_fields(ep);
    ep.fields.push_back(
        {FL::kQuery, "m", VS::dep("detail", "data.contest.merchant_name"), false, ""});
    ep.route = DepRoute::kIntent;
    ep.seed_field = "m";
    ep.produces.push_back({"data.merchant.id", ProducesSpec::Kind::kId});
    ep.produces.push_back({"data.merchant.image_id", ProducesSpec::Kind::kId});
    ep.produces.push_back({"data.merchant.items[*].id", ProducesSpec::Kind::kId});
    ep.list_count = 12;
    ep.json_padding = kilobytes(5);
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  {
    EndpointSpec ep;
    ep.label = "merchant_ratings";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/api/ratings/get";
    add_session_fields(ep);
    ep.fields.push_back({FL::kQuery, "id", VS::dep("merchant", "data.merchant.id"), false, ""});
    ep.route = DepRoute::kDirect;
    ep.seed_field = "id";
    ep.produces.push_back({"data.ratings.avg", ProducesSpec::Kind::kNumber});
    ep.json_padding = kilobytes(3);
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  {
    EndpointSpec ep;
    ep.label = "merchant_image";
    ep.host = p.img_host;
    ep.host_env = "img_host";
    ep.path = "/merchant-img";
    ep.fields.push_back(
        {FL::kQuery, "id", VS::dep("merchant", "data.merchant.image_id"), false, ""});
    ep.route = DepRoute::kDirect;
    ep.seed_field = "id";
    ep.opaque = true;
    ep.opaque_size = p.thumb_size;
    ep.proc_delay = milliseconds(3);
    app.endpoints.push_back(ep);
  }
  {
    EndpointSpec ep;
    ep.label = "merchant_item";
    ep.method = "POST";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/merchant/item";
    add_session_fields(ep);
    ep.fields.push_back(
        {FL::kBody, "cid", VS::dep("merchant", "data.merchant.items[*].id"), false, ""});
    ep.route = DepRoute::kRxFlatMap;
    ep.seed_field = "cid";
    ep.produces.push_back({"data.item.photo_id", ProducesSpec::Kind::kId});
    ep.json_padding = kilobytes(6);
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }
  {
    EndpointSpec ep;
    ep.label = "merchant_item_photo";
    ep.host = p.img_host;
    ep.host_env = "img_host";
    ep.path = "/mi-photo";
    ep.fields.push_back(
        {FL::kQuery, "pid", VS::dep("merchant_item", "data.item.photo_id"), false, ""});
    ep.route = DepRoute::kDirect;
    ep.seed_field = "pid";
    ep.opaque = true;
    ep.opaque_size = p.photo_size;
    ep.proc_delay = milliseconds(3);
    app.endpoints.push_back(ep);
  }

  // add-to-cart: a side-effectful request carrying a fresh anti-replay nonce.
  // Static analysis finds it (it depends on the feed item id), but replayed
  // nonces get 403s, so the verification phase must disable its prefetching.
  {
    EndpointSpec ep;
    ep.label = "cart_add";
    ep.method = "POST";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/cart/add";
    add_session_fields(ep);
    ep.fields.push_back({FL::kBody, "cid", VS::dep("feed", "data.items[*].id"), false, ""});
    ep.fields.push_back({FL::kBody, "nonce", VS::nonce(), false, ""});
    ep.route = DepRoute::kDirect;
    ep.seed_field = "cid";
    ep.requires_nonce = true;
    ep.produces.push_back({"data.cart.count", ProducesSpec::Kind::kNumber});
    ep.json_padding = 256;
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }

  // --- UI tab families -------------------------------------------------------

  for (int t = 0; t < p.tabs; ++t) {
    const std::string id = std::to_string(t);
    EndpointSpec root;
    root.label = "tab" + id;
    root.host = p.api_host;
    root.host_env = "api_host";
    root.path = "/api/tab/" + id;
    add_session_fields(root);
    root.fields.push_back({FL::kQuery, "page", VS::constant("0"), false, ""});
    const auto paths = add_scalar_fields(root, p.tab_succ_deps, "k");
    root.json_padding = kilobytes(4);
    root.proc_delay = p.server_proc;
    app.endpoints.push_back(root);

    EndpointSpec list;
    list.label = "tab" + id + "_content";
    list.method = "POST";
    list.host = p.api_host;
    list.host_env = "api_host";
    list.path = "/api/tab/" + id + "/content";
    add_session_fields(list);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      list.fields.push_back(
          {FL::kBody, "k" + std::to_string(i), VS::dep("tab" + id, paths[i]), false, ""});
    }
    list.route = (t % 2 == 0) ? DepRoute::kDirect : DepRoute::kHeapChain;
    list.seed_field = "k0";
    list.produces.push_back({"data.content.rows", ProducesSpec::Kind::kNumber});
    list.json_padding = kilobytes(8);
    list.proc_delay = p.server_proc;
    app.endpoints.push_back(list);
  }

  // --- deep background chain (Table 3 max len) ---------------------------------

  {
    EndpointSpec root;
    root.label = "sync0";
    root.host = p.api_host;
    root.host_env = "api_host";
    root.path = "/api/sync/0";
    add_session_fields(root);
    root.fields.push_back({FL::kQuery, "cursor", VS::constant("init"), false, ""});
    add_scalar_fields(root, p.chain_deps, "c");
    root.json_padding = kilobytes(2);
    root.proc_delay = p.server_proc;
    app.endpoints.push_back(root);
  }
  for (int link = 1; link <= p.chain_length; ++link) {
    const std::string pred = "sync" + std::to_string(link - 1);
    EndpointSpec ep;
    ep.label = "sync" + std::to_string(link);
    ep.method = "POST";
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/api/sync/" + std::to_string(link);
    add_session_fields(ep);
    for (int i = 0; i < p.chain_deps; ++i) {
      ep.fields.push_back({FL::kBody, "c" + std::to_string(i),
                           VS::dep(pred, "data.meta.c" + std::to_string(i)), false, ""});
    }
    ep.route = (link % 3 == 0) ? DepRoute::kIntent
                               : (link % 3 == 1 ? DepRoute::kDirect : DepRoute::kHeapChain);
    ep.seed_field = "c0";
    add_scalar_fields(ep, p.chain_deps, "c");
    ep.json_padding = kilobytes(2);
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }

  // --- padding successors (bulk of the dependency-edge count) -------------------

  {
    // They read scalar summary fields of the feed (badge counts, trackers).
    auto& feed_ep = app.endpoints[1];
    if (feed_ep.label != "feed") throw InvalidStateError("catalog: feed index drifted");
    const int max_deps = std::max(p.aux0_deps, p.pad_succ_deps);
    const auto scalar_paths = add_scalar_fields(feed_ep, max_deps, "s");
    for (int s = 0; s < p.pad_successors; ++s) {
      EndpointSpec ep;
      ep.label = "aux" + std::to_string(s);
      ep.method = "POST";
      ep.host = p.api_host;
      ep.host_env = "api_host";
      ep.path = "/api/aux/" + std::to_string(s);
      add_session_fields(ep);
      const std::size_t ndeps = static_cast<std::size_t>(s == 0 ? p.aux0_deps : p.pad_succ_deps);
      for (std::size_t i = 0; i < ndeps; ++i) {
        ep.fields.push_back(
            {FL::kBody, "s" + std::to_string(i), VS::dep("feed", scalar_paths[i]), false, ""});
      }
      ep.route = DepRoute::kDirect;
      ep.seed_field = "s0";
      ep.produces.push_back({"data.ok", ProducesSpec::Kind::kNumber});
      ep.json_padding = kilobytes(1);
      ep.proc_delay = p.server_proc;
      app.endpoints.push_back(ep);
    }
  }

  // --- background/push-only endpoints (no interaction reaches them) -------------

  for (int b = 0; b < p.bg_roots; ++b) {
    EndpointSpec ep;
    ep.label = "bg" + std::to_string(b);
    ep.host = p.api_host;
    ep.host_env = "api_host";
    ep.path = "/api/bg/" + std::to_string(b);
    add_session_fields(ep);
    ep.fields.push_back({FL::kQuery, "seq", VS::constant(std::to_string(b)), false, ""});
    ep.produces.push_back({"data.ack", ProducesSpec::Kind::kNumber});
    ep.json_padding = 256;
    ep.proc_delay = p.server_proc;
    app.endpoints.push_back(ep);
  }

  // --- interactions ---------------------------------------------------------------

  {
    Interaction launch;
    launch.name = kLaunchInteraction;
    launch.trigger = Interaction::Trigger::kUi;
    launch.fuzz_weight = 0;  // launch happens once per session, not per event
    launch.user_weight = 0;
    launch.pre_delay = p.launch_pre;
    launch.render_delay = p.launch_render;
    launch.waves = {
        {{"boot_config", false, 0}},
        {{"feed", false, 0}},
        {{"thumb", true, p.feed_count}},
        // Serial dependent API calls finish the start page; these are
        // prefetchable, which is where launch acceleration comes from.
        {{"aux0", false, 0}},
        {{"tab0", false, 0}},
        {{"tab0_content", false, 0}},
    };
    if (p.launch_featured) {
      // The start page auto-expands a featured item (Postmates-style
      // featured restaurant): two further serial, prefetchable transactions.
      launch.waves.push_back({{"detail", false, 0}});
      launch.waves.push_back({{"reviews", false, 0}});
    }
    app.interactions.push_back(launch);
  }
  {
    Interaction main;
    main.name = kMainInteraction;
    main.trigger = Interaction::Trigger::kUi;
    main.fuzz_weight = 3.0;
    main.user_weight = 10.0;
    main.pre_delay = p.main_pre;
    main.render_delay = p.main_render;
    main.waves = {
        {{"detail", false, 0}, {"related", false, 0}},
        {{"photo", true, 0}},
        {{"reviews", false, 0}},
    };
    app.interactions.push_back(main);
  }
  if (p.merchant_ui) {
    Interaction merchant;
    merchant.name = kMerchantInteraction;
    merchant.trigger = Interaction::Trigger::kUi;
    merchant.fuzz_weight = 1.5;
    merchant.user_weight = 1.5;
    merchant.pre_delay = p.main_pre;
    merchant.render_delay = p.main_render;
    merchant.waves = {
        {{"merchant", false, 0}},
        {{"merchant_ratings", false, 0}, {"merchant_image", false, 0}},
        {{"merchant_item", true, 4}},
        {{"merchant_item_photo", false, 0}},
    };
    app.interactions.push_back(merchant);
  }
  // The last `tabs_hidden` tab families sit behind flows Monkey cannot
  // drive (login walls, deep settings): no interaction reaches them, so only
  // static analysis discovers their signatures.
  {
    Interaction cart;
    cart.name = "add_to_cart";
    cart.trigger = Interaction::Trigger::kUi;
    cart.fuzz_weight = 0.8;
    cart.user_weight = 0.3;
    cart.pre_delay = p.main_pre;
    cart.render_delay = milliseconds(80);
    cart.waves = {{{"cart_add", false, 0}}};
    app.interactions.push_back(cart);
  }
  for (int t = 0; t < p.tabs - p.tabs_hidden; ++t) {
    Interaction tab;
    tab.name = "tab" + std::to_string(t);
    tab.trigger = Interaction::Trigger::kUi;
    tab.fuzz_weight = 1.0;
    tab.user_weight = (t < 2) ? 0.6 : 0.002;  // users stick to a couple of tabs
    tab.pre_delay = p.main_pre;
    tab.render_delay = p.main_render;
    tab.waves = {
        {{"tab" + std::to_string(t), false, 0}},
        {{"tab" + std::to_string(t) + "_content", false, 0}},
    };
    app.interactions.push_back(tab);
  }
  for (int u = 0; u < p.ui_screens; ++u) {
    // Simple screens (settings, notifications, ...) backed by two of the
    // otherwise-background endpoints; fuzzing can stumble into these.
    Interaction screen;
    screen.name = "screen" + std::to_string(u);
    screen.trigger = Interaction::Trigger::kUi;
    screen.fuzz_weight = 0.6;
    screen.user_weight = 0.002;
    screen.pre_delay = p.main_pre;
    screen.render_delay = p.main_render;
    screen.waves = {{{"bg" + std::to_string(2 * u), false, 0},
                     {"bg" + std::to_string(2 * u + 1), false, 0}}};
    app.interactions.push_back(screen);
  }
  {
    // Periodic background sync: walks part of the deep chain; never fired by
    // UI fuzzing (Monkey cannot trigger it) and rarely present in short user
    // sessions — exactly the coverage gap Table 3 shows.
    Interaction sync;
    sync.name = "background_sync";
    sync.trigger = Interaction::Trigger::kBackground;
    sync.fuzz_weight = 0;
    sync.user_weight = 0;  // 3-minute sessions don't hit the periodic sync
    sync.pre_delay = milliseconds(5);
    sync.render_delay = milliseconds(5);
    sync.waves.push_back({{"sync0", false, 0}});
    const int visible_depth = std::min(p.chain_length, 4);
    for (int link = 1; link <= visible_depth; ++link) {
      sync.waves.push_back({{"sync" + std::to_string(link), false, 0}});
    }
    app.interactions.push_back(sync);
  }

  app.validate();
  return app;
}

}  // namespace

AppSpec make_wish() {
  Params p;
  p.package = "com.wish.app";
  p.name = "Wish";
  p.category = "Shopping";
  p.main_desc = "Loads an item detail";
  p.api_host = "api.wish.example";
  p.img_host = "img.wish.example";
  p.api_rtt = milliseconds(165);
  p.img_rtt = milliseconds(16);
  p.photo_size = kilobytes(315);
  p.detail_padding = kilobytes(14);
  p.server_proc = milliseconds(120);
  p.tabs = 6;
  p.chain_length = 12;
  p.chain_deps = 7;
  p.pad_successors = 4;
  p.pad_succ_deps = 212;
  p.detail_deps = 15;
  p.tab_succ_deps = 6;
  p.ui_screens = 11;
  p.bg_roots = 78;
  p.main_render = milliseconds(360);
  p.launch_pre = milliseconds(800);
  p.launch_render = milliseconds(1200);
  return build_app(p);
}

AppSpec make_geek() {
  Params p;
  p.package = "com.geek.app";
  p.name = "Geek";
  p.category = "Shopping";
  p.main_desc = "Loads an item detail";
  p.api_host = "api.geek.example";
  p.img_host = "img.geek.example";
  p.api_rtt = milliseconds(165);
  p.img_rtt = milliseconds(6);
  p.photo_size = kilobytes(315);
  p.detail_padding = kilobytes(14);
  p.server_proc = milliseconds(200);
  p.detail_photos = 6;
  p.tabs = 16;
  p.chain_length = 10;
  p.chain_deps = 6;
  p.pad_successors = 8;
  p.pad_succ_deps = 31;
  p.detail_deps = 8;
  p.tab_succ_deps = 5;
  p.ui_screens = 3;
  p.bg_roots = 54;
  p.main_render = milliseconds(200);
  p.launch_pre = milliseconds(1200);
  p.launch_render = milliseconds(2100);
  return build_app(p);
}

AppSpec make_doordash() {
  Params p;
  p.package = "com.doordash.app";
  p.name = "DoorDash";
  p.category = "Food delivery";
  p.main_desc = "Loads a restaurant info";
  p.api_host = "api.doordash.example";
  p.img_host = "img.doordash.example";
  p.api_rtt = milliseconds(145);
  p.img_rtt = milliseconds(15);
  p.photo_size = kilobytes(120);
  p.thumb_size = kilobytes(60);
  p.detail_padding = kilobytes(18);
  p.feed_count = 20;
  p.server_proc = milliseconds(350);
  p.tabs = 6;
  p.chain_length = 7;
  p.chain_deps = 4;
  p.pad_successors = 7;
  p.pad_succ_deps = 13;
  p.detail_deps = 7;
  p.tab_succ_deps = 4;
  p.ui_screens = 2;
  p.bg_roots = 23;
  p.main_render = milliseconds(580);
  p.launch_pre = milliseconds(2000);
  p.launch_render = milliseconds(2300);
  return build_app(p);
}

AppSpec make_purpleocean() {
  Params p;
  p.package = "com.purpleocean.app";
  p.name = "Purple Ocean";
  p.category = "Psychic reading";
  p.main_desc = "Loads an advisor page";
  p.api_host = "api.purpleocean.example";
  p.img_host = "img.purpleocean.example";
  p.api_rtt = milliseconds(230);
  p.img_rtt = milliseconds(15);
  p.photo_size = kilobytes(90);
  p.thumb_size = kilobytes(35);
  p.detail_padding = kilobytes(10);
  p.feed_count = 24;
  p.server_proc = milliseconds(300);
  p.tabs = 14;
  p.tabs_hidden = 11;
  p.chain_length = 4;
  p.chain_deps = 3;
  p.pad_successors = 8;
  p.pad_succ_deps = 1;
  p.detail_deps = 2;
  p.merchant_ui = false;  // no merchant page in a psychic-reading app UI
  p.tab_succ_deps = 2;
  p.ui_screens = 3;
  p.bg_roots = 55;
  // Paper: Purple Ocean's processing delay is large (~0.8 s).
  p.main_pre = milliseconds(150);
  p.main_render = milliseconds(550);
  p.launch_pre = milliseconds(700);
  p.launch_render = milliseconds(900);
  return build_app(p);
}

AppSpec make_postmates() {
  Params p;
  p.package = "com.postmates.app";
  p.name = "Postmates";
  p.category = "Food delivery";
  p.main_desc = "Loads a restaurant info";
  p.api_host = "api.postmates.example";
  p.img_host = "img.postmates.example";
  p.api_rtt = milliseconds(5);
  p.img_rtt = milliseconds(5);
  p.photo_size = kilobytes(40);   // menu photos are small
  p.thumb_size = kilobytes(168);  // restaurant images load at launch
  p.detail_padding = kilobytes(7);  // menu + info
  p.feed_count = 18;
  p.server_proc = milliseconds(300);  // the "slow origin" case (§2)
  p.detail_photos = 2;
  p.launch_featured = true;
  p.tabs = 8;
  p.tabs_hidden = 6;
  p.chain_length = 15;
  p.chain_deps = 12;
  p.pad_successors = 1;
  p.aux0_deps = 43;
  p.detail_deps = 6;
  p.merchant_ui = false;  // deep store chains are background-only here
  p.tab_succ_deps = 4;
  p.ui_screens = 1;
  p.bg_roots = 37;
  p.main_render = milliseconds(180);
  p.launch_pre = milliseconds(900);
  p.launch_render = milliseconds(1100);
  AppSpec app = build_app(p);
  // Postmates' origin path is bandwidth-constrained (large restaurant images
  // over a congested CDN path): the launch-time image fan-out is where the
  // paper reports its biggest launch win.
  app.origin_bw = mbps(12);
  app.host_bw[p.img_host] = mbps(12);
  // Restaurant images dwarf the menus (168 KB vs 7 KB): the provider opts
  // out of image prefetching — the paper's explanation of Postmates' low
  // data-usage overhead.
  app.accelerated_labels.erase("thumb");
  app.accelerated_labels.erase("photo");
  return app;
}

std::vector<AppSpec> make_all_apps() {
  return {make_wish(), make_geek(), make_doordash(), make_purpleocean(), make_postmates()};
}

}  // namespace appx::apps
