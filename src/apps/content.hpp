// Deterministic content derivation for the simulated origin servers.
//
// Real origins serve databases we do not have; instead every response value
// is a pure function of (endpoint, seed, index, epoch). Determinism is what
// makes the end-to-end property testable: a prefetched response and the
// response the client would have fetched are byte-identical, and dependency
// values the client extracts match the ones the proxy learned. The `epoch`
// models content churn (feeds rotating, prices changing) for expiration
// experiments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "apps/spec.hpp"

namespace appx::apps {

// Value for a ProducesSpec at element `index`.
std::string derive_value(ProducesSpec::Kind kind, std::string_view endpoint_label,
                         std::string_view seed, std::size_t index, std::uint64_t epoch);

}  // namespace appx::apps
