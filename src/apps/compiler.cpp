#include "apps/compiler.hpp"

#include <map>

#include "util/error.hpp"

namespace appx::apps {

namespace {

using ir::MethodBuilder;
using ir::Program;
using ir::Reg;

std::string intent_key(const EndpointSpec& succ, const FieldSpec& field) {
  return "dep." + succ.label + "." + field.name;
}

// Emit the request-building body of an endpoint. Dependency values arrive as
// parameters in dep-field order.
void emit_builder_body(MethodBuilder& b, const EndpointSpec& ep) {
  // Exercise both common URL-building idioms: StringBuilder-style concat on
  // GETs, String.format on POSTs. The analysis must handle either.
  const Reg url =
      ep.method == "POST"
          ? b.format("https://%s" + ep.path, {b.env(ep.host_env)})
          : b.concat({b.const_str("https://"), b.env(ep.host_env), b.const_str(ep.path)});
  const Reg req = b.http_new();
  b.http_method(req, ep.method);
  b.http_url(req, url);

  std::int32_t dep_index = 0;
  for (const FieldSpec& f : ep.fields) {
    if (f.conditional) b.if_env(f.cond_env);
    Reg value = ir::kNoReg;
    switch (f.value.kind) {
      case ValueSpec::Kind::kConst: value = b.const_str(f.value.text); break;
      case ValueSpec::Kind::kEnv: value = b.env(f.value.text); break;
      case ValueSpec::Kind::kDep: value = b.param(dep_index++); break;
      case ValueSpec::Kind::kNonce: value = b.env("nonce"); break;
    }
    switch (f.loc) {
      case core::FieldLocation::kQuery: b.http_query(req, f.name, value); break;
      case core::FieldLocation::kHeader: b.http_header(req, f.name, value); break;
      case core::FieldLocation::kBody: b.http_body(req, f.name, value); break;
    }
    if (f.conditional) b.end_if();
  }
  const Reg resp = b.http_send(req, ep.label, ep.opaque ? "opaque" : "json");
  b.ret(resp);
}

}  // namespace

std::string build_method_name(const AppSpec& spec, const EndpointSpec& ep) {
  return spec.package + "." + ep.label + ".build";
}

std::string open_method_name(const AppSpec& spec, const EndpointSpec& ep) {
  return spec.package + "." + ep.label + ".open";
}

std::string on_item_method_name(const AppSpec& spec, const EndpointSpec& ep) {
  return spec.package + "." + ep.label + ".onItem";
}

std::string main_method_name(const AppSpec& spec) { return spec.package + ".main"; }

ir::Program compile_app(const AppSpec& spec) {
  spec.validate();
  Program program;
  program.app = spec.package;

  for (const EndpointSpec& ep : spec.endpoints) {
    // The builder itself: one parameter per dependency field.
    const auto deps = ep.dep_fields();
    MethodBuilder builder(build_method_name(spec, ep),
                          static_cast<std::int32_t>(deps.size()));
    emit_builder_body(builder, ep);
    ir::Method method = builder.build();

    // emit_builder_body ends with `ret resp`; drop the ret, add the
    // successor glue against the response register, then re-add the ret.
    const ir::Instruction ret_instr = method.code.back();
    method.code.pop_back();
    const Reg resp = ret_instr.a;

    // Re-open a MethodBuilder-like context: we append instructions manually
    // through a throwaway builder is awkward, so extend the method in place
    // with a small emitter.
    std::int32_t next_reg = method.reg_count;
    const auto fresh = [&next_reg]() { return next_reg++; };
    const auto emit = [&method](ir::Instruction instr) { method.code.push_back(std::move(instr)); };
    const auto emit_json_get = [&](Reg src, const std::string& path) {
      const Reg dst = fresh();
      emit({ir::OpCode::kJsonGet, dst, src, ir::kNoReg, path, "", {}});
      return dst;
    };

    if (!ep.opaque) {
      for (const EndpointSpec* succ : spec.successors_of(ep.label)) {
        std::vector<const FieldSpec*> fields_from_here;
        for (const FieldSpec* f : succ->dep_fields()) {
          if (f->value.dep_endpoint == ep.label) fields_from_here.push_back(f);
        }
        switch (succ->route) {
          case DepRoute::kDirect: {
            std::vector<Reg> args;
            for (const FieldSpec* f : fields_from_here) {
              args.push_back(emit_json_get(resp, f->value.dep_path));
            }
            const Reg dst = fresh();
            emit({ir::OpCode::kInvoke, dst, ir::kNoReg, ir::kNoReg,
                  build_method_name(spec, *succ), "", std::move(args)});
            break;
          }
          case DepRoute::kIntent: {
            for (const FieldSpec* f : fields_from_here) {
              const Reg v = emit_json_get(resp, f->value.dep_path);
              emit({ir::OpCode::kIntentPut, ir::kNoReg, v, ir::kNoReg, intent_key(*succ, *f),
                    "", {}});
            }
            break;
          }
          case DepRoute::kRxFlatMap: {
            const FieldSpec* f = fields_from_here.front();
            std::string prefix, remainder;
            split_wildcard_path(f->value.dep_path, prefix, remainder);
            const Reg elems = emit_json_get(resp, prefix);
            const Reg dst = fresh();
            emit({ir::OpCode::kRxFlatMap, dst, elems, ir::kNoReg,
                  on_item_method_name(spec, *succ), "", {}});
            break;
          }
          case DepRoute::kHeapChain: {
            std::vector<Reg> args;
            for (const FieldSpec* f : fields_from_here) {
              // Post-move alias write: only alias-aware analysis tracks it.
              const Reg holder = fresh();
              emit({ir::OpCode::kNewObject, holder, ir::kNoReg, ir::kNoReg, "Holder", "", {}});
              const Reg alias = fresh();
              emit({ir::OpCode::kMove, alias, holder, ir::kNoReg, "", "", {}});
              const Reg v = emit_json_get(resp, f->value.dep_path);
              emit({ir::OpCode::kPutField, ir::kNoReg, holder, v, "v", "", {}});
              const Reg out = fresh();
              emit({ir::OpCode::kGetField, out, alias, ir::kNoReg, "v", "", {}});
              args.push_back(out);
            }
            const Reg dst = fresh();
            emit({ir::OpCode::kInvoke, dst, ir::kNoReg, ir::kNoReg,
                  build_method_name(spec, *succ), "", std::move(args)});
            break;
          }
        }
      }
    }

    method.code.push_back(ret_instr);
    method.reg_count = next_reg;
    program.methods.push_back(std::move(method));

    // Companion methods depending on the endpoint's own route.
    if (ep.route == DepRoute::kRxFlatMap && !deps.empty()) {
      std::string prefix, remainder;
      split_wildcard_path(deps.front()->value.dep_path, prefix, remainder);
      MethodBuilder on_item(on_item_method_name(spec, ep), 1);
      Reg v = on_item.param(0);
      if (!remainder.empty()) v = on_item.json_get(v, remainder);
      on_item.invoke(build_method_name(spec, ep), {v});
      program.methods.push_back(on_item.build());
    }
    if (ep.route == DepRoute::kIntent && !deps.empty()) {
      MethodBuilder opener(open_method_name(spec, ep));
      std::vector<Reg> args;
      for (const FieldSpec* f : deps) args.push_back(opener.intent_get(intent_key(ep, *f)));
      opener.invoke(build_method_name(spec, ep), std::move(args));
      program.methods.push_back(opener.build());
    }
  }

  // Entry points: the app main (launch path roots) plus every Intent opener
  // (activities started by the framework).
  MethodBuilder main_builder(main_method_name(spec));
  for (const EndpointSpec* root : spec.roots()) {
    main_builder.invoke(build_method_name(spec, *root), {});
  }
  program.methods.push_back(main_builder.build());
  program.entry_points.push_back(main_method_name(spec));
  for (const EndpointSpec& ep : spec.endpoints) {
    if (ep.route == DepRoute::kIntent && ep.has_dep_fields()) {
      program.entry_points.push_back(open_method_name(spec, ep));
    }
  }
  return program;
}

}  // namespace appx::apps
