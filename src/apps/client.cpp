#include "apps/client.hpp"

#include <memory>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace appx::apps {

ClientEnv ClientEnv::for_user(const AppSpec& spec, const std::string& user_id) {
  ClientEnv env;
  env.values = spec.env_defaults;
  env.flags = spec.env_flags;
  env.values["cookie"] = "sid_" + short_digest(spec.package + "|" + user_id, 10);
  env.values["device_id"] = "dev_" + short_digest("device|" + user_id, 10);
  return env;
}

AppClient::AppClient(const AppSpec* spec, ClientEnv env, sim::Simulator* sim,
                     Transport transport, double jitter)
    : spec_(spec),
      env_(std::move(env)),
      sim_(sim),
      transport_(std::move(transport)),
      jitter_(jitter),
      rng_(fnv1a(env_.values.contains("cookie") ? env_.values.at("cookie") : "anon")) {
  if (spec == nullptr) throw InvalidArgumentError("AppClient: null spec");
  if (sim == nullptr) throw InvalidArgumentError("AppClient: null simulator");
  if (!transport_) throw InvalidArgumentError("AppClient: null transport");
  if (jitter < 0 || jitter >= 1) throw InvalidArgumentError("AppClient: jitter outside [0,1)");
}

Duration AppClient::jittered(Duration base) {
  if (jitter_ <= 0 || base <= 0) return base;
  return static_cast<Duration>(static_cast<double>(base) *
                               rng_.uniform(1.0 - jitter_, 1.0 + jitter_));
}

const json::Value* AppClient::last_response(const std::string& endpoint_label) const {
  const auto it = responses_.find(endpoint_label);
  return it == responses_.end() ? nullptr : &it->second;
}

std::optional<std::string> AppClient::resolve_dep(const ValueSpec& value,
                                                  std::size_t element_index) const {
  const json::Value* body = last_response(value.dep_endpoint);
  if (body == nullptr) return std::nullopt;
  std::string concrete_path = value.dep_path;
  const std::size_t wild = concrete_path.find("[*]");
  if (wild != std::string::npos) {
    concrete_path.replace(wild, 3, "[" + std::to_string(element_index) + "]");
  }
  const json::Value* node = json::Path(concrete_path).resolve_first(*body);
  if (node == nullptr || node->is_array() || node->is_object()) return std::nullopt;
  return node->scalar_to_string();
}

std::optional<http::Request> AppClient::build_request(const EndpointSpec& ep,
                                                      std::size_t element_index) const {
  http::Request req;
  req.method = ep.method;
  req.uri.scheme = "https";
  req.uri.host = ep.host;
  req.uri.path = ep.path;

  http::FormFields body_fields;
  for (const FieldSpec& f : ep.fields) {
    if (f.conditional && !env_.flags.contains(f.cond_env)) continue;
    std::string value;
    switch (f.value.kind) {
      case ValueSpec::Kind::kConst:
        value = f.value.text;
        break;
      case ValueSpec::Kind::kEnv: {
        const auto it = env_.values.find(f.value.text);
        if (it == env_.values.end()) {
          throw InvalidStateError("AppClient: env value '" + f.value.text +
                                  "' missing for endpoint " + ep.label);
        }
        value = it->second;
        break;
      }
      case ValueSpec::Kind::kDep: {
        const auto resolved = resolve_dep(f.value, element_index);
        if (!resolved) return std::nullopt;
        value = *resolved;
        break;
      }
      case ValueSpec::Kind::kNonce:
        value = "nc_" + short_digest(env_.values.at("cookie") + "|" +
                                     std::to_string(nonce_counter_++), 10);
        break;
    }
    switch (f.loc) {
      case core::FieldLocation::kQuery: req.uri.add_query_param(f.name, value); break;
      case core::FieldLocation::kHeader: req.headers.add(f.name, value); break;
      case core::FieldLocation::kBody: body_fields.emplace_back(f.name, value); break;
    }
  }
  if (!body_fields.empty()) req.set_form_fields(body_fields);
  return req;
}

std::size_t AppClient::available_elements(const EndpointSpec& ep) const {
  for (const FieldSpec* f : ep.dep_fields()) {
    std::string prefix, remainder;
    if (!split_wildcard_path(f->value.dep_path, prefix, remainder)) continue;
    const json::Value* body = last_response(f->value.dep_endpoint);
    if (body == nullptr) return 0;
    const json::Value* list = json::Path(prefix).resolve_first(*body);
    return (list != nullptr && list->is_array()) ? list->size() : 0;
  }
  return 0;
}

bool AppClient::can_run(const std::string& interaction, std::size_t selection) const {
  const Interaction& it = spec_->interaction(interaction);
  std::set<std::string> will_have;
  for (const auto& wave : it.waves) {
    for (const WaveStep& step : wave) {
      const EndpointSpec& ep = spec_->endpoint(step.endpoint);
      for (const FieldSpec* f : ep.dep_fields()) {
        const std::string& pred_label = f->value.dep_endpoint;
        const bool fetched = responses_.contains(pred_label);
        const bool earlier_in_interaction = will_have.contains(pred_label);
        if (!fetched && !earlier_in_interaction) return false;
        std::string prefix, remainder;
        const bool wildcard = split_wildcard_path(f->value.dep_path, prefix, remainder);
        if (wildcard && !step.per_element && fetched && !earlier_in_interaction) {
          // Selection must be within the already-fetched list.
          if (selection >= available_elements(ep)) return false;
        }
        if (wildcard && earlier_in_interaction && !fetched) {
          const EndpointSpec& pred = spec_->endpoint(pred_label);
          if (!step.per_element && selection >= static_cast<std::size_t>(pred.list_count)) {
            return false;
          }
        }
      }
    }
    for (const WaveStep& step : wave) will_have.insert(step.endpoint);
  }
  return true;
}

struct AppClient::RunState {
  const Interaction* interaction = nullptr;
  std::size_t selection = 0;
  std::size_t wave_index = 0;
  SimTime started_at = 0;
  SimTime wave_started_at = 0;
  Duration network = 0;
  std::size_t outstanding = 0;
  InteractionResult result;
  DoneFn done;
};

void AppClient::run_interaction(const std::string& interaction, std::size_t selection,
                                DoneFn done) {
  auto run = std::make_shared<RunState>();
  run->interaction = &spec_->interaction(interaction);
  run->selection = selection;
  run->started_at = sim_->now();
  run->result.interaction = interaction;
  run->done = std::move(done);
  sim_->schedule(jittered(run->interaction->pre_delay), [this, run] { start_wave(run); });
}

void AppClient::start_wave(std::shared_ptr<RunState> run) {
  if (run->wave_index >= run->interaction->waves.size()) {
    // All waves done: render, then report.
    sim_->schedule(jittered(run->interaction->render_delay), [this, run] {
      run->result.total = sim_->now() - run->started_at;
      run->result.network = run->network;
      run->result.processing = run->result.total - run->result.network;
      run->done(run->result);
    });
    return;
  }

  const auto& wave = run->interaction->waves[run->wave_index];
  run->wave_started_at = sim_->now();

  // Materialise every request of the wave up front.
  std::vector<std::pair<const EndpointSpec*, http::Request>> to_send;
  for (const WaveStep& step : wave) {
    const EndpointSpec& ep = spec_->endpoint(step.endpoint);
    if (step.per_element) {
      std::size_t n = available_elements(ep);
      if (step.max_elements > 0) n = std::min(n, static_cast<std::size_t>(step.max_elements));
      for (std::size_t i = 0; i < n; ++i) {
        if (auto req = build_request(ep, i)) to_send.emplace_back(&ep, std::move(*req));
      }
    } else {
      if (auto req = build_request(ep, run->selection)) {
        to_send.emplace_back(&ep, std::move(*req));
      } else {
        log_debug("client") << spec_->name << ": cannot build " << ep.label
                            << " (dependency unavailable)";
        run->result.ok = false;
      }
    }
  }

  if (to_send.empty()) {
    // Nothing issuable in this wave: move on.
    ++run->wave_index;
    start_wave(run);
    return;
  }

  run->outstanding = to_send.size();
  run->result.requests += to_send.size();
  for (auto& [ep, req] : to_send) {
    const std::string label = ep->label;
    const bool opaque = ep->opaque;
    transport_(std::move(req), [this, run, label, opaque](http::Response resp) {
      if (!opaque && resp.ok() && !resp.body.empty()) {
        try {
          responses_[label] = json::parse(resp.body);
        } catch (const ParseError&) {
          log_warn("client") << "unparsable response for " << label;
        }
      }
      if (!resp.ok()) run->result.ok = false;
      if (--run->outstanding == 0) {
        run->network += sim_->now() - run->wave_started_at;
        ++run->wave_index;
        start_wave(run);
      }
    });
  }
}

}  // namespace appx::apps
