// Declarative model of a mobile app's network behaviour.
//
// The paper evaluates five commercial Google Play apps; we cannot ship
// those, so each evaluation app is described by an AppSpec sized from the
// paper's measurements (endpoint counts, dependency fan-out and chain depth
// from Table 3; payload sizes and origin RTTs from Table 2 / §6.2). One spec
// is the single source of truth for three artefacts:
//
//   * the SAPK binary (apps/compiler) that static analysis consumes,
//   * the origin-server behaviour (apps/server) with deterministic content,
//   * the client interaction engine (apps/client) that generates the very
//     traffic the signatures describe.
//
// Because all three derive from the same spec, the reproduction has the same
// property as the real system: if the analysis is correct, prefetch requests
// are byte-identical to what the app sends.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/signature.hpp"
#include "util/units.hpp"

namespace appx::apps {

// Where a request field's value comes from.
struct ValueSpec {
  enum class Kind { kConst, kEnv, kDep, kNonce };
  Kind kind = Kind::kConst;
  std::string text;          // const value, or env variable name
  std::string dep_endpoint;  // kDep: predecessor endpoint label
  std::string dep_path;      // kDep: JSON path into the predecessor response

  static ValueSpec constant(std::string value);
  static ValueSpec env(std::string name);
  static ValueSpec dep(std::string endpoint, std::string path);
  // A fresh per-request value (anti-replay token). To the static analysis it
  // is just a run-time value; at run time a *reused* nonce is rejected by the
  // origin — the class of side-effectful requests §4.3's verification phase
  // must catch and disable.
  static ValueSpec nonce();
};

struct FieldSpec {
  core::FieldLocation loc = core::FieldLocation::kBody;
  std::string name;
  ValueSpec value;
  bool conditional = false;  // included only when cond_env flag is set
  std::string cond_env;
};

// How dependency values travel to this endpoint's request builder in the
// generated IR. Purely an analysis-difficulty knob: runtime behaviour is
// identical. Mirrors the paper's three Extractocol extensions.
enum class DepRoute { kDirect, kIntent, kRxFlatMap, kHeapChain };

// A JSON field the endpoint's response carries.
struct ProducesSpec {
  enum class Kind { kId, kName, kNumber, kText, kUrl };
  std::string path;  // "data.products[*].product_info.id"
  Kind kind = Kind::kId;
  // kUrl: the emitted value is url_base + <the kId value of this element>,
  // e.g. "https://img.wish.example/thumb?cid=" + id — the embedded absolute
  // URLs real feeds carry (and all that URL-scanning prefetchers can use).
  std::string url_base;
};

struct EndpointSpec {
  std::string label;  // unique within the app, e.g. "wish.feed"
  std::string method = "GET";
  std::string host;      // runtime host, e.g. "api.wish.example"
  std::string host_env;  // env key naming the host in the IR ("api_host")
  std::string path;      // literal URI path
  std::vector<FieldSpec> fields;
  DepRoute route = DepRoute::kDirect;

  // Response model.
  std::string seed_field;  // request field whose value seeds content ("" = static)
  bool opaque = false;     // image/video payload instead of JSON
  Bytes opaque_size = 0;
  Bytes json_padding = 0;  // filler to approximate real payload sizes
  int list_count = 0;      // element count for [*] producers
  std::vector<ProducesSpec> produces;
  Duration proc_delay = milliseconds(10);  // server-side processing time
  // Content churn period: the origin's content for this endpoint changes
  // every content_ttl of simulated time (drives expiration estimation).
  Duration content_ttl = minutes(30);
  // Requires a never-before-seen nonce field value; replays get 403.
  bool requires_nonce = false;

  bool has_dep_fields() const;
  std::vector<const FieldSpec*> dep_fields() const;
};

// One synchronous round of parallel requests within an interaction.
struct WaveStep {
  std::string endpoint;
  // One request per element of the endpoint's dependency list (thumbnails)
  // instead of a single request for the currently selected element.
  bool per_element = false;
  int max_elements = 0;  // cap for per_element (0 = all)
};

struct Interaction {
  std::string name;
  enum class Trigger { kUi, kBackground, kServerPush } trigger = Trigger::kUi;
  double fuzz_weight = 1.0;  // relative pick probability under UI fuzzing
  double user_weight = 1.0;  // relative pick probability in user traces
  std::vector<std::vector<WaveStep>> waves;  // serial waves (render barriers)
  Duration pre_delay = milliseconds(60);     // input handling, sensor wake-up
  Duration render_delay = milliseconds(150);
};

struct AppSpec {
  std::string package;   // "com.wish.app"
  std::string name;      // "Wish"
  std::string category;  // Table 1
  std::string main_interaction_desc;
  std::string main_interaction;  // Interaction name
  // Proxy<->origin RTT per host (Table 2); hosts absent here use default_rtt.
  std::map<std::string, Duration> host_rtt;
  Duration default_rtt = milliseconds(100);
  // Proxy<->origin bottleneck bandwidth (bits/s); per-host overrides for
  // CDN paths that peer close to the proxy.
  double origin_bw = mbps(25);
  std::map<std::string, double> host_bw;

  double bw_for_host(const std::string& host) const;
  std::vector<EndpointSpec> endpoints;
  std::vector<Interaction> interactions;
  // Run-time environment defaults (host values, client version, flags).
  std::map<std::string, std::string> env_defaults;
  std::set<std::string> env_flags;  // set conditional-inclusion flags
  // The service provider's prefetching choice (paper §4.4): endpoint labels
  // whose signatures the deployed proxy configuration enables.
  std::set<std::string> accelerated_labels;

  const EndpointSpec& endpoint(std::string_view label) const;
  const EndpointSpec* find_endpoint(std::string_view label) const;
  const Interaction& interaction(std::string_view name) const;

  Duration rtt_for_host(const std::string& host) const;

  // Endpoints whose fields depend on `label`'s response.
  std::vector<const EndpointSpec*> successors_of(std::string_view label) const;
  // Endpoints with no dependency fields (interaction roots).
  std::vector<const EndpointSpec*> roots() const;

  // Sanity checks: unique labels, dep references resolve, multi-predecessor
  // successors use the Intent route, interactions reference real endpoints.
  // Throws InvalidArgumentError on violations.
  void validate() const;
};

// Split a JSON path at its first "[*]": "a.b[*].c" -> ("a.b", "c").
// Returns false when the path has no wildcard.
bool split_wildcard_path(std::string_view path, std::string& prefix, std::string& remainder);

}  // namespace appx::apps
