// Compile an AppSpec into a SAPK program (the app "binary").
//
// The generated IR reproduces, per endpoint, the code shapes real apps use
// and the paper's analysis must untangle: URL concatenation from an
// environment host, conditional body fields behind branches, and — per the
// endpoint's DepRoute — dependency values delivered directly, through
// Intents, through RxAndroid flatMap chains, or through aliased heap
// objects.
#pragma once

#include "apps/spec.hpp"
#include "ir/program.hpp"

namespace appx::apps {

ir::Program compile_app(const AppSpec& spec);

// Method-name helpers (shared with tests).
std::string build_method_name(const AppSpec& spec, const EndpointSpec& ep);
std::string open_method_name(const AppSpec& spec, const EndpointSpec& ep);
std::string on_item_method_name(const AppSpec& spec, const EndpointSpec& ep);
std::string main_method_name(const AppSpec& spec);

}  // namespace appx::apps
