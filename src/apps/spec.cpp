#include "apps/spec.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace appx::apps {

ValueSpec ValueSpec::constant(std::string value) {
  ValueSpec v;
  v.kind = Kind::kConst;
  v.text = std::move(value);
  return v;
}

ValueSpec ValueSpec::env(std::string name) {
  ValueSpec v;
  v.kind = Kind::kEnv;
  v.text = std::move(name);
  return v;
}

ValueSpec ValueSpec::dep(std::string endpoint, std::string path) {
  ValueSpec v;
  v.kind = Kind::kDep;
  v.dep_endpoint = std::move(endpoint);
  v.dep_path = std::move(path);
  return v;
}

ValueSpec ValueSpec::nonce() {
  ValueSpec v;
  v.kind = Kind::kNonce;
  return v;
}

bool EndpointSpec::has_dep_fields() const {
  return std::any_of(fields.begin(), fields.end(),
                     [](const FieldSpec& f) { return f.value.kind == ValueSpec::Kind::kDep; });
}

std::vector<const FieldSpec*> EndpointSpec::dep_fields() const {
  std::vector<const FieldSpec*> out;
  for (const FieldSpec& f : fields) {
    if (f.value.kind == ValueSpec::Kind::kDep) out.push_back(&f);
  }
  return out;
}

const EndpointSpec& AppSpec::endpoint(std::string_view label) const {
  const EndpointSpec* ep = find_endpoint(label);
  if (ep == nullptr) {
    throw NotFoundError("AppSpec " + name + ": no endpoint " + std::string(label));
  }
  return *ep;
}

const EndpointSpec* AppSpec::find_endpoint(std::string_view label) const {
  for (const EndpointSpec& ep : endpoints) {
    if (ep.label == label) return &ep;
  }
  return nullptr;
}

const Interaction& AppSpec::interaction(std::string_view name_) const {
  for (const Interaction& it : interactions) {
    if (it.name == name_) return it;
  }
  throw NotFoundError("AppSpec " + name + ": no interaction " + std::string(name_));
}

Duration AppSpec::rtt_for_host(const std::string& host) const {
  const auto it = host_rtt.find(host);
  return it == host_rtt.end() ? default_rtt : it->second;
}

double AppSpec::bw_for_host(const std::string& host) const {
  const auto it = host_bw.find(host);
  return it == host_bw.end() ? origin_bw : it->second;
}

std::vector<const EndpointSpec*> AppSpec::successors_of(std::string_view label) const {
  std::vector<const EndpointSpec*> out;
  for (const EndpointSpec& ep : endpoints) {
    const auto deps = ep.dep_fields();
    if (std::any_of(deps.begin(), deps.end(),
                    [&](const FieldSpec* f) { return f->value.dep_endpoint == label; })) {
      out.push_back(&ep);
    }
  }
  return out;
}

std::vector<const EndpointSpec*> AppSpec::roots() const {
  std::vector<const EndpointSpec*> out;
  for (const EndpointSpec& ep : endpoints) {
    if (!ep.has_dep_fields()) out.push_back(&ep);
  }
  return out;
}

void AppSpec::validate() const {
  std::set<std::string> labels;
  for (const EndpointSpec& ep : endpoints) {
    if (!labels.insert(ep.label).second) {
      throw InvalidArgumentError("AppSpec " + name + ": duplicate endpoint label " + ep.label);
    }
    if (ep.path.empty() || ep.path[0] != '/') {
      throw InvalidArgumentError("AppSpec " + name + ": endpoint " + ep.label +
                                 " path must start with '/'");
    }
    if (ep.host.empty() || ep.host_env.empty()) {
      throw InvalidArgumentError("AppSpec " + name + ": endpoint " + ep.label +
                                 " needs host and host_env");
    }
  }
  for (const EndpointSpec& ep : endpoints) {
    std::set<std::string> preds;
    for (const FieldSpec* f : ep.dep_fields()) {
      if (find_endpoint(f->value.dep_endpoint) == nullptr) {
        throw InvalidArgumentError("AppSpec " + name + ": endpoint " + ep.label +
                                   " depends on unknown endpoint " + f->value.dep_endpoint);
      }
      json::Path(f->value.dep_path);  // validates syntax
      preds.insert(f->value.dep_endpoint);
      // The predecessor must actually produce the referenced path.
      const EndpointSpec& pred = endpoint(f->value.dep_endpoint);
      const bool produced = std::any_of(
          pred.produces.begin(), pred.produces.end(),
          [&](const ProducesSpec& p) { return p.path == f->value.dep_path; });
      if (!produced) {
        throw InvalidArgumentError("AppSpec " + name + ": " + ep.label + " reads path '" +
                                   f->value.dep_path + "' that " + pred.label +
                                   " does not produce");
      }
    }
    if (preds.size() > 1 && ep.route != DepRoute::kIntent) {
      throw InvalidArgumentError("AppSpec " + name + ": endpoint " + ep.label +
                                 " has multiple predecessors; it must use DepRoute::kIntent");
    }
    if (ep.route == DepRoute::kRxFlatMap) {
      const auto deps = ep.dep_fields();
      std::string prefix, remainder;
      if (deps.size() != 1 || !split_wildcard_path(deps[0]->value.dep_path, prefix, remainder)) {
        throw InvalidArgumentError("AppSpec " + name + ": endpoint " + ep.label +
                                   " with RxFlatMap route needs exactly one [*] dep field");
      }
    }
  }
  std::set<std::string> interaction_names;
  for (const Interaction& it : interactions) {
    if (!interaction_names.insert(it.name).second) {
      throw InvalidArgumentError("AppSpec " + name + ": duplicate interaction " + it.name);
    }
    for (const auto& wave : it.waves) {
      for (const WaveStep& step : wave) {
        if (find_endpoint(step.endpoint) == nullptr) {
          throw InvalidArgumentError("AppSpec " + name + ": interaction " + it.name +
                                     " references unknown endpoint " + step.endpoint);
        }
      }
    }
  }
  if (!main_interaction.empty()) interaction(main_interaction);
}

bool split_wildcard_path(std::string_view path, std::string& prefix, std::string& remainder) {
  const std::size_t pos = path.find("[*]");
  if (pos == std::string_view::npos) return false;
  prefix = std::string(path.substr(0, pos));
  std::string_view rest = path.substr(pos + 3);
  if (!rest.empty() && rest.front() == '.') rest.remove_prefix(1);
  remainder = std::string(rest);
  return true;
}

}  // namespace appx::apps
