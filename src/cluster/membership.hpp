// Node-local cluster membership: a static JSON node list plus a generation
// number.
//
// There is deliberately no consensus here (DESIGN.md §5k): every node reads
// the same membership file at startup, builds the same Ring, and routes
// identically. Rollouts bump `generation` and rewrite the file; a node
// refuses to import user shards stamped with a *newer* generation than its
// own so a half-rolled fleet cannot silently split the keyspace.
//
//   {"generation": 3,
//    "nodes": [{"name": "n0", "host": "127.0.0.1", "port": 7100},
//              {"name": "n1", "host": "127.0.0.1", "port": 7101}]}
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/ring.hpp"

namespace appx::cluster {

struct MemberNode {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
};

class Membership {
 public:
  // Parse/validate the JSON form above. Throws ParseError on malformed JSON
  // and InvalidArgumentError on structural problems (no nodes, duplicate or
  // empty names, missing fields).
  static Membership parse(std::string_view json_text);
  // Read + parse a membership file. Throws IoError when unreadable.
  static Membership load(const std::string& path);

  Membership() = default;

  std::string dump() const;  // canonical JSON (round-trips through parse)

  std::uint64_t generation() const { return generation_; }
  const std::vector<MemberNode>& nodes() const { return nodes_; }
  // nullptr when no node has this name.
  const MemberNode* find(std::string_view name) const;

  // The routing ring over this membership's node names.
  Ring ring(std::size_t vnodes = Ring::kDefaultVnodes) const;

 private:
  std::uint64_t generation_ = 0;
  std::vector<MemberNode> nodes_;
};

}  // namespace appx::cluster
