#include "cluster/membership.hpp"

#include <unordered_set>

#include "json/json.hpp"
#include "util/byte_io.hpp"
#include "util/error.hpp"

namespace appx::cluster {

Membership Membership::parse(std::string_view json_text) {
  const json::Value doc = json::parse(json_text);
  if (!doc.is_object()) throw InvalidArgumentError("Membership: document is not an object");
  Membership m;
  const json::Value* gen = doc.find("generation");
  if (gen == nullptr || !gen->is_int() || gen->as_int() < 0) {
    throw InvalidArgumentError("Membership: missing or invalid generation");
  }
  m.generation_ = static_cast<std::uint64_t>(gen->as_int());
  const json::Value* nodes = doc.find("nodes");
  if (nodes == nullptr || !nodes->is_array() || nodes->size() == 0) {
    throw InvalidArgumentError("Membership: missing or empty nodes list");
  }
  std::unordered_set<std::string_view> seen;
  for (std::size_t i = 0; i < nodes->size(); ++i) {
    const json::Value& entry = nodes->at(i);
    if (!entry.is_object()) throw InvalidArgumentError("Membership: node is not an object");
    MemberNode node;
    const json::Value* name = entry.find("name");
    const json::Value* host = entry.find("host");
    const json::Value* port = entry.find("port");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      throw InvalidArgumentError("Membership: node without a name");
    }
    if (host == nullptr || !host->is_string() || host->as_string().empty()) {
      throw InvalidArgumentError("Membership: node without a host");
    }
    if (port == nullptr || !port->is_int() || port->as_int() < 0 || port->as_int() > 65535) {
      throw InvalidArgumentError("Membership: node without a valid port");
    }
    node.name = name->as_string();
    node.host = host->as_string();
    node.port = static_cast<std::uint16_t>(port->as_int());
    m.nodes_.push_back(std::move(node));
  }
  for (const MemberNode& node : m.nodes_) {
    if (!seen.insert(node.name).second) {
      throw InvalidArgumentError("Membership: duplicate node name: " + node.name);
    }
  }
  return m;
}

Membership Membership::load(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  return parse(std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

std::string Membership::dump() const {
  json::Array nodes;
  for (const MemberNode& node : nodes_) {
    json::Object entry;
    entry.emplace("name", node.name);
    entry.emplace("host", node.host);
    entry.emplace("port", static_cast<std::int64_t>(node.port));
    nodes.push_back(json::Value(std::move(entry)));
  }
  json::Object doc;
  doc.emplace("generation", static_cast<std::int64_t>(generation_));
  doc.emplace("nodes", json::Value(std::move(nodes)));
  return json::Value(std::move(doc)).dump(2);
}

const MemberNode* Membership::find(std::string_view name) const {
  for (const MemberNode& node : nodes_) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

Ring Membership::ring(std::size_t vnodes) const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const MemberNode& node : nodes_) names.push_back(node.name);
  return Ring(std::move(names), vnodes);
}

}  // namespace appx::cluster
