#include "cluster/ring.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace appx::cluster {

namespace {

// FNV-1a's high bits barely avalanche on short strings ("n0#12", "user-7"),
// which leaves whole arcs of the circle owned by one node. A splitmix64-style
// finalizer on top restores uniformity without giving up FNV's stability.
std::uint64_t mix(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

std::uint64_t ring_hash(std::string_view key) { return mix(fnv1a(key)); }

}  // namespace

Ring::Ring(std::vector<std::string> nodes, std::size_t vnodes)
    : nodes_(std::move(nodes)), vnodes_(vnodes) {
  if (vnodes_ == 0) throw InvalidArgumentError("Ring: vnodes must be positive");
  std::unordered_set<std::string_view> seen;
  for (const std::string& node : nodes_) {
    if (node.empty()) throw InvalidArgumentError("Ring: empty node name");
    if (!seen.insert(node).second) {
      throw InvalidArgumentError("Ring: duplicate node name: " + node);
    }
  }
  points_.reserve(nodes_.size() * vnodes_);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    // Each replica hashes "name#i": replicas of one node scatter over the
    // circle, so its keyspace share is ~uniform and its departure spreads
    // users over all survivors instead of dumping them on one neighbour.
    for (std::size_t i = 0; i < vnodes_; ++i) {
      points_.push_back({ring_hash(nodes_[n] + '#' + std::to_string(i)), n});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.node < b.node;  // deterministic on (astronomically rare) collisions
  });
}

const std::string& Ring::node_for(std::string_view user) const {
  if (points_.empty()) throw InvalidStateError("Ring: no nodes");
  const std::uint64_t h = ring_hash(user);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t v) { return p.hash < v; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top of the circle
  return nodes_[it->node];
}

Ring Ring::without(std::string_view node) const {
  std::vector<std::string> rest;
  rest.reserve(nodes_.size());
  for (const std::string& n : nodes_) {
    if (n != node) rest.push_back(n);
  }
  return Ring(std::move(rest), vnodes_);
}

const std::string& Ring::successor(std::string_view node, std::string_view user) const {
  if (points_.empty()) throw InvalidStateError("Ring: no nodes");
  const std::uint64_t h = ring_hash(user);
  auto it = std::lower_bound(points_.begin(), points_.end(), h,
                             [](const Point& p, std::uint64_t v) { return p.hash < v; });
  // Walk clockwise past every replica of the departing node; wrap as needed.
  for (std::size_t steps = 0; steps <= points_.size(); ++steps, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (nodes_[it->node] != node) return nodes_[it->node];
  }
  throw InvalidStateError("Ring: no successor (single-node ring)");
}

}  // namespace appx::cluster
