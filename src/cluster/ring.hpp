// Consistent-hash ring: UserId/user-name -> node, stable under membership
// change.
//
// Cluster mode (DESIGN.md §5k) shards users across nodes the same way
// ShardedProxyEngine shards them across cores: by hashing the user name. A
// plain `fnv1a(user) % node_count` would reshuffle almost every user when a
// node joins or leaves; the ring instead places `vnodes` points per node on a
// 64-bit circle and routes each user to the first point clockwise from
// fnv1a(user), so removing one of N nodes moves only ~1/N of the users — and
// every displaced user lands on its successor, which is exactly where the
// draining node hands its exported user shards (see ProxyLike::export_user).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace appx::cluster {

class Ring {
 public:
  static constexpr std::size_t kDefaultVnodes = 64;

  // Node names must be non-empty and unique; throws InvalidArgumentError
  // otherwise. An empty node list is allowed (node_for then throws).
  explicit Ring(std::vector<std::string> nodes, std::size_t vnodes = kDefaultVnodes);
  Ring() = default;

  // The node owning this user. Throws InvalidStateError on an empty ring.
  const std::string& node_for(std::string_view user) const;

  // The ring with `node` removed — route through it to find where each of the
  // draining node's users goes. Unknown names are a no-op copy.
  Ring without(std::string_view node) const;

  // Convenience: where `user` lands once `node` has left the ring. This is
  // the handoff target for that user's exported shard.
  const std::string& successor(std::string_view node, std::string_view user) const;

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<std::string>& nodes() const { return nodes_; }
  std::size_t vnodes() const { return vnodes_; }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t node;  // index into nodes_
  };

  std::vector<std::string> nodes_;
  std::size_t vnodes_ = kDefaultVnodes;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace appx::cluster
