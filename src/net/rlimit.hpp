// RLIMIT_NOFILE management for the high-connection-count runtime.
//
// A proxy (or load generator) holding 10k+ concurrent connections needs one
// descriptor per connection plus epoll/eventfd/listener overhead. The
// default soft limit on most systems (1024) makes such a process die mid-run
// with EMFILE at ~1k connections — long after startup, deep inside an accept
// or connect path. These helpers move the failure to startup: attempt a
// soft-limit raise up to the hard limit, and fail fast with an actionable
// message when the hard limit itself is too low.
#pragma once

#include <cstddef>

#include "util/error.hpp"

namespace appx::net {

struct FdLimits {
  std::size_t soft = 0;
  std::size_t hard = 0;
};

// The process's current RLIMIT_NOFILE. Throws appx::Error if getrlimit fails
// (effectively never on Linux).
FdLimits fd_limits();

// Ensure the soft RLIMIT_NOFILE is at least `needed` descriptors, raising it
// toward the hard limit when necessary. Returns success when the limit
// already sufficed or the raise worked; returns a failure Error naming the
// achievable limit and the fix (`ulimit -n` / privileged hard-limit raise)
// when the hard limit is below `needed`. `needed` == 0 is a no-op success.
util::Error ensure_fd_capacity(std::size_t needed);

}  // namespace appx::net
