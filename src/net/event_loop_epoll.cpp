// Readiness-mode EventLoop backend: one epoll instance, level-triggered fd
// callbacks keyed by (generation, fd) so a stale event queued for a closed
// fd whose number was recycled within the same epoll_wait batch is dropped
// instead of reaching the new handler.
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/event_loop.hpp"
#include "net/syscount.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::net {

namespace {

[[noreturn]] void fail_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

// Events carry (generation, fd) so a stale event for a recycled fd number is
// recognisable; see Handler::gen.
std::uint64_t pack_key(std::uint32_t gen, int fd) {
  return (static_cast<std::uint64_t>(gen) << 32) | static_cast<std::uint32_t>(fd);
}

class EpollEventLoop final : public EventLoop {
 public:
  EpollEventLoop() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) fail_errno("epoll_create1");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = pack_key(/*gen=*/0, wake_fd_);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      const int saved = errno;
      ::close(epoll_fd_);
      errno = saved;
      fail_errno("epoll_ctl(wakeup)");
    }
  }

  ~EpollEventLoop() override {
    handlers_.clear();
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  const char* backend_name() const override { return "epoll"; }

  void add_fd(int fd, std::uint32_t events, FdCallback callback) override {
    auto handler = std::make_shared<Handler>();
    handler->events = events;
    handler->gen = next_gen_++;
    if (next_gen_ == 0) next_gen_ = 1;  // keep 0 reserved for the wakeup fd
    handler->callback = std::move(callback);
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = pack_key(handler->gen, fd);
    sys::count(sys::Op::kCtl);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) fail_errno("epoll_ctl(add)");
    handlers_[fd] = std::move(handler);
    fd_count_.fetch_add(1, std::memory_order_relaxed);
  }

  void mod_fd(int fd, std::uint32_t events) override {
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) return;
    if (it->second->events == events) return;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = pack_key(it->second->gen, fd);
    sys::count(sys::Op::kCtl);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) fail_errno("epoll_ctl(mod)");
    it->second->events = events;
  }

  void del_fd(int fd) override {
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) return;
    // The fd may already be closed (kernel removed it from the set); ignore.
    sys::count(sys::Op::kCtl);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    handlers_.erase(it);
    fd_count_.fetch_sub(1, std::memory_order_relaxed);
  }

  void run() override {
    mark_loop_thread();
    constexpr int kMaxEvents = 64;
    epoll_event events[kMaxEvents];
    while (!stopping()) {
      drain_tasks();
      fire_due_timers();
      if (stopping()) break;
      // arm_sleep() false means tasks/stop raced in after the drain: poll
      // with a zero timeout instead of blocking past them.
      const int timeout = arm_sleep() ? next_timeout_ms() : 0;
      sys::count(sys::Op::kWait);
      const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
      disarm_sleep();
      if (n < 0) {
        if (errno == EINTR) continue;
        fail_errno("epoll_wait");
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t key = events[i].data.u64;
        const int fd = static_cast<int>(key & 0xffffffffULL);
        if (fd == wake_fd_) {
          std::uint64_t counter;
          sys::count(sys::Op::kRead);
          while (::read(wake_fd_, &counter, sizeof counter) > 0) {
          }
          continue;
        }
        const auto it = handlers_.find(fd);
        if (it == handlers_.end()) continue;  // removed by an earlier callback
        // Generation mismatch: the fd closed during this batch and its number
        // was reused by a new registration (e.g. an accept in the same batch).
        // The queued event belongs to the dead registration; drop it.
        if (it->second->gen != static_cast<std::uint32_t>(key >> 32)) continue;
        // Keep the handler alive across the call: the callback may del_fd
        // (closing a connection closes its own registration).
        const std::shared_ptr<Handler> handler = it->second;
        try {
          handler->callback(events[i].events);
        } catch (const std::exception& e) {
          log_error("net.loop") << "fd callback threw: " << e.what();
        }
      }
    }
    // Final drain: tasks queued alongside the stop (e.g. a close-all) run;
    // anything posted later is destroyed by the destructor instead.
    drain_tasks();
    clear_loop_thread();
  }

 private:
  struct Handler {
    std::uint32_t events = 0;
    // Registration generation, stamped into epoll_data alongside the fd.
    std::uint32_t gen = 0;
    FdCallback callback;
  };

  int epoll_fd_ = -1;
  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;
  std::uint32_t next_gen_ = 1;  // 0 is reserved for the wakeup fd
};

}  // namespace

std::unique_ptr<EventLoop> make_epoll_event_loop() {
  return std::make_unique<EpollEventLoop>();
}

}  // namespace appx::net
