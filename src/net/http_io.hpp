// HTTP/1.1 framing over TCP streams: Content-Length based message reading
// and writing for the live proxy/origin servers.
#pragma once

#include <optional>
#include <string>

#include "http/message.hpp"
#include "net/socket.hpp"

namespace appx::net {

// Incremental reader for one connection; handles pipelined messages by
// buffering the residue between calls.
class HttpReader {
 public:
  explicit HttpReader(TcpStream* stream) : stream_(stream) {}

  // Read one complete request. nullopt on orderly EOF at a message boundary;
  // throws ParseError on malformed framing, Error on transport failure.
  std::optional<http::Request> read_request();
  // Same for responses.
  std::optional<http::Response> read_response();

 private:
  // Raw wire text of one message, or nullopt on clean EOF.
  std::optional<std::string> read_message();

  TcpStream* stream_;
  std::string buffer_;
  bool eof_ = false;
};

void write_request(TcpStream& stream, const http::Request& request);
void write_response(TcpStream& stream, const http::Response& response);

}  // namespace appx::net
