// HTTP/1.1 framing over TCP streams: Content-Length based message reading
// and writing for the live proxy/origin servers.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "http/message.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"

namespace appx::net {

// A peer sent a message exceeding the reader's configured size bounds. The
// suggested status lets servers answer before closing: 431 (Request Header
// Fields Too Large) for an oversized head, 413 (Payload Too Large) for an
// oversized body.
class MessageTooLargeError : public ParseError {
 public:
  MessageTooLargeError(const std::string& what, int suggested_status)
      : ParseError(what), suggested_status_(suggested_status) {}
  int suggested_status() const { return suggested_status_; }

 private:
  int suggested_status_;
};

// Bounds on a single message accepted off the wire; 0 = unlimited. Without
// them a misbehaving peer could grow the connection buffer without bound by
// streaming an endless header block or declaring a huge Content-Length.
struct ReaderLimits {
  std::size_t max_head_bytes = 64 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

// Incremental reader for one connection; handles pipelined messages by
// buffering the residue between calls. Consumed bytes are tracked by an
// offset cursor and compacted periodically, so draining a large pipelined
// burst costs O(bytes) instead of O(bytes^2).
class HttpReader {
 public:
  explicit HttpReader(TcpStream* stream, ReaderLimits limits = {})
      : stream_(stream), limits_(limits) {}

  // Read one complete request. nullopt on orderly EOF at a message boundary;
  // throws ParseError on malformed framing (MessageTooLargeError when a size
  // bound is exceeded), Error on transport failure.
  std::optional<http::Request> read_request();
  // Same for responses.
  std::optional<http::Response> read_response();

 private:
  // Compact the buffer once enough consumed bytes have accumulated.
  static constexpr std::size_t kCompactThreshold = 64 * 1024;

  // Raw wire text of one message, or nullopt on clean EOF.
  std::optional<std::string> read_message();

  TcpStream* stream_;
  ReaderLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already returned as messages
  bool eof_ = false;
};

void write_request(TcpStream& stream, const http::Request& request);
void write_response(TcpStream& stream, const http::Response& response);

}  // namespace appx::net
