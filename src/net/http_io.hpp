// HTTP/1.1 framing: Content-Length based message parsing and writing for the
// live proxy/origin servers.
//
// The framing core is HttpParser, a push-based incremental parser: callers
// append() whatever bytes the transport produced and poll next_message() for
// complete messages. It backs both front ends:
//
//   * the epoll reactor feeds it from non-blocking reads (a connection's
//     parser persists across keep-alive requests, so the scratch buffer is
//     reused instead of reallocated per message), and
//   * HttpReader wraps it behind the original blocking pull API for clients,
//     tests and upstream fetches.
//
// next_message() returns a view into the parser's buffer (no per-message
// copy); the view stays valid until the next append()/next_message() call.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"

namespace appx::net {

// A peer sent a message exceeding the reader's configured size bounds. The
// suggested status lets servers answer before closing: 431 (Request Header
// Fields Too Large) for an oversized head, 413 (Payload Too Large) for an
// oversized body.
class MessageTooLargeError : public ParseError {
 public:
  MessageTooLargeError(const std::string& what, int suggested_status)
      : ParseError(what), suggested_status_(suggested_status) {}
  int suggested_status() const { return suggested_status_; }

 private:
  int suggested_status_;
};

// Bounds on a single message accepted off the wire; 0 = unlimited. Without
// them a misbehaving peer could grow the connection buffer without bound by
// streaming an endless header block or declaring a huge Content-Length.
struct ReaderLimits {
  std::size_t max_head_bytes = 64 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

// Incremental HTTP/1.1 message framer for one connection. Handles pipelined
// messages by tracking a consumed-offset cursor compacted periodically, so
// draining a large pipelined burst costs O(bytes) instead of O(bytes^2), and
// one buffer serves every keep-alive message on the connection.
class HttpParser {
 public:
  explicit HttpParser(ReaderLimits limits = {}) : limits_(limits) {}

  // Feed bytes read off the wire. Invalidates the last next_message() view —
  // unless the parser is pinned, in which case the bytes are staged in a side
  // buffer and the view stays valid.
  void append(const char* data, std::size_t n);

  // The next complete message's wire text, or nullopt when more bytes are
  // needed. The view is valid until the next append()/next_message() call.
  // Throws MessageTooLargeError when a size bound is exceeded, ParseError on
  // malformed framing.
  std::optional<std::string_view> next_message();

  // Pin the buffer while a returned message view is in flight (DESIGN.md
  // §5h): between pin() and unpin(), append() neither compacts nor grows the
  // main buffer (new bytes go to an overflow buffer), so views into it —
  // including a RequestView's fields — stay valid even if the event loop
  // reads more bytes (e.g. an EPOLLHUP-driven drain while the request is
  // being processed). unpin() merges the overflow back in.
  void pin() { pinned_ = true; }
  void unpin();
  bool pinned() const { return pinned_; }

  // Bytes buffered but not yet returned as a message (a partial message, or
  // complete pipelined messages not yet polled).
  std::size_t pending_bytes() const { return buffer_.size() - consumed_ + overflow_.size(); }

  // Forget all buffered state (connection reuse for a new peer).
  void reset();

  const ReaderLimits& limits() const { return limits_; }

 private:
  // Compact the buffer once enough consumed bytes have accumulated.
  static constexpr std::size_t kCompactThreshold = 64 * 1024;

  ReaderLimits limits_;
  std::string buffer_;
  std::string overflow_;  // bytes received while pinned, merged on unpin()
  std::size_t consumed_ = 0;  // bytes of buffer_ already returned as messages
  bool pinned_ = false;
};

// Blocking pull reader over a TcpStream: the client-side / upstream-side
// companion of the reactor's push parsing.
class HttpReader {
 public:
  explicit HttpReader(TcpStream* stream, ReaderLimits limits = {})
      : stream_(stream), parser_(limits) {}

  // Read one complete request. nullopt on orderly EOF at a message boundary;
  // throws ParseError on malformed framing (MessageTooLargeError when a size
  // bound is exceeded), Error on transport failure.
  std::optional<http::Request> read_request();
  // Same for responses.
  std::optional<http::Response> read_response();

  // Bytes received beyond the last returned message. A pooled upstream
  // connection with pending residue is not safe to reuse (the origin sent
  // more than one response's worth of bytes).
  std::size_t pending_bytes() const { return parser_.pending_bytes(); }

 private:
  // Raw wire text of one message, or nullopt on clean EOF.
  std::optional<std::string_view> read_message();

  TcpStream* stream_;
  HttpParser parser_;
  bool eof_ = false;
};

// Serialize and send as one iovec batch (head + body, single writev).
void write_request(TcpStream& stream, const http::Request& request);
void write_response(TcpStream& stream, const http::Response& response);

}  // namespace appx::net
