#include "net/rlimit.hpp"

#include <sys/resource.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace appx::net {

namespace {

std::size_t clamp_rlim(rlim_t v) {
  // RLIM_INFINITY is huge; fold it (and anything outsized) into size_t.
  if (v == RLIM_INFINITY) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(v);
}

}  // namespace

FdLimits fd_limits() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    throw Error(std::string("getrlimit(RLIMIT_NOFILE): ") + std::strerror(errno));
  }
  return FdLimits{clamp_rlim(rl.rlim_cur), clamp_rlim(rl.rlim_max)};
}

util::Error ensure_fd_capacity(std::size_t needed) {
  if (needed == 0) return util::Error();
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) {
    return util::Error::failure(std::string("getrlimit(RLIMIT_NOFILE) failed: ") +
                                std::strerror(errno));
  }
  if (rl.rlim_cur != RLIM_INFINITY && clamp_rlim(rl.rlim_cur) < needed) {
    // Raise the soft limit toward the hard limit before giving up: most
    // systems leave soft at 1024 with a much higher hard ceiling, and an
    // unprivileged process may claim it.
    rlimit raised = rl;
    raised.rlim_cur = rl.rlim_max == RLIM_INFINITY || clamp_rlim(rl.rlim_max) >= needed
                          ? static_cast<rlim_t>(needed)
                          : rl.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0) {
      return util::Error::failure("setrlimit(RLIMIT_NOFILE, " +
                                  std::to_string(clamp_rlim(raised.rlim_cur)) +
                                  ") failed: " + std::strerror(errno));
    }
    rl = raised;
  }
  if (rl.rlim_cur != RLIM_INFINITY && clamp_rlim(rl.rlim_cur) < needed) {
    return util::Error::failure(
        "RLIMIT_NOFILE too low: need " + std::to_string(needed) +
        " file descriptors but the hard limit is " + std::to_string(clamp_rlim(rl.rlim_max)) +
        " (soft " + std::to_string(clamp_rlim(rl.rlim_cur)) +
        "). Raise it before starting (e.g. `ulimit -n " + std::to_string(needed) +
        "`, or raise the hard limit as root / via limits.conf), or lower the "
        "configured connection count.");
  }
  return util::Error();
}

}  // namespace appx::net
