#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/syscount.hpp"
#include "util/error.hpp"

namespace appx::net {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

timeval to_timeval(Duration timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout / 1'000'000);
  tv.tv_usec = static_cast<suseconds_t>(timeout % 1'000'000);
  // SO_RCVTIMEO/SO_SNDTIMEO treat {0,0} as "no timeout"; a positive
  // sub-microsecond remainder must still wait at least a tick.
  if (timeout > 0 && tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  return tv;
}

// Non-blocking connect bounded by `timeout`.
bool connect_with_timeout(int fd, const sockaddr* addr, socklen_t addrlen, Duration timeout) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  bool ok = false;
  if (::connect(fd, addr, addrlen) == 0) {
    ok = true;
  } else if (errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(timeout / 1000);
    const int rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
    if (rc == 0) {
      errno = ETIMEDOUT;
    } else if (rc > 0) {
      int err = 0;
      socklen_t len = sizeof err;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 && err == 0) {
        ok = true;
      } else {
        errno = err != 0 ? err : errno;
      }
    }
  }
  const int saved_errno = errno;
  ::fcntl(fd, F_SETFL, flags);  // restore blocking mode
  errno = saved_errno;
  return ok;
}

}  // namespace

Fd::~Fd() { reset(); }

Fd::Fd(Fd&& other) noexcept : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)) {}

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed), std::memory_order_relaxed);
  }
  return *this;
}

void Fd::reset() {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port, Duration timeout) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &results);
  if (rc != 0) {
    throw Error("connect: getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  Fd fd;
  std::string last_error = "no addresses";
  bool timed_out = false;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    Fd candidate(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!candidate.valid()) {
      last_error = std::strerror(errno);
      continue;
    }
    const bool connected =
        timeout > 0 ? connect_with_timeout(candidate.get(), ai->ai_addr, ai->ai_addrlen, timeout)
                    : ::connect(candidate.get(), ai->ai_addr, ai->ai_addrlen) == 0;
    if (connected) {
      fd = std::move(candidate);
      break;
    }
    timed_out = errno == ETIMEDOUT;
    last_error = std::strerror(errno);
  }
  ::freeaddrinfo(results);
  if (!fd.valid()) {
    const std::string what = "connect to " + host + ":" + service + " failed: " + last_error;
    if (timed_out) throw TimeoutError(what);
    throw Error(what);
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(std::move(fd));
}

TcpStream TcpStream::begin_connect(const std::string& ip, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    throw Error("begin_connect: bad IPv4 address '" + ip + "'");
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) fail_errno("begin_connect: socket");
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 &&
      errno != EINPROGRESS) {
    fail_errno("begin_connect to " + ip + ":" + std::to_string(port));
  }
  return TcpStream(std::move(fd));
}

int TcpStream::connect_result() {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd_.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) return errno;
  return err;
}

void TcpStream::set_read_timeout(Duration timeout) { read_timeout_ = timeout; }

void TcpStream::set_write_timeout(Duration timeout) { write_timeout_ = timeout; }

Duration TcpStream::effective_timeout(Duration per_op) const {
  if (!deadline_) return per_op;
  const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
                             *deadline_ - std::chrono::steady_clock::now())
                             .count();
  if (remaining <= 0) throw TimeoutError("socket deadline exceeded");
  if (per_op <= 0) return remaining;
  return remaining < per_op ? remaining : per_op;
}

void TcpStream::apply_recv_timeout(Duration timeout) {
  if (timeout == applied_recv_timeout_) return;
  const timeval tv = to_timeval(timeout);
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  applied_recv_timeout_ = timeout;
}

void TcpStream::apply_send_timeout(Duration timeout) {
  if (timeout == applied_send_timeout_) return;
  const timeval tv = to_timeval(timeout);
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  applied_send_timeout_ = timeout;
}

void TcpStream::write_all(std::string_view data) {
  std::size_t written = 0;
  while (written < data.size()) {
    apply_send_timeout(effective_timeout(write_timeout_));
    const ssize_t n =
        ::send(fd_.get(), data.data() + written, data.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("send: timed out");
      }
      fail_errno("send");
    }
    if (n == 0) throw Error("send: connection closed");
    written += static_cast<std::size_t>(n);
  }
}

std::size_t TcpStream::read_some(char* buffer, std::size_t max) {
  while (true) {
    apply_recv_timeout(effective_timeout(read_timeout_));
    const ssize_t n = ::recv(fd_.get(), buffer, max, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw TimeoutError("recv: timed out");
    }
    fail_errno("recv");
  }
}

void TcpStream::writev_all(std::string_view head, std::string_view body) {
  std::size_t written = 0;
  const std::size_t total = head.size() + body.size();
  while (written < total) {
    apply_send_timeout(effective_timeout(write_timeout_));
    iovec iov[2];
    int iovcnt = 0;
    if (written < head.size()) {
      iov[iovcnt].iov_base = const_cast<char*>(head.data() + written);
      iov[iovcnt].iov_len = head.size() - written;
      ++iovcnt;
    }
    const std::size_t body_off = written > head.size() ? written - head.size() : 0;
    if (body_off < body.size()) {
      iov[iovcnt].iov_base = const_cast<char*>(body.data() + body_off);
      iov[iovcnt].iov_len = body.size() - body_off;
      ++iovcnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw TimeoutError("sendmsg: timed out");
      }
      fail_errno("sendmsg");
    }
    if (n == 0) throw Error("sendmsg: connection closed");
    written += static_cast<std::size_t>(n);
  }
}

void TcpStream::shutdown_write() { ::shutdown(fd_.get(), SHUT_WR); }

void TcpStream::set_nonblocking() {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

TcpListener::TcpListener(std::uint16_t port, bool reuse_port, int backlog) {
  if (backlog <= 0) backlog = SOMAXCONN;
  fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd_.valid()) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port) {
    if (::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      fail_errno("setsockopt(SO_REUSEPORT)");
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  // The accept-queue depth must absorb connection storms: with the old
  // hardcoded 64, a 10k-client open-loop ramp left most SYNs silently
  // dropped (the kernel just ignores them when the queue is full) and the
  // macro bench reported them as connect timeouts.
  if (::listen(fd_.get(), backlog) != 0) fail_errno("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpStream TcpListener::accept() {
  while (true) {
    if (closed_.load()) return TcpStream(Fd{});
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) {
      if (closed_.load()) {
        ::close(client);  // the close() wake-up connection (or a late client)
        return TcpStream(Fd{});
      }
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpStream(Fd(client));
    }
    if (errno == EINTR) continue;
    return TcpStream(Fd{});  // fd closed underneath us: orderly shutdown
  }
}

TcpStream TcpListener::accept_nonblocking() {
  while (true) {
    if (closed_.load() || !fd_.valid()) return TcpStream(Fd{});
    sys::count(sys::Op::kAccept);
    const int client = ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpStream(Fd(client));
    }
    if (errno == EINTR) continue;
    return TcpStream(Fd{});  // EAGAIN (no pending connection) or closed
  }
}

void TcpListener::set_nonblocking() {
  const int flags = ::fcntl(fd_.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_.get(), F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(listener O_NONBLOCK)");
  }
  nonblocking_ = true;
}

void TcpListener::close() {
  if (closed_.exchange(true)) return;
  if (!fd_.valid()) return;
  // A blocked accept() on Linux is NOT unblocked by shutdown()/close() of the
  // listening socket; wake it with a throwaway loopback connection. Event-loop
  // (non-blocking) listeners never block in accept, so they skip the dance.
  // The wake connect must be bounded: with a FULL accept queue the kernel
  // drops its SYN and an unbounded connect would sit in SYN retry for ~2
  // minutes — but a full queue also means accept() has connections to return
  // and is not blocked, so nobody needs the wake and timing out is correct.
  if (!nonblocking_) {
    try {
      TcpStream::connect("127.0.0.1", port_, seconds(1));
    } catch (const Error&) {
      // Listener already unreachable (or its queue is full); accept() will
      // see the closed fd.
    }
  }
  fd_.reset();
}

}  // namespace appx::net
