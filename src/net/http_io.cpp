#include "net/http_io.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace appx::net {

namespace {

// Content-Length of a message head (the text before the blank line), 0 when
// absent. Malformed values throw ParseError.
std::size_t content_length_of(std::string_view head) {
  for (const std::string& line : strings::split(head, "\r\n")) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (!strings::iequals(strings::trim(line.substr(0, colon)), "Content-Length")) continue;
    const auto value = strings::to_int(line.substr(colon + 1));
    if (!value || *value < 0) throw ParseError("http framing: bad Content-Length");
    return static_cast<std::size_t>(*value);
  }
  return 0;
}

}  // namespace

std::optional<std::string> HttpReader::read_message() {
  char chunk[4096];
  while (true) {
    const std::size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end != std::string::npos) {
      const std::size_t body_len = content_length_of(std::string_view(buffer_).substr(0, head_end));
      const std::size_t total = head_end + 4 + body_len;
      if (buffer_.size() >= total) {
        std::string message = buffer_.substr(0, total);
        buffer_.erase(0, total);
        return message;
      }
    }
    if (eof_) {
      if (buffer_.empty()) return std::nullopt;
      throw ParseError("http framing: connection closed mid-message");
    }
    const std::size_t n = stream_->read_some(chunk, sizeof chunk);
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, n);
  }
}

std::optional<http::Request> HttpReader::read_request() {
  const auto wire = read_message();
  if (!wire) return std::nullopt;
  return http::Request::parse(*wire);
}

std::optional<http::Response> HttpReader::read_response() {
  const auto wire = read_message();
  if (!wire) return std::nullopt;
  return http::Response::parse(*wire);
}

void write_request(TcpStream& stream, const http::Request& request) {
  stream.write_all(request.serialize());
}

void write_response(TcpStream& stream, const http::Response& response) {
  stream.write_all(response.serialize());
}

}  // namespace appx::net
