#include "net/http_io.hpp"

#include <string_view>

#include "util/strings.hpp"

namespace appx::net {

namespace {

// Content-Length of a message head (the text before the blank line), 0 when
// absent. Malformed values throw ParseError.
std::size_t content_length_of(std::string_view head) {
  std::string_view rest = head;
  while (!rest.empty()) {
    const std::size_t eol = rest.find("\r\n");
    const std::string_view line = rest.substr(0, eol == std::string_view::npos ? rest.size() : eol);
    rest = eol == std::string_view::npos ? std::string_view{} : rest.substr(eol + 2);
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    if (!strings::iequals(strings::trim(line.substr(0, colon)), "Content-Length")) continue;
    const auto value = strings::to_int(line.substr(colon + 1));
    if (!value || *value < 0) throw ParseError("http framing: bad Content-Length");
    return static_cast<std::size_t>(*value);
  }
  return 0;
}

}  // namespace

// --- HttpParser ----------------------------------------------------------------------

void HttpParser::append(const char* data, std::size_t n) {
  if (pinned_) {
    // A message view into buffer_ is in flight: stage the bytes aside so the
    // buffer neither compacts nor reallocates under the view.
    overflow_.append(data, n);
    return;
  }
  // Compact before growing: erase the consumed prefix once it is large (or
  // the buffer is fully drained — a free clear() that keeps the capacity, so
  // a keep-alive connection reuses one allocation across all its messages).
  // Never between next_message() and the caller parsing the view.
  if (consumed_ > 0 && (consumed_ >= kCompactThreshold || consumed_ == buffer_.size())) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

void HttpParser::unpin() {
  pinned_ = false;
  if (!overflow_.empty()) {
    append(overflow_.data(), overflow_.size());  // compacts first if due
    overflow_.clear();
  }
}

std::optional<std::string_view> HttpParser::next_message() {
  const std::string_view pending = std::string_view(buffer_).substr(consumed_);
  const std::size_t head_end = pending.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    if (limits_.max_head_bytes > 0 && pending.size() > limits_.max_head_bytes) {
      // No blank line within the permitted head size: reject before the
      // buffer can grow without bound.
      throw MessageTooLargeError("http framing: header block exceeds " +
                                     std::to_string(limits_.max_head_bytes) + " bytes",
                                 431);
    }
    return std::nullopt;
  }
  if (limits_.max_head_bytes > 0 && head_end > limits_.max_head_bytes) {
    throw MessageTooLargeError("http framing: header block exceeds " +
                                   std::to_string(limits_.max_head_bytes) + " bytes",
                               431);
  }
  const std::size_t body_len = content_length_of(pending.substr(0, head_end));
  if (limits_.max_body_bytes > 0 && body_len > limits_.max_body_bytes) {
    throw MessageTooLargeError("http framing: body of " + std::to_string(body_len) +
                                   " bytes exceeds " + std::to_string(limits_.max_body_bytes) +
                                   " bytes",
                               413);
  }
  const std::size_t total = head_end + 4 + body_len;
  if (pending.size() < total) return std::nullopt;
  const std::size_t start = consumed_;
  consumed_ += total;
  return std::string_view(buffer_).substr(start, total);
}

void HttpParser::reset() {
  buffer_.clear();
  overflow_.clear();
  consumed_ = 0;
  pinned_ = false;
}

// --- HttpReader ----------------------------------------------------------------------

std::optional<std::string_view> HttpReader::read_message() {
  char chunk[4096];
  while (true) {
    if (const auto message = parser_.next_message()) return message;
    if (eof_) {
      if (parser_.pending_bytes() == 0) return std::nullopt;
      throw ParseError("http framing: connection closed mid-message");
    }
    const std::size_t n = stream_->read_some(chunk, sizeof chunk);
    if (n == 0) {
      eof_ = true;
      continue;
    }
    parser_.append(chunk, n);
  }
}

std::optional<http::Request> HttpReader::read_request() {
  const auto wire = read_message();
  if (!wire) return std::nullopt;
  return http::Request::parse(*wire);
}

std::optional<http::Response> HttpReader::read_response() {
  const auto wire = read_message();
  if (!wire) return std::nullopt;
  return http::Response::parse(*wire);
}

void write_request(TcpStream& stream, const http::Request& request) {
  thread_local std::string head;
  head.clear();
  request.serialize_head_into(head);
  stream.writev_all(head, request.body);
}

void write_response(TcpStream& stream, const http::Response& response) {
  thread_local std::string head;
  head.clear();
  response.serialize_head_into(head);
  stream.writev_all(head, response.body);
}

}  // namespace appx::net
