// Minimal RAII wrappers over POSIX TCP sockets.
//
// The evaluation runs on the discrete-event simulator, but the proxy engine
// is transport-agnostic; this module is the real-wire front end: blocking
// TCP with full-write/handled-partial-read semantics, errors surfaced as
// appx::Error, file descriptors owned by RAII handles.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace appx::net {

// Owning file-descriptor handle.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept;
  Fd& operator=(Fd&& other) noexcept;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();  // close now

 private:
  int fd_ = -1;
};

// A connected TCP stream.
class TcpStream {
 public:
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  // Connect to host:port (numeric or resolvable); throws appx::Error.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  // Write the whole buffer; throws on error/EOF.
  void write_all(std::string_view data);

  // Read up to `max` bytes; returns 0 on orderly EOF; throws on error.
  std::size_t read_some(char* buffer, std::size_t max);

  // Shut down the write side (half-close).
  void shutdown_write();

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

 private:
  Fd fd_;
};

// A listening TCP socket on 127.0.0.1.
class TcpListener {
 public:
  // Binds to 127.0.0.1:`port` (0 = ephemeral); throws appx::Error.
  explicit TcpListener(std::uint16_t port);

  // The actual bound port (useful with port 0).
  std::uint16_t port() const { return port_; }

  // Blocks for the next connection; returns an invalid stream if the
  // listener was closed from another thread.
  TcpStream accept();

  // Unblocks accept() permanently (used for shutdown).
  void close();

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
  std::atomic<bool> closed_{false};
};

}  // namespace appx::net
