// Minimal RAII wrappers over POSIX TCP sockets.
//
// The evaluation runs on the discrete-event simulator, but the proxy engine
// is transport-agnostic; this module is the real-wire front end: blocking
// TCP with full-write/handled-partial-read semantics, errors surfaced as
// appx::Error, file descriptors owned by RAII handles.
//
// Liveness: every blocking operation can be bounded. connect() takes an
// optional timeout (non-blocking connect + poll); streams support per-op
// read/write timeouts (SO_RCVTIMEO/SO_SNDTIMEO) and an absolute deadline
// that caps all subsequent I/O on the stream. An exceeded bound surfaces as
// appx::TimeoutError, so a dead peer can never wedge a thread forever.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/units.hpp"

namespace appx::net {

// Owning file-descriptor handle. The descriptor is stored atomically so the
// close-to-wake shutdown idiom (one thread reset()s a listener while the
// accept thread blocks on it) is a defined cross-thread hand-off; ownership
// transfer (move) is still single-threaded only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd();
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept;
  Fd& operator=(Fd&& other) noexcept;

  int get() const { return fd_.load(std::memory_order_relaxed); }
  bool valid() const { return get() >= 0; }
  void reset();  // close now

 private:
  std::atomic<int> fd_{-1};
};

// A connected TCP stream.
class TcpStream {
 public:
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  // Connect to host:port (numeric or resolvable); throws appx::Error.
  // timeout > 0 bounds the connection attempt (TimeoutError on expiry);
  // 0 = block indefinitely.
  static TcpStream connect(const std::string& host, std::uint16_t port,
                           Duration timeout = 0);

  // Begin a non-blocking connect to a numeric IPv4 address (event-loop
  // clients: the open-loop load generator drives thousands of concurrent
  // connects through one epoll thread). Returns a non-blocking stream whose
  // connect is in progress (or already complete); register its fd for
  // EPOLLOUT and call connect_result() when it fires. Throws appx::Error
  // only on immediate local failure (bad address, out of descriptors).
  static TcpStream begin_connect(const std::string& ip, std::uint16_t port);

  // Resolve a begin_connect: 0 when the connection is established, else the
  // socket error (ECONNREFUSED, ETIMEDOUT, ...) — the pending SO_ERROR.
  int connect_result();

  // Per-operation I/O bounds; 0 = none. Apply to every subsequent
  // write_all/read_some call, which throws TimeoutError when the peer stays
  // silent (or unwritable) that long.
  void set_read_timeout(Duration timeout);
  void set_write_timeout(Duration timeout);

  // Absolute deadline capping ALL subsequent I/O on this stream: each call's
  // effective timeout is the tighter of the per-op timeout and the time left
  // until the deadline; once past it, I/O throws TimeoutError immediately.
  // Implements per-request deadlines (a slow-but-not-silent peer cannot
  // stretch a request forever by trickling bytes).
  void set_deadline(std::chrono::steady_clock::time_point deadline) { deadline_ = deadline; }
  void clear_deadline() { deadline_.reset(); }

  // Write the whole buffer; throws on error/EOF, TimeoutError on deadline.
  void write_all(std::string_view data);

  // Write both buffers as one iovec batch (message head + body) so a full
  // HTTP message leaves in a single writev() syscall and one TCP segment
  // where it fits, instead of the multi-write path that concatenated head
  // and body into a fresh string first. Same bounds semantics as write_all.
  void writev_all(std::string_view head, std::string_view body);

  // Read up to `max` bytes; returns 0 on orderly EOF; throws on error,
  // TimeoutError on deadline.
  std::size_t read_some(char* buffer, std::size_t max);

  // Shut down the write side (half-close).
  void shutdown_write();

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  // Switch the socket to non-blocking mode (event-loop ownership). The
  // blocking helpers above must not be used afterwards.
  void set_nonblocking();

 private:
  // Remaining budget for one read/write; throws TimeoutError if the deadline
  // has already passed. 0 = unbounded.
  Duration effective_timeout(Duration per_op) const;
  void apply_recv_timeout(Duration timeout);
  void apply_send_timeout(Duration timeout);

  Fd fd_;
  Duration read_timeout_ = 0;
  Duration write_timeout_ = 0;
  // Last values actually set on the socket, to skip redundant setsockopts.
  Duration applied_recv_timeout_ = 0;
  Duration applied_send_timeout_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
};

// A listening TCP socket on 127.0.0.1.
class TcpListener {
 public:
  // Binds to 127.0.0.1:`port` (0 = ephemeral); throws appx::Error.
  // With `reuse_port`, N listeners may bind the same port (SO_REUSEPORT) and
  // the kernel shards incoming connections across them — one listener per
  // event-loop thread, no accept lock (DESIGN.md §5g).
  // `backlog` is the listen(2) accept-queue depth; 0 = SOMAXCONN. A short
  // backlog silently drops connection storms (the kernel ignores SYNs once
  // the queue fills), so servers default to the system maximum.
  explicit TcpListener(std::uint16_t port, bool reuse_port = false, int backlog = 0);

  // The actual bound port (useful with port 0).
  std::uint16_t port() const { return port_; }

  // Blocks for the next connection; returns an invalid stream if the
  // listener was closed from another thread.
  TcpStream accept();

  // Non-blocking accept for event loops (the listener fd must be registered
  // for EPOLLIN). Returns an invalid stream when no connection is pending
  // (EAGAIN) or the listener is closed; accepted streams are non-blocking.
  TcpStream accept_nonblocking();

  // Switch the listening socket itself to non-blocking mode.
  void set_nonblocking();

  // Unblocks accept() permanently (used for shutdown).
  void close();

  int fd() const { return fd_.get(); }

 private:
  Fd fd_;
  std::uint16_t port_ = 0;
  bool nonblocking_ = false;
  std::atomic<bool> closed_{false};
};

}  // namespace appx::net
