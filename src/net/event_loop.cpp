// Backend-independent EventLoop machinery: the task queue with its
// armed-flag wake elision, the timer min-heap with lazy cancellation, the
// loop-thread marker, and the backend factory. The kernel-facing halves live
// in event_loop_epoll.cpp and event_loop_uring.cpp.
#include "net/event_loop.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "net/syscount.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::net {

namespace {
[[noreturn]] void fail_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

// Stable per-thread address used to answer on_loop_thread() without
// std::thread::id comparisons in a hot path.
const void* this_thread_marker() {
  static thread_local char marker;
  return &marker;
}
}  // namespace

EventLoop::EventLoop() {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) fail_errno("eventfd");
}

EventLoop::~EventLoop() {
  // Destroy undelivered tasks outside the lock: their destructors may release
  // connection handles whose teardown is arbitrary user code.
  std::vector<Task> leftover;
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    leftover.swap(tasks_);
  }
  leftover.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

bool EventLoop::on_loop_thread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) == this_thread_marker();
}

void EventLoop::mark_loop_thread() {
  loop_thread_id_.store(this_thread_marker(), std::memory_order_relaxed);
}

void EventLoop::clear_loop_thread() {
  loop_thread_id_.store(nullptr, std::memory_order_relaxed);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  sys::count(sys::Op::kWake);
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  // Always wake: arm_sleep() re-checks stopping_, but only after the store
  // above is visible; an unconditional wake keeps stop() latency-proof.
  wake();
}

void EventLoop::post(Task task) {
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  // Dekker handshake with arm_sleep(): bump the pending count, then claim
  // the armed flag — both seq_cst, so either we see the loop armed (and pay
  // the wake) or the loop's post-arm re-check sees our task. A busy loop
  // (flag clear) costs no syscall per post, and the exchange coalesces
  // concurrent posters: only the first to claim the flag writes the eventfd
  // (one wake per sleep), later posters ride the same wakeup — the loop
  // drains the whole queue once running, and anything pushed after that
  // drain trips the next arm_sleep() re-check.
  pending_tasks_.fetch_add(1, std::memory_order_seq_cst);
  if (sleep_armed_.exchange(false, std::memory_order_seq_cst)) wake();
}

bool EventLoop::arm_sleep() {
  sleep_armed_.store(true, std::memory_order_seq_cst);
  if (pending_tasks_.load(std::memory_order_seq_cst) != 0 || stopping()) {
    // Work raced in between the last drain and arming: poll, don't block.
    return false;
  }
  return true;
}

void EventLoop::drain_tasks() {
  std::vector<Task> batch;
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) {
    pending_tasks_.fetch_sub(1, std::memory_order_relaxed);
    try {
      task();
    } catch (const std::exception& e) {
      // A throwing task must not unwind run() and kill the reactor thread.
      log_error("net.loop") << "posted task threw: " << e.what();
    }
  }
}

std::uint64_t EventLoop::add_timer(TimePoint when, Task task) {
  const std::uint64_t id = next_timer_id_++;
  timer_heap_.push(TimerEntry{when, id});
  timer_tasks_.emplace(id, std::move(task));
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  // Lazy cancellation: the heap entry stays and is skipped when popped.
  timer_tasks_.erase(id);
}

int EventLoop::next_timeout_ms() {
  // Pop lazily-cancelled heads for real: with one idle timer per connection
  // a heap copy here would be O(n) per wakeup.
  while (!timer_heap_.empty() &&
         timer_tasks_.find(timer_heap_.top().id) == timer_tasks_.end()) {
    timer_heap_.pop();
  }
  if (timer_heap_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  const auto delta =
      std::chrono::duration_cast<std::chrono::milliseconds>(timer_heap_.top().when - now)
          .count();
  if (delta <= 0) return 0;
  return static_cast<int>(delta > 60'000 ? 60'000 : delta);
}

void EventLoop::fire_due_timers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timer_heap_.empty() && timer_heap_.top().when <= now) {
    const TimerEntry entry = timer_heap_.top();
    timer_heap_.pop();
    const auto it = timer_tasks_.find(entry.id);
    if (it == timer_tasks_.end()) continue;  // cancelled
    Task task = std::move(it->second);
    timer_tasks_.erase(it);
    try {
      task();
    } catch (const std::exception& e) {
      log_error("net.loop") << "timer task threw: " << e.what();
    }
  }
}

// Completion-op defaults: readiness-mode backends report "unsupported" and
// callers fall back to add_fd/mod_fd/del_fd.
bool EventLoop::submit_recv(int, void*, std::size_t, IoCallback) { return false; }
bool EventLoop::submit_sendmsg(int, const msghdr*, IoCallback) { return false; }
bool EventLoop::submit_accept(int, AcceptCallback) { return false; }
void EventLoop::cancel_fd(int) {}

std::string resolve_io_backend(std::string_view configured) {
  std::string backend(configured);
  if (backend.empty()) {
    const char* env = std::getenv("APPX_IO_BACKEND");
    backend = (env != nullptr && *env != '\0') ? env : "epoll";
  }
  if (backend == "auto") return uring_supported() ? "uring" : "epoll";
  if (backend == "epoll") return backend;
  if (backend == "uring") {
    if (!uring_supported()) {
      throw InvalidArgumentError(
          "io_backend=uring: this kernel lacks the required io_uring support "
          "(need >= 5.11 with EXT_ARG timeouts); use \"auto\" to fall back to epoll");
    }
    return backend;
  }
  throw InvalidArgumentError("unknown io_backend \"" + backend +
                             "\" (expected \"epoll\", \"uring\" or \"auto\")");
}

std::unique_ptr<EventLoop> make_event_loop(std::string_view backend) {
  if (resolve_io_backend(backend) == "uring") return make_uring_event_loop();
  return make_epoll_event_loop();
}

}  // namespace appx::net
