#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::net {

namespace {
[[noreturn]] void fail_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

// Events carry (generation, fd) so a stale event for a recycled fd number is
// recognisable; see Handler::gen.
std::uint64_t pack_key(std::uint32_t gen, int fd) {
  return (static_cast<std::uint64_t>(gen) << 32) | static_cast<std::uint32_t>(fd);
}

// Stable per-thread address used to answer on_loop_thread() without
// std::thread::id comparisons in a hot path.
const void* this_thread_marker() {
  static thread_local char marker;
  return &marker;
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) fail_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    fail_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = pack_key(/*gen=*/0, wake_fd_);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    fail_errno("epoll_ctl(wakeup)");
  }
}

EventLoop::~EventLoop() {
  // Destroy undelivered tasks outside the lock: their destructors may release
  // connection handles whose teardown is arbitrary user code.
  std::vector<Task> leftover;
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    leftover.swap(tasks_);
  }
  leftover.clear();
  handlers_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool EventLoop::on_loop_thread() const {
  return loop_thread_id_.load(std::memory_order_relaxed) == this_thread_marker();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::post(Task task) {
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  pending_tasks_.fetch_add(1, std::memory_order_relaxed);
  wake();
}

void EventLoop::drain_tasks() {
  std::vector<Task> batch;
  {
    const std::lock_guard<std::mutex> lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) {
    pending_tasks_.fetch_sub(1, std::memory_order_relaxed);
    try {
      task();
    } catch (const std::exception& e) {
      // A throwing task must not unwind run() and kill the reactor thread.
      log_error("net.loop") << "posted task threw: " << e.what();
    }
  }
}

void EventLoop::add_fd(int fd, std::uint32_t events, FdCallback callback) {
  auto handler = std::make_shared<Handler>();
  handler->events = events;
  handler->gen = next_gen_++;
  if (next_gen_ == 0) next_gen_ = 1;  // keep 0 reserved for the wakeup fd
  handler->callback = std::move(callback);
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack_key(handler->gen, fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) fail_errno("epoll_ctl(add)");
  handlers_[fd] = std::move(handler);
  fd_count_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  if (it->second->events == events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack_key(it->second->gen, fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) fail_errno("epoll_ctl(mod)");
  it->second->events = events;
}

void EventLoop::del_fd(int fd) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  // The fd may already be closed (kernel removed it from the set); ignore.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(it);
  fd_count_.fetch_sub(1, std::memory_order_relaxed);
}

std::uint64_t EventLoop::add_timer(TimePoint when, Task task) {
  const std::uint64_t id = next_timer_id_++;
  timer_heap_.push(TimerEntry{when, id});
  timer_tasks_.emplace(id, std::move(task));
  return id;
}

void EventLoop::cancel_timer(std::uint64_t id) {
  // Lazy cancellation: the heap entry stays and is skipped when popped.
  timer_tasks_.erase(id);
}

int EventLoop::next_timeout_ms() {
  // Pop lazily-cancelled heads for real: with one idle timer per connection
  // a heap copy here would be O(n) per epoll_wait wakeup.
  while (!timer_heap_.empty() &&
         timer_tasks_.find(timer_heap_.top().id) == timer_tasks_.end()) {
    timer_heap_.pop();
  }
  if (timer_heap_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  const auto delta =
      std::chrono::duration_cast<std::chrono::milliseconds>(timer_heap_.top().when - now)
          .count();
  if (delta <= 0) return 0;
  return static_cast<int>(delta > 60'000 ? 60'000 : delta);
}

void EventLoop::fire_due_timers() {
  const auto now = std::chrono::steady_clock::now();
  while (!timer_heap_.empty() && timer_heap_.top().when <= now) {
    const TimerEntry entry = timer_heap_.top();
    timer_heap_.pop();
    const auto it = timer_tasks_.find(entry.id);
    if (it == timer_tasks_.end()) continue;  // cancelled
    Task task = std::move(it->second);
    timer_tasks_.erase(it);
    try {
      task();
    } catch (const std::exception& e) {
      log_error("net.loop") << "timer task threw: " << e.what();
    }
  }
}

void EventLoop::run() {
  loop_thread_id_.store(this_thread_marker(), std::memory_order_relaxed);
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    drain_tasks();
    fire_due_timers();
    if (stopping_.load(std::memory_order_acquire)) break;
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      const int fd = static_cast<int>(key & 0xffffffffULL);
      if (fd == wake_fd_) {
        std::uint64_t counter;
        while (::read(wake_fd_, &counter, sizeof counter) > 0) {
        }
        continue;
      }
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed by an earlier callback
      // Generation mismatch: the fd closed during this batch and its number
      // was reused by a new registration (e.g. an accept in the same batch).
      // The queued event belongs to the dead registration; drop it.
      if (it->second->gen != static_cast<std::uint32_t>(key >> 32)) continue;
      // Keep the handler alive across the call: the callback may del_fd
      // (closing a connection closes its own registration).
      const std::shared_ptr<Handler> handler = it->second;
      try {
        handler->callback(events[i].events);
      } catch (const std::exception& e) {
        log_error("net.loop") << "fd callback threw: " << e.what();
      }
    }
  }
  // Final drain: tasks queued alongside the stop (e.g. a close-all) run;
  // anything posted later is destroyed by the destructor instead.
  drain_tasks();
  loop_thread_id_.store(nullptr, std::memory_order_relaxed);
}

}  // namespace appx::net
