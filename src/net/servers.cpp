#include "net/servers.hpp"

#include <sys/socket.h>

#include <chrono>
#include <utility>

#include "util/error.hpp"
#include "util/log.hpp"

namespace {
// Registers a connection fd for the server's stop() to shut down; removes it
// again when the handling thread finishes.
class ConnGuard {
 public:
  ConnGuard(std::mutex& mutex, std::set<int>& fds, int fd)
      : mutex_(mutex), fds_(fds), fd_(fd) {
    const std::lock_guard<std::mutex> lock(mutex_);
    fds_.insert(fd_);
  }
  ~ConnGuard() {
    const std::lock_guard<std::mutex> lock(mutex_);
    fds_.erase(fd_);
  }
  ConnGuard(const ConnGuard&) = delete;
  ConnGuard& operator=(const ConnGuard&) = delete;

 private:
  std::mutex& mutex_;
  std::set<int>& fds_;
  int fd_;
};

void shutdown_all(std::mutex& mutex, std::set<int>& fds) {
  const std::lock_guard<std::mutex> lock(mutex);
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
}

appx::http::Response status_response(int status, std::string body) {
  appx::http::Response resp;
  resp.status = status;
  resp.reason = std::string(appx::http::reason_phrase(status));
  resp.body = std::move(body);
  return resp;
}

// Shared admin surface: /appx/metrics (Prometheus text), /appx/metrics.json.
bool is_admin_path(const std::string& path) { return path.rfind("/appx/", 0) == 0; }

appx::http::Response metrics_response(const appx::obs::MetricsRegistry& registry,
                                      const std::string& path) {
  if (path == "/appx/metrics") {
    appx::http::Response resp = status_response(200, registry.to_prometheus());
    resp.headers.set("Content-Type", "text/plain; version=0.0.4");
    return resp;
  }
  if (path == "/appx/metrics.json") {
    appx::http::Response resp = status_response(200, registry.to_json().dump(2));
    resp.headers.set("Content-Type", "application/json");
    return resp;
  }
  return status_response(404, R"({"error":"unknown admin endpoint"})");
}

// Deliver a rejection even though the peer may still have unread bytes in
// flight: closing with unread input makes the kernel RST the connection,
// which can discard the response before the peer reads it. Write, half-close,
// then drain the remainder (bounded) so the FIN carries the status cleanly.
void reject_connection(appx::net::TcpStream& stream, int status) {
  try {
    appx::net::write_response(stream, status_response(status, ""));
    stream.shutdown_write();
    stream.set_deadline(std::chrono::steady_clock::now() + std::chrono::milliseconds(500));
    char sink[4096];
    while (stream.read_some(sink, sizeof sink) > 0) {
    }
  } catch (const appx::Error&) {
    // Best-effort; peer may be gone.
  }
}
}  // namespace

namespace appx::net {

// --- ThreadReaper ---------------------------------------------------------------------

void ThreadReaper::reap_locked() {
  for (const std::uint64_t id : finished_) {
    const auto it = threads_.find(id);
    if (it == threads_.end()) continue;  // already taken by join_all
    if (it->second.joinable()) it->second.join();
    threads_.erase(it);
  }
  finished_.clear();
}

std::size_t ThreadReaper::live() {
  const std::lock_guard<std::mutex> lock(mutex_);
  reap_locked();
  return threads_.size();
}

void ThreadReaper::join_all() {
  // Join outside the lock: running threads must be able to take mutex_ to
  // record their completion while we wait on them.
  std::map<std::uint64_t, std::thread> taken;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    taken.swap(threads_);
    finished_.clear();
  }
  for (auto& [id, thread] : taken) {
    if (thread.joinable()) thread.join();
  }
}

// --- LiveOriginServer ----------------------------------------------------------------

LiveOriginServer::LiveOriginServer(apps::OriginServer* origin, std::uint16_t port)
    : origin_(origin), listener_(port) {
  if (origin == nullptr) throw InvalidArgumentError("LiveOriginServer: null origin");
  requests_total_ = &registry_.counter("appx_origin_requests_total");
  serve_us_ = &registry_.histogram("appx_origin_serve_us");
  acceptor_ = std::thread([this] { accept_loop(); });
}

LiveOriginServer::~LiveOriginServer() { stop(); }

void LiveOriginServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  shutdown_all(conns_mutex_, conn_fds_);
  if (acceptor_.joinable()) acceptor_.join();
  conn_threads_.join_all();
}

void LiveOriginServer::accept_loop() {
  while (!stopping_.load()) {
    TcpStream stream = listener_.accept();
    if (!stream.valid()) return;  // listener closed
    conn_threads_.spawn([this, s = std::make_shared<TcpStream>(std::move(stream))]() mutable {
      serve_connection(std::move(*s));
    });
  }
}

void LiveOriginServer::serve_connection(TcpStream stream) {
  const ConnGuard guard(conns_mutex_, conn_fds_, stream.fd());
  try {
    HttpReader reader(&stream);
    while (auto request = reader.read_request()) {
      if (is_admin_path(request->uri.path)) {
        write_response(stream, metrics_response(registry_, request->uri.path));
        continue;
      }
      requests_total_->inc();
      const auto started = std::chrono::steady_clock::now();
      http::Response response;
      {
        const std::lock_guard<std::mutex> lock(origin_mutex_);
        response = origin_->serve(*request);
      }
      serve_us_->record(std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - started)
                            .count());
      write_response(stream, response);
      ++served_;
    }
  } catch (const MessageTooLargeError& e) {
    log_debug("net.origin") << "oversized message: " << e.what();
    reject_connection(stream, e.suggested_status());
  } catch (const Error& e) {
    log_debug("net.origin") << "connection ended: " << e.what();
  }
}

// --- LiveProxyServer ------------------------------------------------------------------

LiveProxyServer::LiveProxyServer(core::ProxyLike* engine, UpstreamMap upstreams,
                                 std::uint16_t port, LiveProxyOptions options)
    : engine_(engine),
      upstreams_(std::move(upstreams)),
      options_(std::move(options)),
      listener_(port),
      traces_(options_.trace_ring_capacity) {
  if (engine == nullptr) throw InvalidArgumentError("LiveProxyServer: null engine");
  options_.validate().throw_if_error();
  // One scrape shows everything: transport-level metrics land in the engine's
  // registry when it has one, next to the engine's own counters.
  registry_ = engine_->metrics();
  if (registry_ == nullptr) registry_ = &own_registry_;
  client_hit_us_ =
      &registry_->histogram(obs::labeled("appx_client_latency_us", {{"path", "hit"}}));
  client_miss_us_ =
      &registry_->histogram(obs::labeled("appx_client_latency_us", {{"path", "miss"}}));
  prefetch_fetch_us_ = &registry_->histogram("appx_prefetch_fetch_us");
  admin_requests_ = &registry_->counter("appx_admin_requests_total");
  queue_dropped_total_ = &registry_->counter("appx_proxy_queue_dropped_total");
  queue_depth_ = &registry_->gauge("appx_proxy_prefetch_queue");
  if (!options_.metrics_snapshot_path.empty()) {
    snapshot_writer_ = std::make_unique<obs::SnapshotWriter>(
        registry_, options_.metrics_snapshot_path, options_.metrics_snapshot_interval);
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  prefetchers_.reserve(options_.prefetch_workers);
  for (std::size_t i = 0; i < options_.prefetch_workers; ++i) {
    prefetchers_.emplace_back([this] { prefetch_worker(); });
  }
}

std::unique_lock<std::mutex> LiveProxyServer::engine_guard() {
  // A thread-safe engine (the sharded runtime) synchronises itself per shard;
  // funnelling its events through one server mutex would serialise exactly
  // the work sharding parallelised. Hand back an empty guard instead.
  if (engine_->thread_safe()) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(engine_mutex_);
}

LiveProxyServer::~LiveProxyServer() { stop(); }

void LiveProxyServer::stop() {
  if (stopping_.exchange(true)) return;
  if (snapshot_writer_) {
    snapshot_writer_->write_now();  // final state, not up to 1 interval stale
    snapshot_writer_->stop();
  }
  listener_.close();
  // Shutting down every registered fd (client connections AND in-flight
  // upstream fetches) unblocks all I/O immediately.
  shutdown_all(conns_mutex_, conn_fds_);
  queue_cv_.notify_all();
  idle_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : prefetchers_) {
    if (t.joinable()) t.join();
  }
  conn_threads_.join_all();
  // Resolve jobs still queued at shutdown so the engine's outstanding
  // windows balance even if it is inspected (or reused) after stop().
  std::deque<core::PrefetchJob> leftover;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    leftover.swap(prefetch_queue_);
  }
  if (!leftover.empty()) {
    const auto guard = engine_guard();
    for (core::PrefetchJob& job : leftover) {
      engine_->on_prefetch_dropped(job.uid, job, now());
    }
  }
}

SimTime LiveProxyServer::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void LiveProxyServer::accept_loop() {
  while (!stopping_.load()) {
    TcpStream stream = listener_.accept();
    if (!stream.valid()) return;
    conn_threads_.spawn([this, s = std::make_shared<TcpStream>(std::move(stream))]() mutable {
      serve_connection(std::move(*s));
    });
  }
}

http::Response LiveProxyServer::fetch_upstream(const http::Request& request) {
  const auto it = upstreams_.find(request.uri.host);
  if (it == upstreams_.end()) {
    return status_response(502, R"({"error":"no upstream for host"})");
  }
  if (stopping_.load()) {
    return status_response(502, R"({"error":"proxy shutting down"})");
  }
  try {
    TcpStream upstream = TcpStream::connect("127.0.0.1", it->second, options_.connect_timeout);
    // Register the upstream fd so stop() can cut a fetch short.
    const ConnGuard guard(conns_mutex_, conn_fds_, upstream.fd());
    if (options_.request_deadline > 0) {
      upstream.set_deadline(std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.request_deadline));
    }
    upstream.set_read_timeout(options_.io_timeout);
    upstream.set_write_timeout(options_.io_timeout);
    write_request(upstream, request);
    HttpReader reader(&upstream);
    auto response = reader.read_response();
    if (!response) throw Error("upstream closed without responding");
    return *response;
  } catch (const TimeoutError& e) {
    // A dead or wedged origin degrades to 504 instead of hanging the thread.
    log_warn("net.proxy") << "upstream timeout: " << e.what();
    return status_response(504, R"({"error":"upstream timeout"})");
  } catch (const Error& e) {
    log_warn("net.proxy") << "upstream error: " << e.what();
    return status_response(502, R"({"error":"upstream error"})");
  }
}

http::Response LiveProxyServer::handle_admin(const http::Request& request) {
  admin_requests_->inc();
  if (request.uri.path == "/appx/trace") {
    http::Response resp = status_response(200, traces_.to_json().dump(2));
    resp.headers.set("Content-Type", "application/json");
    return resp;
  }
  return metrics_response(*registry_, request.uri.path);
}

void LiveProxyServer::serve_connection(TcpStream stream) {
  // One logical user per connection source; for the loopback demo each
  // client identifies itself with an X-Appx-User header (falling back to a
  // shared id). A production front end would key on client address.
  //
  // The user is resolved into a core::Session once per (connection, user)
  // pair; subsequent requests reuse the interned UserId so steady-state
  // events skip the name lookup (and, on the sharded runtime, go straight
  // to the owning shard).
  const ConnGuard guard(conns_mutex_, conn_fds_, stream.fd());
  std::map<std::string, core::Session, std::less<>> sessions;
  try {
    HttpReader reader(&stream, ReaderLimits{options_.reader_limits.max_head_bytes,
                                            options_.reader_limits.max_body_bytes});
    while (auto request = reader.read_request()) {
      const SimTime received = now();
      // Admin requests (metrics scrapes, trace dumps) bypass the engine:
      // they must not create user state or perturb learning.
      if (is_admin_path(request->uri.path)) {
        obs::RequestTrace trace;
        trace.user = "-";
        trace.method = request->method;
        trace.target = request->uri.path;
        trace.outcome = "admin";
        trace.start_us = received;
        write_response(stream, handle_admin(*request));
        trace.end_us = now();
        traces_.push(std::move(trace));
        continue;
      }

      const std::string user = request->headers.get("X-Appx-User").value_or("default");
      http::Request upstream_request = *request;
      upstream_request.headers.remove("X-Appx-User");
      // Origin-form request targets carry no scheme; this front end stands in
      // for the TLS-terminating proxy of the paper's deployment model, so
      // normalise to https for signature matching and cache identity.
      if (upstream_request.uri.scheme.empty()) upstream_request.uri.scheme = "https";

      obs::RequestTrace trace;
      trace.user = user;
      trace.method = request->method;
      trace.target = request->uri.path;
      trace.start_us = received;

      auto session_it = sessions.find(user);
      if (session_it == sessions.end()) {
        const auto resolve_guard = engine_guard();
        session_it = sessions.emplace(user, engine_->session(user, now())).first;
      }
      core::Session& session = session_it->second;

      core::Decision decision;
      {
        const auto guard = engine_guard();
        decision = session.on_request(upstream_request, now());
      }
      trace.add_span("decide", received, now());
      if (decision.served) {
        // The served response is shared with the proxy's cache; take a local
        // copy to annotate without mutating the cached entry.
        http::Response served = *decision.served;
        served.headers.set("X-Appx-Cache", "hit");
        const SimTime respond_start = now();
        write_response(stream, served);
        trace.add_span("respond", respond_start, now());
        trace.outcome = "hit";
        trace.end_us = now();
        client_hit_us_->record(trace.end_us - received);
        traces_.push(std::move(trace));
        enqueue_jobs(std::move(decision.prefetches));
        continue;
      }
      enqueue_jobs(std::move(decision.prefetches));

      const SimTime fetch_start = now();
      http::Response response = fetch_upstream(upstream_request);
      trace.add_span("forward", fetch_start, now(),
                     "status=" + std::to_string(response.status));
      const SimTime learn_start = now();
      core::Decision learned;
      {
        const auto guard = engine_guard();
        learned = session.on_response(upstream_request, response, now());
      }
      trace.add_span("learn", learn_start, now());
      enqueue_jobs(std::move(learned.prefetches));
      response.headers.set("X-Appx-Cache", "miss");
      const SimTime respond_start = now();
      write_response(stream, response);
      trace.add_span("respond", respond_start, now());
      trace.outcome = response.status >= 500 ? "error" : "miss";
      trace.end_us = now();
      client_miss_us_->record(trace.end_us - received);
      traces_.push(std::move(trace));
    }
  } catch (const MessageTooLargeError& e) {
    log_debug("net.proxy") << "oversized message: " << e.what();
    reject_connection(stream, e.suggested_status());
  } catch (const Error& e) {
    log_debug("net.proxy") << "connection ended: " << e.what();
  }
}

void LiveProxyServer::enqueue_jobs(std::vector<core::PrefetchJob> jobs) {
  if (jobs.empty()) return;
  std::vector<core::PrefetchJob> dropped;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (core::PrefetchJob& job : jobs) {
      prefetch_queue_.push_back(std::move(job));
    }
    // Bounded queue: shed the oldest jobs first (they are the most likely to
    // be stale by the time a worker would reach them).
    while (options_.max_prefetch_queue > 0 &&
           prefetch_queue_.size() > options_.max_prefetch_queue) {
      dropped.push_back(std::move(prefetch_queue_.front()));
      prefetch_queue_.pop_front();
    }
    queue_depth_->set(static_cast<std::int64_t>(prefetch_queue_.size()));
  }
  queue_cv_.notify_all();
  if (!dropped.empty()) {
    queue_dropped_ += dropped.size();
    queue_dropped_total_->add(static_cast<std::int64_t>(dropped.size()));
    const auto guard = engine_guard();
    for (core::PrefetchJob& job : dropped) {
      engine_->on_prefetch_dropped(job.uid, job, now());
    }
  }
}

std::deque<core::PrefetchJob>::iterator LiveProxyServer::next_job_locked() {
  for (auto it = prefetch_queue_.begin(); it != prefetch_queue_.end(); ++it) {
    if (busy_users_.find(it->user) == busy_users_.end()) return it;
  }
  return prefetch_queue_.end();
}

void LiveProxyServer::prefetch_worker() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    queue_cv_.wait(lock, [this] {
      return stopping_.load() || next_job_locked() != prefetch_queue_.end();
    });
    if (stopping_.load()) return;
    const auto it = next_job_locked();
    core::PrefetchJob job = std::move(*it);
    prefetch_queue_.erase(it);
    queue_depth_->set(static_cast<std::int64_t>(prefetch_queue_.size()));
    busy_users_.insert(job.user);
    ++prefetch_active_;
    lock.unlock();

    obs::RequestTrace trace;
    trace.user = job.user;
    trace.method = job.request.method;
    trace.target = job.request.uri.path;
    trace.outcome = "prefetch";
    trace.start_us = now();
    const SimTime started = now();
    const http::Response response = fetch_upstream(job.request);
    const SimTime fetched = now();
    prefetch_fetch_us_->record(fetched - started);
    trace.add_span("fetch", started, fetched, "sig=" + job.sig_id);
    core::Decision chained;
    {
      const auto guard = engine_guard();
      engine_->on_prefetch_response(job.uid, job, response, now(),
                                    to_ms(now() - started), &chained);
    }
    trace.add_span("learn", fetched, now());
    trace.end_us = now();
    traces_.push(std::move(trace));
    enqueue_jobs(std::move(chained.prefetches));  // chained prefetching

    lock.lock();
    busy_users_.erase(job.user);
    --prefetch_active_;
    if (prefetch_queue_.empty() && prefetch_active_ == 0) idle_cv_.notify_all();
    // Releasing this user may make its next queued job eligible for another
    // worker that went to sleep while the user was busy.
    queue_cv_.notify_all();
  }
}

void LiveProxyServer::drain_prefetches() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [this] {
    return stopping_.load() || (prefetch_queue_.empty() && prefetch_active_ == 0);
  });
}

}  // namespace appx::net
