#include "net/servers.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <utility>

#include "core/persist.hpp"
#include "http/view.hpp"
#include "net/rlimit.hpp"
#include "net/syscount.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::net {
namespace {

constexpr std::size_t kReadChunk = 16 * 1024;
// Completion-mode read buffer: a per-connection member (it must outlive the
// in-flight recv op), so sized for requests rather than throughput — 4 KiB
// keeps 10k connections at ~40 MB instead of 160 MB.
constexpr std::size_t kCompletionReadChunk = 4 * 1024;
// Max chunks per sendmsg batch; a response is at most head + body, so 8
// covers several pipelined responses in one syscall.
constexpr std::size_t kMaxIov = 8;
// While a request is in flight, pipelined bytes keep flowing into the
// parser's staging buffer (under pin()) up to this budget; only a client
// flooding past it has read interest dropped (and the kernel socket buffer
// backpressures it). Keeping the mask stable this way removes the
// epoll_ctl(MOD) pair every request used to pay.
constexpr std::size_t kMaxStagedBytes = 64 * 1024;
// After rejecting a message (431/413) we half-close and keep draining the
// peer's in-flight bytes this long so the FIN carries the status cleanly.
constexpr auto kDiscardDrain = std::chrono::milliseconds(500);

http::Response status_response(int status, std::string body) {
  http::Response resp;
  resp.status = status;
  resp.reason = std::string(http::reason_phrase(status));
  resp.body = std::move(body);
  return resp;
}

// Canned upstream-failure responses, built once and shared: serving one is a
// refcount bump — the body is a static slab, never copied or re-assembled
// per failure (DESIGN.md §5h). `body` must have static storage duration.
std::shared_ptr<const http::Response> make_canned(int status, std::string_view body) {
  auto resp = std::make_shared<http::Response>();
  resp->status = status;
  resp->reason = std::string(http::reason_phrase(status));
  resp->body = http::BodySlab::static_bytes(body);
  return resp;
}
const std::shared_ptr<const http::Response>& no_upstream_response() {
  static const auto resp = make_canned(502, R"({"error":"no upstream for host"})");
  return resp;
}
const std::shared_ptr<const http::Response>& shutting_down_response() {
  static const auto resp = make_canned(502, R"({"error":"proxy shutting down"})");
  return resp;
}
const std::shared_ptr<const http::Response>& upstream_error_response() {
  static const auto resp = make_canned(502, R"({"error":"upstream error"})");
  return resp;
}
const std::shared_ptr<const http::Response>& upstream_timeout_response() {
  static const auto resp = make_canned(504, R"({"error":"upstream timeout"})");
  return resp;
}
const std::shared_ptr<const http::Response>& internal_error_response() {
  static const auto resp = make_canned(500, R"({"error":"internal error"})");
  return resp;
}

// Full wire bytes of the bodyless reject statuses (431/413), rendered once;
// the reject path enqueues them as static slabs with zero per-use work.
std::string_view canned_reject_wire(int status) {
  static const std::string wire_431 = status_response(431, "").serialize_head();
  static const std::string wire_413 = status_response(413, "").serialize_head();
  return status == 431 ? std::string_view(wire_431) : std::string_view(wire_413);
}

// Shared admin surface: /appx/metrics (Prometheus text), /appx/metrics.json.
bool is_admin_path(std::string_view path) { return path.rfind("/appx/", 0) == 0; }

http::Response metrics_response(const obs::MetricsRegistry& registry, std::string_view path) {
  if (path == "/appx/metrics") {
    http::Response resp = status_response(200, registry.to_prometheus());
    resp.headers.set("Content-Type", "text/plain; version=0.0.4");
    return resp;
  }
  if (path == "/appx/metrics.json") {
    http::Response resp = status_response(200, registry.to_json().dump(2));
    resp.headers.set("Content-Type", "application/json");
    return resp;
  }
  return status_response(404, R"({"error":"unknown admin endpoint"})");
}

}  // namespace

// --- Conn ----------------------------------------------------------------------------
//
// One client connection on one event loop. All state is loop-thread-only
// except the request-scoped members (`sessions`, the request view, arena and
// scratch request) — touched only by the single worker owning the in-flight
// request; `processing_` serializes requests per connection and the worker
// queue/loop post provide the hand-off ordering — and complete() (any
// thread; it posts the response to the loop).
//
// Zero-copy data plane (DESIGN.md §5h): a complete message is parsed into a
// RequestView over the parser's pinned buffer (header array in the
// connection arena); the buffer stays pinned until complete(). Responses
// leave as (head, body) chunk pairs — the head rendered into a pooled
// per-connection buffer, the body a refcounted slab — so serving a cached
// response copies no payload bytes between the cache and the socket iovec.
class Conn : public std::enable_shared_from_this<Conn> {
 public:
  // Called on the loop thread for each complete parsed request, which rides
  // on the connection as request_view() (and materialize_request() for an
  // owning form). The sink must eventually call complete() exactly once per
  // dispatched request; the view and scratch request stay valid until then.
  using Dispatch = std::function<void(const std::shared_ptr<Conn>&)>;
  using OnClosed = std::function<void(int fd)>;

  Conn(EventLoop* loop, TcpStream stream, ReaderLimits limits, Duration idle_timeout,
       Dispatch dispatch, OnClosed on_closed, obs::Histogram* first_byte_hist)
      : loop_(loop),
        stream_(std::move(stream)),
        parser_(limits),
        idle_timeout_(idle_timeout),
        dispatch_(std::move(dispatch)),
        on_closed_(std::move(on_closed)),
        first_byte_hist_(first_byte_hist),
        completion_(loop->supports_completions()),
        last_activity_(std::chrono::steady_clock::now()),
        accepted_(last_activity_) {}

  int fd() const { return stream_.fd(); }

  // Per-(connection, user) resolved engine sessions (see LiveProxyServer).
  std::map<std::string, core::Session, std::less<>> sessions;

  // Loop thread: register with the loop (completion mode: submit the first
  // recv instead — no readiness registration exists) and arm the idle timer.
  void start() {
    if (completion_) {
      submit_read();
    } else {
      events_ = EPOLLIN;
      loop_->add_fd(fd(), events_,
                    [self = shared_from_this()](std::uint32_t ev) { self->on_events(ev); });
    }
    arm_idle_timer(last_activity_ + std::chrono::microseconds(idle_timeout_));
  }

  // The in-flight request as zero-copy views over the pinned parser buffer.
  // Valid from dispatch until the matching complete().
  const http::RequestView& request_view() const { return view_; }

  // The in-flight request in owning form, materialized on first use into a
  // per-connection scratch whose string/vector capacity is reused across
  // requests — warm keep-alive traffic materializes without allocating.
  http::Request& materialize_request() {
    if (!materialized_) {
      http::materialize(view_, req_scratch_);
      materialized_ = true;
    }
    return req_scratch_;
  }

  // Any thread: hand back the response for the dispatched request. The body
  // slab is enqueued by reference (no copy); the head is rendered on the
  // loop thread into a pooled buffer. `extra_header_line` must point at
  // storage with static lifetime (callers pass literals like
  // "X-Appx-Cache: hit"); it is emitted after the stored headers.
  void complete(http::Response response, std::string_view extra_header_line = {}) {
    if (loop_->on_loop_thread()) {
      finish_request(response, extra_header_line);
      return;
    }
    loop_->post([self = shared_from_this(), response = std::move(response),
                 extra_header_line]() mutable {
      self->finish_request(response, extra_header_line);
    });
  }

  // Same, for a response shared with the engine's cache (or a canned
  // singleton): no copy is taken — the write queue holds the refcount.
  void complete(std::shared_ptr<const http::Response> response,
                std::string_view extra_header_line = {}) {
    if (loop_->on_loop_thread()) {
      finish_request(*response, extra_header_line);
      return;
    }
    loop_->post([self = shared_from_this(), response = std::move(response), extra_header_line] {
      self->finish_request(*response, extra_header_line);
    });
  }

  // Loop thread (server stop path).
  void close_now() { close(); }

 private:
  void on_events(std::uint32_t ev) {
    if ((ev & EPOLLERR) != 0) {
      close();
      return;
    }
    if ((ev & (EPOLLIN | EPOLLHUP)) != 0) handle_readable();
    if (!closed_ && (ev & EPOLLOUT) != 0) flush();
    if (closed_) return;
    pump();
    finish_io_round();
  }

  // Drain the socket. Bytes feed the parser; in discard mode (after a
  // 431/413) they are sunk unparsed. A short read means the buffer out-ran
  // the socket: stop there instead of paying a recv that would return EAGAIN
  // — level-triggered epoll re-reports anything that arrives later.
  void handle_readable() {
    char buf[kReadChunk];
    while (!closed_) {
      sys::count(sys::Op::kRead);
      const ssize_t n = ::recv(fd(), buf, sizeof buf, 0);
      if (n > 0) {
        if (!discarding_) parser_.append(buf, static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < sizeof buf) return;
        continue;
      }
      if (n == 0) {
        peer_eof_ = true;
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close();
      return;
    }
  }

  // --- completion-mode I/O (uring backend) ----------------------------------
  //
  // The same state machine as the readiness path, but driven by op
  // completions: exactly one recv and at most one sendmsg are in flight per
  // connection at any time, their buffers owned by the connection (DESIGN.md
  // §5l). Submissions batch into the loop's next io_uring_enter.

  void submit_read() {
    if (closed_ || read_inflight_ || !want_read()) return;
    if (rbuf_ == nullptr) rbuf_ = std::make_unique<char[]>(kCompletionReadChunk);
    read_inflight_ = true;
    loop_->submit_recv(fd(), rbuf_.get(), kCompletionReadChunk,
                       [self = shared_from_this()](int res) { self->on_read_complete(res); });
  }

  void on_read_complete(int res) {
    read_inflight_ = false;
    if (closed_) return;
    if (res > 0) {
      if (!discarding_) parser_.append(rbuf_.get(), static_cast<std::size_t>(res));
    } else if (res == 0) {
      peer_eof_ = true;
    } else if (res == -ECANCELED || res == -EBADF) {
      return;  // cancelled by a racing close
    } else if (res != -EINTR && res != -EAGAIN) {
      close();
      return;
    }
    pump();
    if (closed_) return;
    finish_io_round();
  }

  // One sendmsg op over the head of the pending-write queue. The iovec array
  // and msghdr are members: the kernel reads them after this frame returns.
  void submit_write() {
    if (closed_ || write_inflight_ || out_.empty()) return;
    std::size_t niov = 0;
    std::size_t offset = out_off_;
    for (const OutChunk& chunk : out_) {
      if (niov == kMaxIov) break;
      const std::string_view bytes = chunk.bytes();
      wiov_[niov].iov_base = const_cast<char*>(bytes.data() + offset);
      wiov_[niov].iov_len = bytes.size() - offset;
      ++niov;
      offset = 0;
    }
    wmsg_ = msghdr{};
    wmsg_.msg_iov = wiov_;
    wmsg_.msg_iovlen = niov;
    write_inflight_ = true;
    loop_->submit_sendmsg(fd(), &wmsg_,
                          [self = shared_from_this()](int res) { self->on_write_complete(res); });
  }

  void on_write_complete(int res) {
    write_inflight_ = false;
    if (closed_) return;
    if (res < 0) {
      if (res == -EINTR || res == -EAGAIN) {
        submit_write();
        return;
      }
      if (res == -ECANCELED || res == -EBADF) return;
      close();
      return;
    }
    record_first_byte(res);
    consume_out(static_cast<std::size_t>(res));
    if (!out_.empty()) {
      submit_write();
      return;
    }
    finish_io_round();
  }

  // Dispatch buffered complete messages, one in flight at a time. The
  // in_pump_ guard breaks recursion when an inline dispatch (admin, origin)
  // completes synchronously: its finish_request() sees the guard and the
  // outer loop here picks up the next pipelined message instead.
  void pump() {
    if (in_pump_ || closed_) return;
    in_pump_ = true;
    while (!closed_ && !processing_ && !discarding_) {
      std::optional<std::string_view> wire;
      try {
        wire = parser_.next_message();
      } catch (const MessageTooLargeError& e) {
        reject(e.suggested_status());
        break;
      } catch (const ParseError& e) {
        log_debug("net.conn") << "malformed message: " << e.what();
        close();
        break;
      }
      if (!wire) break;
      try {
        arena_.reset();
        view_ = http::parse_request_view(*wire, arena_);
      } catch (const ParseError& e) {
        log_debug("net.conn") << "malformed request: " << e.what();
        close();
        break;
      }
      materialized_ = false;
      // A complete request is activity; a dribbling partial header (slow
      // loris) is not, so the idle timer keeps counting across it.
      touch();
      processing_ = true;
      // Pin the buffer under the outstanding views: bytes arriving while the
      // request is in flight (EPOLLHUP-driven drains read even with EPOLLIN
      // masked off) are staged aside instead of reallocating it.
      parser_.pin();
      dispatch_(shared_from_this());
    }
    in_pump_ = false;
  }

  // Queue an error status for an oversized message, then switch to discard
  // mode: sink the peer's remaining bytes and close after a bounded drain so
  // the FIN carries the status instead of an RST racing unread input.
  void reject(int status) {
    out_.push_back(OutChunk::canned(canned_reject_wire(status)));
    discarding_ = true;
    parser_.reset();
    flush();
  }

  // Loop thread: append the response for the in-flight request and resume
  // reading/dispatching.
  void finish_request(const http::Response& response, std::string_view extra_header_line) {
    if (closed_) return;  // connection died while the worker ran; drop
    processing_ = false;
    parser_.unpin();  // views are dead; merge bytes staged during the request
    std::string head = take_head_buffer();
    response.serialize_head_into(head, extra_header_line);
    out_.push_back(OutChunk::head(std::move(head)));
    if (!response.body.empty()) out_.push_back(OutChunk::body(response.body));
    touch();
    flush();
    if (closed_) return;
    pump();
    finish_io_round();
  }

  // Write as much of the pending queue as the socket accepts, batching
  // chunks (response head + body, plus any pipelined successors) into one
  // sendmsg. EAGAIN leaves the rest for EPOLLOUT. Completion mode submits
  // the batch as an op instead and continues from on_write_complete.
  void flush() {
    if (completion_) {
      submit_write();
      return;
    }
    while (!out_.empty() && !closed_) {
      struct iovec iov[kMaxIov];
      std::size_t niov = 0;
      std::size_t offset = out_off_;
      for (const OutChunk& chunk : out_) {
        if (niov == kMaxIov) break;
        const std::string_view bytes = chunk.bytes();
        iov[niov].iov_base = const_cast<char*>(bytes.data() + offset);
        iov[niov].iov_len = bytes.size() - offset;
        ++niov;
        offset = 0;
      }
      struct msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = niov;
      sys::count(sys::Op::kWrite);
      const ssize_t n = ::sendmsg(fd(), &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        close();
        return;
      }
      record_first_byte(n);
      consume_out(static_cast<std::size_t>(n));
    }
  }

  void record_first_byte(ssize_t n) {
    if (first_byte_hist_ != nullptr && n > 0) {
      first_byte_hist_->record(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - accepted_)
                                   .count());
      first_byte_hist_ = nullptr;
    }
  }

  // Pop `remaining` written bytes off the front of the pending-write queue,
  // recycling head buffers as they complete.
  void consume_out(std::size_t remaining) {
    while (remaining > 0) {
      OutChunk& front = out_.front();
      const std::size_t left = front.bytes().size() - out_off_;
      if (remaining >= left) {
        remaining -= left;
        out_off_ = 0;
        if (front.kind == OutChunk::Kind::Text) recycle_head_buffer(std::move(front.text));
        out_.pop_front();
      } else {
        out_off_ += remaining;
        remaining = 0;
      }
    }
  }

  // End-of-round bookkeeping: progress the discard sequence, close on
  // drained EOF, and reconcile read interest (epoll mask / next recv op)
  // with what we now want.
  void finish_io_round() {
    if (closed_) return;
    if (discarding_ && out_.empty() && !write_inflight_ && !write_shutdown_) {
      stream_.shutdown_write();
      write_shutdown_ = true;
      drain_timer_ = loop_->add_timer(std::chrono::steady_clock::now() + kDiscardDrain,
                                      [self = shared_from_this()] { self->close(); });
    }
    if (peer_eof_ && out_.empty() && !write_inflight_ && !processing_) {
      close();
      return;
    }
    if (completion_) {
      submit_read();
    } else {
      update_events();
    }
  }

  // Reading continues while a request is being processed — pipelined bytes
  // stage under the parser pin, so the read mask stays stable and the warm
  // path pays no epoll_ctl — until the staged budget is exhausted; past it a
  // flooding client loses read interest and the kernel socket buffer
  // backpressures it (the blocking runtime's behaviour, one budget later).
  // Discard mode always reads, to drain the rejected message.
  bool want_read() const {
    if (peer_eof_) return false;
    if (discarding_) return true;
    return !processing_ || parser_.pending_bytes() < kMaxStagedBytes;
  }

  void update_events() {
    const std::uint32_t desired =
        (want_read() ? static_cast<std::uint32_t>(EPOLLIN) : 0U) |
        (!out_.empty() ? static_cast<std::uint32_t>(EPOLLOUT) : 0U);
    if (desired == events_) return;
    events_ = desired;
    loop_->mod_fd(fd(), desired);
  }

  void touch() { last_activity_ = std::chrono::steady_clock::now(); }

  void arm_idle_timer(std::chrono::steady_clock::time_point when) {
    if (idle_timeout_ <= 0) return;
    idle_timer_ = loop_->add_timer(when, [self = shared_from_this()] { self->on_idle(); });
  }

  void on_idle() {
    idle_timer_ = 0;
    if (closed_) return;
    const auto now = std::chrono::steady_clock::now();
    const auto deadline = last_activity_ + std::chrono::microseconds(idle_timeout_);
    if (processing_) {
      // A worker owns the request (bounded by the upstream deadline); give
      // the connection another full period.
      arm_idle_timer(now + std::chrono::microseconds(idle_timeout_));
      return;
    }
    if (now < deadline) {
      arm_idle_timer(deadline);  // touched since the timer was armed
      return;
    }
    close();
  }

  // One pending-write queue entry: either head text (a pooled per-connection
  // buffer, recycled once written) or payload bytes held by reference — a
  // refcounted body slab, or a canned wire with static lifetime. Payloads
  // are never copied into the queue.
  struct OutChunk {
    enum class Kind { Text, Slab };
    Kind kind = Kind::Text;
    std::string text;
    http::BodySlab slab;

    static OutChunk head(std::string t) {
      OutChunk c;
      c.text = std::move(t);
      return c;
    }
    static OutChunk body(const http::BodySlab& s) {
      OutChunk c;
      c.kind = Kind::Slab;
      c.slab = s;
      return c;
    }
    static OutChunk canned(std::string_view wire) {
      OutChunk c;
      c.kind = Kind::Slab;
      c.slab = http::BodySlab::static_bytes(wire);
      return c;
    }
    std::string_view bytes() const {
      return kind == Kind::Slab ? slab.view() : std::string_view(text);
    }
  };

  // Head buffers cycle between the write queue and this pool (loop-thread
  // only), so steady-state responses render their head into warm capacity.
  std::string take_head_buffer() {
    if (head_pool_.empty()) return {};
    std::string buf = std::move(head_pool_.back());
    head_pool_.pop_back();
    buf.clear();
    return buf;
  }

  void recycle_head_buffer(std::string&& buf) {
    if (head_pool_.size() < kHeadPoolMax) head_pool_.push_back(std::move(buf));
  }

  void close() {
    if (closed_) return;
    closed_ = true;
    if (idle_timer_ != 0) {
      loop_->cancel_timer(idle_timer_);
      idle_timer_ = 0;
    }
    if (drain_timer_ != 0) {
      loop_->cancel_timer(drain_timer_);
      drain_timer_ = 0;
    }
    const int conn_fd = fd();
    if (completion_) {
      // Cancel in-flight ops (their callbacks are dropped, the loop swallows
      // the CQEs) and release the registered-file slot before the fd closes.
      loop_->cancel_fd(conn_fd);
    } else {
      loop_->del_fd(conn_fd);
    }
    stream_ = TcpStream(Fd{});  // close the descriptor now, not at last ref
    // A submitted sendmsg op still references out_'s bytes and the member
    // iovecs; its pending callback holds a ref on this Conn past the CQE, so
    // deferring the clear to the destructor is what keeps the kernel's view
    // of those buffers valid.
    if (!write_inflight_) out_.clear();
    if (on_closed_) on_closed_(conn_fd);
  }

  static constexpr std::size_t kHeadPoolMax = 4;

  EventLoop* loop_;
  TcpStream stream_;
  HttpParser parser_;
  Duration idle_timeout_;
  Dispatch dispatch_;
  OnClosed on_closed_;
  obs::Histogram* first_byte_hist_;  // nulled after the first recorded write

  // Request-scoped state (owned by the dispatched handler until complete()):
  // arena backs the view's header array; the scratch request keeps its
  // capacity across materializations.
  util::Arena arena_;
  http::RequestView view_;
  http::Request req_scratch_;
  bool materialized_ = false;

  std::deque<OutChunk> out_;
  std::vector<std::string> head_pool_;
  std::size_t out_off_ = 0;  // bytes of out_.front() already written
  std::uint32_t events_ = 0;

  // Completion-mode state: op buffers owned by the connection so they
  // outlive the in-flight kernel ops (allocated lazily; epoll conns never
  // touch them).
  const bool completion_;
  bool read_inflight_ = false;
  bool write_inflight_ = false;
  std::unique_ptr<char[]> rbuf_;
  struct iovec wiov_[kMaxIov];
  struct msghdr wmsg_{};

  bool processing_ = false;
  bool peer_eof_ = false;
  bool discarding_ = false;
  bool write_shutdown_ = false;
  bool closed_ = false;
  bool in_pump_ = false;
  std::uint64_t idle_timer_ = 0;
  std::uint64_t drain_timer_ = 0;
  std::chrono::steady_clock::time_point last_activity_;
  std::chrono::steady_clock::time_point accepted_;
};

namespace {

// Level-triggered accept: drain every pending connection on the shard's
// listener. make_conn returns null to refuse (server stopping).
template <typename MakeConn>
void accept_pending(LoopShard* shard, const MakeConn& make_conn) {
  while (true) {
    TcpStream stream = shard->listener->accept_nonblocking();
    if (!stream.valid()) return;
    std::shared_ptr<Conn> conn = make_conn(shard, std::move(stream));
    if (conn == nullptr) continue;
    shard->conns[conn->fd()] = conn;
    conn->start();
  }
}

// Build one SO_REUSEPORT listener per shard on the shared port (the first
// binds it, possibly ephemeral) and start each shard's loop thread with its
// listener registered. Returns the bound port. `backlog` 0 = SOMAXCONN.
// `io_backend` picks the event-loop backend (resolve_io_backend names); an
// invalid or unsupported choice throws here, in the constructing thread.
template <typename MakeConn>
std::uint16_t start_shards(std::vector<std::unique_ptr<LoopShard>>& shards,
                           std::size_t loop_threads, std::uint16_t port, MakeConn make_conn,
                           int backlog = 0, std::string_view io_backend = {}) {
  const std::string backend = resolve_io_backend(io_backend);
  if (loop_threads == 0) {
    loop_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  std::uint16_t bound = port;
  shards.reserve(loop_threads);
  for (std::size_t i = 0; i < loop_threads; ++i) {
    auto shard = std::make_unique<LoopShard>();
    shard->loop = make_event_loop(backend);
    shard->listener = std::make_unique<TcpListener>(bound, /*reuse_port=*/true, backlog);
    if (i == 0) bound = shard->listener->port();
    shard->listener->set_nonblocking();
    shards.push_back(std::move(shard));
  }
  for (auto& shard_ptr : shards) {
    LoopShard* shard = shard_ptr.get();
    // Registration happens on the loop thread itself (fd/timer state is
    // loop-thread-only), before run() starts dispatching. A completion
    // backend takes the multishot-accept path: the kernel hands over ready
    // client fds with no readiness round-trip and no accept4 from us.
    shard->thread = std::thread([shard, make_conn] {
      const int listen_fd = shard->listener->fd();
      const bool completion =
          shard->loop->submit_accept(listen_fd, [shard, make_conn](int client_fd) {
            // SOCK_NONBLOCK|SOCK_CLOEXEC were applied by the accept op;
            // TCP_NODELAY matches accept_nonblocking().
            const int one = 1;
            ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            std::shared_ptr<Conn> conn = make_conn(shard, TcpStream(Fd(client_fd)));
            if (conn == nullptr) return;
            shard->conns[conn->fd()] = conn;
            conn->start();
          });
      if (!completion) {
        shard->loop->add_fd(listen_fd, EPOLLIN, [shard, make_conn](std::uint32_t) {
          accept_pending(shard, make_conn);
        });
      }
      shard->loop->run();
    });
  }
  return bound;
}

// Stop every shard: close the listener and all connections on each loop (the
// posted task is guaranteed to run in the loop's final drain), then join.
void stop_shards(std::vector<std::unique_ptr<LoopShard>>& shards) {
  for (auto& shard_ptr : shards) {
    LoopShard* shard = shard_ptr.get();
    shard->loop->post([shard] {
      if (shard->listener) {
        const int listen_fd = shard->listener->fd();
        shard->loop->del_fd(listen_fd);     // readiness accept path
        shard->loop->cancel_fd(listen_fd);  // completion accept path (no-op on epoll)
        shard->listener->close();
      }
      std::vector<std::shared_ptr<Conn>> conns;
      conns.reserve(shard->conns.size());
      for (auto& [fd, conn] : shard->conns) conns.push_back(conn);
      for (auto& conn : conns) conn->close_now();
    });
    shard->loop->stop();
  }
  for (auto& shard_ptr : shards) {
    if (shard_ptr->thread.joinable()) shard_ptr->thread.join();
  }
}

}  // namespace

// --- WorkerPool ----------------------------------------------------------------------

WorkerPool::WorkerPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

WorkerPool::~WorkerPool() { stop(); }

void WorkerPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;  // dropped; captured resources release via RAII
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::stop() {
  std::deque<std::function<void()>> discarded;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    discarded.swap(queue_);
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  // `discarded` destructs here, releasing captured connection handles.
}

std::size_t WorkerPool::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void WorkerPool::worker() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    try {
      task();
    } catch (const std::exception& e) {
      // Backstop: a leaked exception here would std::terminate the process.
      // Request handlers catch appx::Error themselves and answer 500; this
      // keeps the pool alive for anything that still slips through.
      log_error("net.worker") << "task threw: " << e.what();
    }
    task = nullptr;  // release captures before sleeping again
    lock.lock();
  }
}

// --- LiveOriginServer ----------------------------------------------------------------

LiveOriginServer::LiveOriginServer(apps::OriginServer* origin, std::uint16_t port,
                                   std::size_t loop_threads, std::string io_backend)
    : origin_(origin) {
  if (origin == nullptr) throw InvalidArgumentError("LiveOriginServer: null origin");
  requests_total_ = &registry_.counter("appx_origin_requests_total");
  serve_us_ = &registry_.histogram("appx_origin_serve_us");
  conns_gauge_ = &registry_.gauge("appx_origin_open_connections");
  port_ = start_shards(
      shards_, loop_threads, port,
      [this](LoopShard* shard, TcpStream stream) { return make_conn(shard, std::move(stream)); },
      /*backlog=*/0, io_backend);
}

LiveOriginServer::~LiveOriginServer() { stop(); }

void LiveOriginServer::stop() {
  if (stopping_.exchange(true)) return;
  stop_shards(shards_);
}

void LiveOriginServer::handle_request(const std::shared_ptr<Conn>& conn) {
  // Served inline on the loop thread: OriginServer::serve is a pure
  // internally-synchronized request->response mapping with no blocking I/O.
  if (is_admin_path(conn->request_view().path())) {
    conn->complete(metrics_response(registry_, conn->request_view().path()));
    return;
  }
  requests_total_->inc();
  const auto started = std::chrono::steady_clock::now();
  const http::Request& request = conn->materialize_request();
  try {
    http::Response response = origin_->serve(request);
    serve_us_->record(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count());
    ++served_;
    conn->complete(std::move(response));
  } catch (const Error& e) {
    // A request the app rejects (bad argument, invalid state) fails that one
    // exchange; an uncaught throw here would unwind the loop thread.
    log_warn("net.origin") << "serve failed: " << e.what();
    serve_us_->record(std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count());
    ++served_;
    conn->complete(internal_error_response());
  }
}

std::shared_ptr<Conn> LiveOriginServer::make_conn(LoopShard* shard, TcpStream stream) {
  if (stopping_.load()) return nullptr;
  auto conn = std::make_shared<Conn>(
      shard->loop.get(), std::move(stream), ReaderLimits{}, seconds(60),
      [this](const std::shared_ptr<Conn>& c) { handle_request(c); },
      [this, shard](int fd) {
        shard->conns.erase(fd);
        conns_gauge_->set(static_cast<std::int64_t>(open_conns_.fetch_sub(1) - 1));
      },
      /*first_byte_hist=*/nullptr);
  conns_gauge_->set(static_cast<std::int64_t>(open_conns_.fetch_add(1) + 1));
  return conn;
}

// --- LiveProxyServer ------------------------------------------------------------------

LiveProxyServer::LiveProxyServer(core::ProxyLike* engine, UpstreamMap upstreams,
                                 std::uint16_t port, core::EngineOptions options)
    : engine_(engine),
      upstreams_(std::move(upstreams)),
      options_(std::move(options)),
      traces_(options_.trace_ring_capacity) {
  if (engine == nullptr) throw InvalidArgumentError("LiveProxyServer: null engine");
  options_.validate().throw_if_error();
  // Fail fast on descriptor capacity: a high-connection run that would die
  // mid-load with EMFILE instead refuses to start, after attempting the
  // soft-limit raise (DESIGN.md §5i).
  ensure_fd_capacity(options_.min_file_descriptors).throw_if_error();
  // One scrape shows everything: transport-level metrics land in the engine's
  // registry when it has one, next to the engine's own counters.
  registry_ = engine_->metrics();
  if (registry_ == nullptr) registry_ = &own_registry_;
  client_hit_us_ =
      &registry_->histogram(obs::labeled("appx_client_latency_us", {{"path", "hit"}}));
  client_miss_us_ =
      &registry_->histogram(obs::labeled("appx_client_latency_us", {{"path", "miss"}}));
  prefetch_fetch_us_ = &registry_->histogram("appx_prefetch_fetch_us");
  accept_to_first_byte_us_ = &registry_->histogram("appx_accept_to_first_byte_us");
  admin_requests_ = &registry_->counter("appx_admin_requests_total");
  queue_dropped_total_ = &registry_->counter("appx_proxy_queue_dropped_total");
  queue_depth_ = &registry_->gauge("appx_proxy_prefetch_queue");
  // Imperative gauge (not a callback): the engine's registry outlives this
  // server, so a callback capturing `this` would dangle after stop().
  conns_gauge_ = &registry_->gauge("appx_loop_connections");
  if (!options_.metrics_snapshot_path.empty()) {
    snapshot_writer_ = std::make_unique<obs::SnapshotWriter>(
        registry_, options_.metrics_snapshot_path, options_.metrics_snapshot_interval);
  }
  if (!options_.state_snapshot_path.empty()) {
    // Imperative gauges for the same reason as conns_gauge_ above.
    state_bytes_gauge_ = &registry_->gauge("appx_state_snapshot_bytes");
    state_last_ms_gauge_ = &registry_->gauge("appx_state_snapshot_last_unix_ms");
    restore_engine_state();
    state_writer_ = std::make_unique<obs::SnapshotWriter>(
        [this] { return serialize_engine_state(); }, options_.state_snapshot_path,
        options_.state_snapshot_interval);
  }
  pool_ = std::make_unique<UpstreamPool>(
      UpstreamPool::Options{options_.upstream_pool_per_host, options_.upstream_idle_timeout,
                            options_.connect_timeout},
      registry_);
  std::size_t request_workers = options_.request_workers;
  if (request_workers == 0) {
    // Request workers block on origin I/O, so they outnumber the loops.
    request_workers = std::max<std::size_t>(4, 2 * std::thread::hardware_concurrency());
  }
  workers_ = std::make_unique<WorkerPool>(request_workers);
  port_ = start_shards(
      shards_, options_.loop_threads, port,
      [this](LoopShard* shard, TcpStream stream) { return make_conn(shard, std::move(stream)); },
      options_.listen_backlog, options_.io_backend);
  prefetchers_.reserve(options_.prefetch_workers);
  for (std::size_t i = 0; i < options_.prefetch_workers; ++i) {
    prefetchers_.emplace_back([this] { prefetch_worker(); });
  }
}

LiveProxyServer::~LiveProxyServer() { stop(); }

std::shared_ptr<Conn> LiveProxyServer::make_conn(LoopShard* shard, TcpStream stream) {
  if (stopping_.load()) return nullptr;
  auto conn = std::make_shared<Conn>(
      shard->loop.get(), std::move(stream),
      ReaderLimits{options_.reader_limits.max_head_bytes, options_.reader_limits.max_body_bytes},
      options_.conn_idle_timeout,
      [this](const std::shared_ptr<Conn>& c) { dispatch(c); },
      [this, shard](int fd) {
        shard->conns.erase(fd);
        conns_gauge_->set(static_cast<std::int64_t>(open_conns_.fetch_sub(1) - 1));
      },
      accept_to_first_byte_us_);
  conns_gauge_->set(static_cast<std::int64_t>(open_conns_.fetch_add(1) + 1));
  return conn;
}

std::unique_lock<std::mutex> LiveProxyServer::engine_guard() {
  // A thread-safe engine (the sharded runtime) synchronises itself per shard;
  // funnelling its events through one server mutex would serialise exactly
  // the work sharding parallelised. Hand back an empty guard instead.
  if (engine_->thread_safe()) return std::unique_lock<std::mutex>();
  return std::unique_lock<std::mutex>(engine_mutex_);
}

void LiveProxyServer::stop() {
  if (stopping_.exchange(true)) return;
  if (snapshot_writer_) {
    snapshot_writer_->write_now();  // final state, not up to 1 interval stale
    snapshot_writer_->stop();
  }
  if (state_writer_) {
    state_writer_->write_now();  // a clean shutdown leaves a fresh snapshot
    state_writer_->stop();
  }
  // Unblock in-flight upstream fetches first: workers and prefetchers stuck
  // reading a wedged origin fail over to canned 502s immediately.
  pool_->shutdown();
  stop_shards(shards_);
  workers_->stop();
  queue_cv_.notify_all();
  idle_cv_.notify_all();
  for (std::thread& t : prefetchers_) {
    if (t.joinable()) t.join();
  }
  // Resolve jobs still queued at shutdown so the engine's outstanding
  // windows balance even if it is inspected (or reused) after stop().
  std::deque<core::PrefetchJob> leftover;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    leftover.swap(prefetch_queue_);
  }
  if (!leftover.empty()) {
    const auto guard = engine_guard();
    for (core::PrefetchJob& job : leftover) {
      try {
        engine_->on_prefetch_dropped(job.uid, job, now());
      } catch (const Error& e) {
        // stop() runs from the destructor; a throwing engine must not
        // escape it (implicitly noexcept) and terminate.
        log_warn("net.proxy") << "prefetch drop notification failed: " << e.what();
      }
    }
  }
}

SimTime LiveProxyServer::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::shared_ptr<const http::Response> LiveProxyServer::fetch_upstream(
    const http::Request& request) {
  const auto it = upstreams_.find(request.uri.host);
  if (it == upstreams_.end()) return no_upstream_response();
  if (stopping_.load()) return shutting_down_response();
  for (int attempt = 0; attempt < 2; ++attempt) {
    UpstreamPool::Lease lease;
    bool reused = false;
    try {
      lease = pool_->acquire("127.0.0.1", it->second, /*force_fresh=*/attempt > 0);
      reused = lease.reused();
      TcpStream& upstream = lease.stream();
      if (options_.request_deadline > 0) {
        upstream.set_deadline(std::chrono::steady_clock::now() +
                              std::chrono::microseconds(options_.request_deadline));
      }
      upstream.set_read_timeout(options_.io_timeout);
      upstream.set_write_timeout(options_.io_timeout);
      write_request(upstream, request);
      HttpReader reader(&upstream);
      auto response = reader.read_response();
      if (!response) throw Error("upstream closed without responding");
      // Reusable only when the exchange ended exactly at a message boundary.
      pool_->release(std::move(lease), reader.pending_bytes() == 0);
      // Shared from here on: the engine's cache, the learning event and the
      // client's write queue all reference these bytes, never copy them.
      return std::make_shared<const http::Response>(std::move(*response));
    } catch (const TimeoutError& e) {
      pool_->release(std::move(lease), false);
      // A dead or wedged origin degrades to 504 instead of hanging the worker.
      log_warn("net.proxy") << "upstream timeout: " << e.what();
      return upstream_timeout_response();
    } catch (const Error& e) {
      pool_->release(std::move(lease), false);
      if (reused && attempt == 0) {
        // A pooled connection the origin closed under us (the health check
        // raced its FIN): retry once on a fresh connect, transparently.
        pool_->note_retry();
        log_debug("net.proxy") << "stale pooled upstream, retrying fresh: " << e.what();
        continue;
      }
      log_warn("net.proxy") << "upstream error: " << e.what();
      return upstream_error_response();
    }
  }
  return upstream_error_response();  // unreachable: attempt 1 always returns
}

http::Response LiveProxyServer::handle_admin(const http::Request& request) {
  admin_requests_->inc();
  if (request.uri.path == "/appx/trace") {
    http::Response resp = status_response(200, traces_.to_json().dump(2));
    resp.headers.set("Content-Type", "application/json");
    return resp;
  }
  if (request.uri.path == "/appx/snapshot") {
    // On-demand learned-state dump (the `appx snapshot` subcommand): the
    // same bytes the periodic writer persists, served over the admin port.
    std::vector<std::uint8_t> bytes = serialize_engine_state();
    http::Response resp = status_response(
        200, std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    resp.headers.set("Content-Type", "application/octet-stream");
    return resp;
  }
  if (request.uri.path == "/appx/export") {
    // One user's learned shard, for ring handoff (DESIGN.md §5k).
    const std::optional<std::string> user = request.uri.query_param("user");
    if (!user || user->empty()) {
      return status_response(400, R"({"error":"missing user= query parameter"})");
    }
    std::vector<std::uint8_t> blob;
    {
      const auto guard = engine_guard();
      blob = engine_->export_user(*user);
    }
    if (blob.empty()) return status_response(404, R"({"error":"unknown user"})");
    http::Response resp = status_response(
        200, std::string(reinterpret_cast<const char*>(blob.data()), blob.size()));
    resp.headers.set("Content-Type", "application/octet-stream");
    return resp;
  }
  if (request.uri.path == "/appx/import") {
    if (request.method != "POST") {
      return status_response(405, R"({"error":"import requires POST"})");
    }
    const std::vector<std::uint8_t> blob(request.body.begin(), request.body.end());
    try {
      bool imported = false;
      {
        const auto guard = engine_guard();
        imported = engine_->import_user(blob, now());
      }
      if (!imported) return status_response(409, R"({"imported":false})");
      return status_response(200, R"({"imported":true})");
    } catch (const Error& e) {
      // Corrupt or future-version blobs are the sender's problem, not ours.
      log_warn("net.proxy") << "user import rejected: " << e.what();
      return status_response(400, R"({"error":"malformed user blob"})");
    }
  }
  return metrics_response(*registry_, request.uri.path);
}

std::vector<std::uint8_t> LiveProxyServer::serialize_engine_state() {
  core::SnapshotBuilder builder;
  {
    const auto guard = engine_guard();
    engine_->snapshot_to(builder);
  }
  std::vector<std::uint8_t> bytes = builder.finish();
  if (state_bytes_gauge_ != nullptr) {
    state_bytes_gauge_->set(static_cast<std::int64_t>(bytes.size()));
    state_last_ms_gauge_->set(std::chrono::duration_cast<std::chrono::milliseconds>(
                                  std::chrono::system_clock::now().time_since_epoch())
                                  .count());
  }
  return bytes;
}

void LiveProxyServer::restore_engine_state() {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_file(options_.state_snapshot_path);
  } catch (const Error&) {
    log_info("net.proxy") << "no state snapshot at " << options_.state_snapshot_path
                          << "; cold start";
    return;
  }
  try {
    const core::SnapshotView view(bytes);
    std::size_t users = 0;
    {
      const auto guard = engine_guard();
      users = engine_->restore_from(view, now());
    }
    log_info("net.proxy") << "warm restart: restored " << users << " users from "
                          << options_.state_snapshot_path << " (" << bytes.size()
                          << " bytes)";
    state_bytes_gauge_->set(static_cast<std::int64_t>(bytes.size()));
    struct stat st{};
    if (::stat(options_.state_snapshot_path.c_str(), &st) == 0) {
      state_last_ms_gauge_->set(static_cast<std::int64_t>(st.st_mtime) * 1000);
    }
  } catch (const Error& e) {
    // A corrupt or future-version snapshot must never take the node down:
    // log it, start cold, and let the periodic writer replace the file.
    log_warn("net.proxy") << "state snapshot restore failed (" << e.what()
                          << "); cold start";
  }
}

void LiveProxyServer::dispatch(const std::shared_ptr<Conn>& conn) {
  const SimTime received = now();
  // Admin requests (metrics scrapes, trace dumps) bypass the engine: they
  // must not create user state or perturb learning. Served inline — no
  // blocking work involved. The raw-target path check is exact for the
  // origin-form requests the admin surface is scraped with.
  if (is_admin_path(conn->request_view().path())) {
    const http::Request& request = conn->materialize_request();
    obs::RequestTrace trace;
    trace.user = "-";
    trace.method = request.method;
    trace.target = request.uri.path;
    trace.outcome = "admin";
    trace.start_us = received;
    http::Response resp = handle_admin(request);
    trace.end_us = now();
    traces_.push(std::move(trace));
    conn->complete(std::move(resp));
    return;
  }
  workers_->submit([this, conn, received] {
    try {
      process_request(conn.get(), received);
    } catch (const Error& e) {
      // Engine exceptions (invalid argument/state on a reachable path) fail
      // the one request as a 500 instead of escaping the worker thread.
      log_warn("net.proxy") << "request failed: " << e.what();
      conn->complete(internal_error_response());
    }
  });
}

void LiveProxyServer::process_request(Conn* conn, SimTime received) {
  // One logical user per connection source; for the loopback demo each
  // client identifies itself with an X-Appx-User header (falling back to a
  // shared id). A production front end would key on client address.
  //
  // The user is resolved into a core::Session once per (connection, user)
  // pair, cached on the connection; subsequent requests reuse the interned
  // UserId so steady-state events skip the name lookup (and, on the sharded
  // runtime, go straight to the owning shard). The cache is safe lock-free:
  // a connection has at most one request in flight, so one worker touches it
  // at a time, hand-offs sequenced through the loop.
  //
  // The user name is read from the zero-copy view (no header-value copy);
  // the owning request is materialized into the connection's reusable
  // scratch only after that, for the engine.
  const std::string_view user = conn->request_view().header("X-Appx-User").value_or("default");

  auto session_it = conn->sessions.find(user);
  if (session_it == conn->sessions.end()) {
    const auto resolve_guard = engine_guard();
    session_it =
        conn->sessions.emplace(std::string(user), engine_->session(std::string(user), now()))
            .first;
  }
  core::Session& session = session_it->second;

  http::Request& upstream_request = conn->materialize_request();
  upstream_request.headers.remove("X-Appx-User");
  // Origin-form request targets carry no scheme; this front end stands in
  // for the TLS-terminating proxy of the paper's deployment model, so
  // normalise to https for signature matching and cache identity.
  if (upstream_request.uri.scheme.empty()) upstream_request.uri.scheme = "https";

  obs::RequestTrace trace;
  trace.user = user;
  trace.method = upstream_request.method;
  trace.target = upstream_request.uri.path;
  trace.start_us = received;

  core::Decision decision;
  {
    const auto guard = engine_guard();
    decision = session.on_request(upstream_request, now());
  }
  trace.add_span("decide", received, now());
  if (decision.served) {
    // The served response stays shared with the proxy's cache: the write
    // queue holds the refcount and the hit marker is stamped into the head
    // at serialize time, so no payload byte is copied between the cache and
    // the socket iovec.
    trace.outcome = "hit";
    trace.end_us = now();
    client_hit_us_->record(trace.end_us - received);
    traces_.push(std::move(trace));
    enqueue_jobs(std::move(decision.prefetches));
    conn->complete(std::move(decision.served), "X-Appx-Cache: hit");
    return;
  }
  enqueue_jobs(std::move(decision.prefetches));

  const SimTime fetch_start = now();
  std::shared_ptr<const http::Response> response = fetch_upstream(upstream_request);
  trace.add_span("forward", fetch_start, now(), "status=" + std::to_string(response->status));
  const SimTime learn_start = now();
  core::Decision learned;
  {
    const auto guard = engine_guard();
    learned = session.on_response(upstream_request, *response, now());
  }
  trace.add_span("learn", learn_start, now());
  enqueue_jobs(std::move(learned.prefetches));
  trace.outcome = response->status >= 500 ? "error" : "miss";
  trace.end_us = now();
  client_miss_us_->record(trace.end_us - received);
  traces_.push(std::move(trace));
  conn->complete(std::move(response), "X-Appx-Cache: miss");
}

void LiveProxyServer::enqueue_jobs(std::vector<core::PrefetchJob> jobs) {
  if (jobs.empty()) return;
  std::vector<core::PrefetchJob> dropped;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (core::PrefetchJob& job : jobs) {
      prefetch_queue_.push_back(std::move(job));
    }
    // Bounded queue: shed the lowest-priority job first so a burst of
    // low-value arrivals cannot push out a high-value job already waiting.
    // The first minimum wins ties, which sheds the oldest among equals —
    // the job most likely to be stale by the time a worker reaches it.
    while (options_.max_prefetch_queue > 0 &&
           prefetch_queue_.size() > options_.max_prefetch_queue) {
      const auto victim = std::min_element(
          prefetch_queue_.begin(), prefetch_queue_.end(),
          [](const core::PrefetchJob& a, const core::PrefetchJob& b) {
            return a.priority < b.priority;
          });
      dropped.push_back(std::move(*victim));
      prefetch_queue_.erase(victim);
    }
    queue_depth_->set(static_cast<std::int64_t>(prefetch_queue_.size()));
  }
  queue_cv_.notify_all();
  if (!dropped.empty()) {
    queue_dropped_ += dropped.size();
    queue_dropped_total_->add(static_cast<std::int64_t>(dropped.size()));
    const auto guard = engine_guard();
    for (core::PrefetchJob& job : dropped) {
      try {
        engine_->on_prefetch_dropped(job.uid, job, now());
      } catch (const Error& e) {
        log_warn("net.proxy") << "prefetch drop notification failed: " << e.what();
      }
    }
  }
}

std::deque<core::PrefetchJob>::iterator LiveProxyServer::next_job_locked() {
  for (auto it = prefetch_queue_.begin(); it != prefetch_queue_.end(); ++it) {
    if (busy_users_.find(it->user) == busy_users_.end()) return it;
  }
  return prefetch_queue_.end();
}

void LiveProxyServer::prefetch_worker() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  while (true) {
    queue_cv_.wait(lock, [this] {
      return stopping_.load() || next_job_locked() != prefetch_queue_.end();
    });
    if (stopping_.load()) return;
    const auto it = next_job_locked();
    core::PrefetchJob job = std::move(*it);
    prefetch_queue_.erase(it);
    queue_depth_->set(static_cast<std::int64_t>(prefetch_queue_.size()));
    busy_users_.insert(job.user);
    ++prefetch_active_;
    lock.unlock();

    obs::RequestTrace trace;
    trace.user = job.user;
    trace.method = job.request.method;
    trace.target = job.request.uri.path;
    trace.outcome = "prefetch";
    trace.start_us = now();
    const SimTime started = now();
    core::Decision chained;
    try {
      // Shares the keep-alive pool with the miss path: prefetch fan-out rides
      // warm origin connections instead of causing a connect storm.
      const std::shared_ptr<const http::Response> response = fetch_upstream(job.request);
      const SimTime fetched = now();
      prefetch_fetch_us_->record(fetched - started);
      trace.add_span("fetch", started, fetched, "sig=" + job.sig_id);
      {
        const auto guard = engine_guard();
        engine_->on_prefetch_response(job.uid, job, *response, now(),
                                      to_ms(now() - started), &chained);
      }
      trace.add_span("learn", fetched, now());
    } catch (const Error& e) {
      // A throwing engine event loses this one job; the worker (and process)
      // stay up to serve the rest of the queue.
      log_warn("net.proxy") << "prefetch failed: " << e.what();
      trace.outcome = "prefetch_error";
    }
    trace.end_us = now();
    traces_.push(std::move(trace));
    enqueue_jobs(std::move(chained.prefetches));  // chained prefetching

    lock.lock();
    busy_users_.erase(job.user);
    --prefetch_active_;
    if (prefetch_queue_.empty() && prefetch_active_ == 0) idle_cv_.notify_all();
    // Releasing this user may make its next queued job eligible for another
    // worker that went to sleep while the user was busy.
    queue_cv_.notify_all();
  }
}

void LiveProxyServer::drain_prefetches() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [this] {
    return stopping_.load() || (prefetch_queue_.empty() && prefetch_active_ == 0);
  });
}

}  // namespace appx::net
