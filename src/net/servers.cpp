#include "net/servers.hpp"

#include <sys/socket.h>

#include <chrono>

namespace {
// Registers a connection fd for the server's stop() to shut down; removes it
// again when the handling thread finishes.
class ConnGuard {
 public:
  ConnGuard(std::mutex& mutex, std::set<int>& fds, int fd)
      : mutex_(mutex), fds_(fds), fd_(fd) {
    const std::lock_guard<std::mutex> lock(mutex_);
    fds_.insert(fd_);
  }
  ~ConnGuard() {
    const std::lock_guard<std::mutex> lock(mutex_);
    fds_.erase(fd_);
  }
  ConnGuard(const ConnGuard&) = delete;
  ConnGuard& operator=(const ConnGuard&) = delete;

 private:
  std::mutex& mutex_;
  std::set<int>& fds_;
  int fd_;
};

void shutdown_all(std::mutex& mutex, std::set<int>& fds) {
  const std::lock_guard<std::mutex> lock(mutex);
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
}
}  // namespace

#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::net {

// --- LiveOriginServer ----------------------------------------------------------------

LiveOriginServer::LiveOriginServer(apps::OriginServer* origin, std::uint16_t port)
    : origin_(origin), listener_(port) {
  if (origin == nullptr) throw InvalidArgumentError("LiveOriginServer: null origin");
  acceptor_ = std::thread([this] { accept_loop(); });
}

LiveOriginServer::~LiveOriginServer() { stop(); }

void LiveOriginServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  shutdown_all(conns_mutex_, conn_fds_);
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    workers.swap(threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

void LiveOriginServer::accept_loop() {
  while (!stopping_.load()) {
    TcpStream stream = listener_.accept();
    if (!stream.valid()) return;  // listener closed
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back(
        [this, s = std::make_shared<TcpStream>(std::move(stream))]() mutable {
          serve_connection(std::move(*s));
        });
  }
}

void LiveOriginServer::serve_connection(TcpStream stream) {
  const ConnGuard guard(conns_mutex_, conn_fds_, stream.fd());
  try {
    HttpReader reader(&stream);
    while (auto request = reader.read_request()) {
      http::Response response;
      {
        const std::lock_guard<std::mutex> lock(origin_mutex_);
        response = origin_->serve(*request);
      }
      write_response(stream, response);
      ++served_;
    }
  } catch (const Error& e) {
    log_debug("net.origin") << "connection ended: " << e.what();
  }
}

// --- LiveProxyServer ------------------------------------------------------------------

LiveProxyServer::LiveProxyServer(core::ProxyLike* engine, UpstreamMap upstreams,
                                 std::uint16_t port)
    : engine_(engine), upstreams_(std::move(upstreams)), listener_(port) {
  if (engine == nullptr) throw InvalidArgumentError("LiveProxyServer: null engine");
  acceptor_ = std::thread([this] { accept_loop(); });
  prefetcher_ = std::thread([this] { prefetch_loop(); });
}

LiveProxyServer::~LiveProxyServer() { stop(); }

void LiveProxyServer::stop() {
  if (stopping_.exchange(true)) return;
  listener_.close();
  shutdown_all(conns_mutex_, conn_fds_);
  queue_cv_.notify_all();
  idle_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  if (prefetcher_.joinable()) prefetcher_.join();
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    workers.swap(threads_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

SimTime LiveProxyServer::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void LiveProxyServer::accept_loop() {
  while (!stopping_.load()) {
    TcpStream stream = listener_.accept();
    if (!stream.valid()) return;
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back(
        [this, s = std::make_shared<TcpStream>(std::move(stream))]() mutable {
          serve_connection(std::move(*s));
        });
  }
}

http::Response LiveProxyServer::fetch_upstream(const http::Request& request) {
  const auto it = upstreams_.find(request.uri.host);
  if (it == upstreams_.end()) {
    http::Response resp;
    resp.status = 502;
    resp.reason = std::string(http::reason_phrase(502));
    resp.body = R"({"error":"no upstream for host"})";
    return resp;
  }
  TcpStream upstream = TcpStream::connect("127.0.0.1", it->second);
  write_request(upstream, request);
  HttpReader reader(&upstream);
  auto response = reader.read_response();
  if (!response) throw Error("upstream closed without responding");
  return *response;
}

void LiveProxyServer::serve_connection(TcpStream stream) {
  // One logical user per connection source; for the loopback demo each
  // client identifies itself with an X-Appx-User header (falling back to a
  // shared id). A production front end would key on client address.
  const ConnGuard guard(conns_mutex_, conn_fds_, stream.fd());
  try {
    HttpReader reader(&stream);
    while (auto request = reader.read_request()) {
      const std::string user = request->headers.get("X-Appx-User").value_or("default");
      http::Request upstream_request = *request;
      upstream_request.headers.remove("X-Appx-User");
      // Origin-form request targets carry no scheme; this front end stands in
      // for the TLS-terminating proxy of the paper's deployment model, so
      // normalise to https for signature matching and cache identity.
      if (upstream_request.uri.scheme.empty()) upstream_request.uri.scheme = "https";

      core::ClientDecision decision;
      {
        const std::lock_guard<std::mutex> lock(engine_mutex_);
        decision = engine_->on_client_request(user, upstream_request, now());
      }
      if (decision.served) {
        // The served response is shared with the proxy's cache; take a local
        // copy to annotate without mutating the cached entry.
        http::Response served = *decision.served;
        served.headers.set("X-Appx-Cache", "hit");
        write_response(stream, served);
        enqueue_prefetches(user);
        continue;
      }

      http::Response response = fetch_upstream(upstream_request);
      {
        const std::lock_guard<std::mutex> lock(engine_mutex_);
        engine_->on_origin_response(user, upstream_request, response, now());
      }
      enqueue_prefetches(user);
      response.headers.set("X-Appx-Cache", "miss");
      write_response(stream, response);
    }
  } catch (const Error& e) {
    log_debug("net.proxy") << "connection ended: " << e.what();
  }
}

void LiveProxyServer::enqueue_prefetches(const std::string& user) {
  std::vector<core::PrefetchJob> jobs;
  {
    const std::lock_guard<std::mutex> lock(engine_mutex_);
    jobs = engine_->take_prefetches(user, now());
  }
  if (jobs.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    for (core::PrefetchJob& job : jobs) {
      job.user = user;
      prefetch_queue_.push_back(std::move(job));
    }
  }
  queue_cv_.notify_one();
}

void LiveProxyServer::prefetch_loop() {
  while (true) {
    core::PrefetchJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_.load() || !prefetch_queue_.empty(); });
      if (stopping_.load()) return;
      job = std::move(prefetch_queue_.front());
      prefetch_queue_.pop_front();
      prefetch_busy_ = true;
    }

    const SimTime started = now();
    http::Response response;
    try {
      response = fetch_upstream(job.request);
    } catch (const Error& e) {
      log_warn("net.proxy") << "prefetch failed: " << e.what();
      response.status = 504;
      response.reason = std::string(http::reason_phrase(504));
    }
    {
      const std::lock_guard<std::mutex> lock(engine_mutex_);
      engine_->on_prefetch_response(job.user, job, response, now(),
                                    to_ms(now() - started));
    }
    enqueue_prefetches(job.user);  // chained prefetching

    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      prefetch_busy_ = false;
      if (prefetch_queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void LiveProxyServer::drain_prefetches() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  idle_cv_.wait(lock, [this] {
    return stopping_.load() || (prefetch_queue_.empty() && !prefetch_busy_);
  });
}

}  // namespace appx::net
