// Event-loop interface of the network runtime (DESIGN.md §5g/§5l), with two
// backends behind it:
//
//   * EpollEventLoop — the readiness-mode reactor: one epoll instance, level-
//     triggered fd callbacks. The default everywhere.
//   * UringEventLoop — a completion-mode io_uring backend (raw syscalls, no
//     liburing): the same readiness contract via re-armed one-shot POLL_ADD
//     (re-arming re-checks the readiness *level*, which multishot poll would
//     not — the re-arm SQEs ride the next batched enter for free), plus a
//     completion-op extension (submit_recv/submit_sendmsg/submit_accept) the
//     servers use to run whole request/response exchanges with one batched
//     io_uring_enter per loop iteration. Feature-detected at runtime
//     (uring_supported()); kernels without it fall back under "auto".
//
// One EventLoop runs on one thread and multiplexes three event sources:
//
//   * file descriptors — add_fd/mod_fd/del_fd register a callback invoked
//     with the ready-event mask. Handlers are reference-counted internally,
//     so a callback may del_fd its own descriptor (or another handler's)
//     mid-dispatch without use-after-free.
//   * timers — a min-heap of deadlines with lazy cancellation, driving the
//     idle/slow-loris timeouts of the live servers. Firing and cancelling
//     are loop-thread-only and O(log n). Timers ride the backend's own wait
//     primitive (epoll_wait timeout / io_uring_enter EXT_ARG) — they never
//     cost an extra fd or syscall.
//   * cross-thread tasks — post() enqueues a closure from any thread and
//     wakes the loop via an eventfd, but only when the loop may actually be
//     sleeping: an "armed" flag set before the backend blocks elides the
//     wake write(2) while the loop is busy, so completion storms from the
//     worker pool don't pay one syscall each.
//
// Lifecycle: run() blocks until stop(); tasks already queued when stop() is
// observed still run (a close-all posted together with stop is guaranteed to
// execute), while tasks posted after the final drain are destroyed, not run,
// when the loop is destructed — their captured resources (connection
// handles) release through RAII.
#pragma once

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace appx::net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;
  using TimePoint = std::chrono::steady_clock::time_point;
  // Completion-op result: bytes transferred (>= 0) or -errno. The buffer a
  // submitted op reads from / writes into is owned by the caller and must
  // stay alive until the callback runs (see DESIGN.md §5l): callbacks
  // capture the owning connection handle, which is what enforces it.
  using IoCallback = std::function<void(int res)>;
  // Accepted client fd (>= 0) or -errno when the listener is cancelled.
  using AcceptCallback = std::function<void(int fd)>;

  virtual ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Runs the loop on the calling thread until stop(). Dispatches fd events,
  // fires due timers, and drains posted tasks each iteration.
  virtual void run() = 0;

  // Thread-safe. Wakes the loop; run() returns after draining the tasks that
  // were queued when the stop was observed.
  void stop();

  // Thread-safe. Enqueues `task` to run on the loop thread. Wakes the loop
  // only when it may be blocked in the kernel (armed-flag handshake).
  void post(Task task);

  // --- fd readiness watching (loop thread only) -----------------------------

  // Register `fd` for the epoll `events` mask (EPOLLIN/EPOLLOUT/...). Both
  // backends deliver the same mask semantics (level-triggered).
  virtual void add_fd(int fd, std::uint32_t events, FdCallback callback) = 0;
  // Change the event mask of a registered fd.
  virtual void mod_fd(int fd, std::uint32_t events) = 0;
  // Deregister. Safe to call from inside the fd's own callback.
  virtual void del_fd(int fd) = 0;

  // --- completion-mode ops (loop thread only; uring backend) ----------------
  //
  // All return/accept false on backends without completion support (epoll),
  // where callers fall back to the readiness API. Submissions are batched:
  // nothing hits the kernel until the loop's next io_uring_enter, so a
  // response write + next-request read + accept re-arm ride one syscall.

  virtual bool supports_completions() const { return false; }
  // One recv into caller-owned [buf, buf+len); cb(bytes or -errno).
  virtual bool submit_recv(int fd, void* buf, std::size_t len, IoCallback cb);
  // One sendmsg of a caller-owned msghdr/iovec (MSG_NOSIGNAL applied);
  // cb(bytes or -errno). The iovec array and the bytes it points at must
  // outlive the callback.
  virtual bool submit_sendmsg(int fd, const msghdr* msg, IoCallback cb);
  // Multishot accept on a listening fd: cb fires once per accepted
  // connection (SOCK_NONBLOCK|SOCK_CLOEXEC applied) until cancel_fd.
  virtual bool submit_accept(int listen_fd, AcceptCallback cb);
  // Cancel every in-flight completion op on `fd` (by op token, so a
  // concurrently closed/reused fd number cannot be confused) and release the
  // fd's registered-file slot. Pending callbacks are dropped, not invoked.
  virtual void cancel_fd(int fd);

  // --- timers (loop thread only) --------------------------------------------

  // Schedule `task` at `when`; returns an id for cancel_timer. Timers are
  // one-shot; re-arm from the callback for periodic behaviour.
  std::uint64_t add_timer(TimePoint when, Task task);
  void cancel_timer(std::uint64_t id);

  // --- introspection --------------------------------------------------------

  // Registered fds (excluding the internal wakeup fd). Readable from any
  // thread (observability gauges); exact only on the loop thread.
  std::size_t fd_count() const { return fd_count_.load(std::memory_order_relaxed); }
  // Tasks posted but not yet run. Cross-thread approximate.
  std::size_t pending_tasks() const { return pending_tasks_.load(std::memory_order_relaxed); }
  // True when called on the thread currently inside run().
  bool on_loop_thread() const;
  // "epoll" or "uring".
  virtual const char* backend_name() const = 0;

 protected:
  EventLoop();

  // --- shared machinery for backends ----------------------------------------

  // Write the wakeup eventfd (a full counter already guarantees a wakeup).
  void wake();
  // Run every queued task; exceptions are logged, never unwound into run().
  void drain_tasks();
  void fire_due_timers();
  // Milliseconds until the next live timer, -1 when none. Pops lazily
  // cancelled heap heads in place (loop thread only).
  int next_timeout_ms();
  // Arm the sleep flag and re-check for work that raced in. Returns false
  // when tasks are already pending or stop was requested — the backend must
  // then poll with a zero timeout instead of blocking. Pair every arm with
  // disarm_sleep() after the kernel wait returns.
  bool arm_sleep();
  void disarm_sleep() { sleep_armed_.store(false, std::memory_order_relaxed); }
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }
  void mark_loop_thread();
  void clear_loop_thread();

  int wake_fd_ = -1;
  std::atomic<std::size_t> fd_count_{0};

 private:
  std::atomic<bool> stopping_{false};
  // Dekker-style handshake with post(): the loop stores true then loads
  // pending_tasks_; a poster bumps pending_tasks_ then loads this. Under the
  // seq_cst total order at least one side observes the other, so a task can
  // never be queued while the loop sleeps unwoken.
  std::atomic<bool> sleep_armed_{false};
  std::atomic<std::size_t> pending_tasks_{0};
  std::atomic<const void*> loop_thread_id_{nullptr};

  std::mutex tasks_mutex_;
  std::vector<Task> tasks_;

  struct TimerEntry {
    TimePoint when;
    std::uint64_t id;
    bool operator>(const TimerEntry& other) const {
      return when > other.when || (when == other.when && id > other.id);
    }
  };
  std::uint64_t next_timer_id_ = 1;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>> timer_heap_;
  std::unordered_map<std::uint64_t, Task> timer_tasks_;
};

// True when this kernel can run UringEventLoop (io_uring_setup succeeds, the
// required opcodes probe as supported, and EXT_ARG timeouts exist — kernel
// >= 5.11; multishot accept is newer and degrades internally). Cached after
// the first call. APPX_NO_URING=1 forces false (CI escape hatch).
bool uring_supported();

// Map a configured backend name ("", "epoll", "uring", "auto") to the
// backend to instantiate. "" reads APPX_IO_BACKEND from the environment
// (default "epoll"); "auto" resolves to "uring" when supported, else
// "epoll"; an explicit "uring" on an unsupporting kernel throws — it never
// silently degrades. Any other name throws InvalidArgumentError.
std::string resolve_io_backend(std::string_view configured);

// Construct the backend resolve_io_backend() picks.
std::unique_ptr<EventLoop> make_event_loop(std::string_view backend = {});

// Concrete backend factories (make_event_loop resolves names onto these; the
// conformance tests instantiate them directly).
std::unique_ptr<EventLoop> make_epoll_event_loop();
std::unique_ptr<EventLoop> make_uring_event_loop();  // throws when !uring_supported()

}  // namespace appx::net
