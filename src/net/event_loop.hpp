// Single-threaded epoll reactor: the core of the event-driven network
// runtime (DESIGN.md §5g).
//
// One EventLoop owns one epoll instance and runs on one thread. It
// multiplexes three event sources:
//
//   * file descriptors — add_fd/mod_fd/del_fd register a callback invoked
//     with the ready-event mask. Handlers are reference-counted internally,
//     so a callback may del_fd its own descriptor (or another handler's)
//     mid-dispatch without use-after-free.
//   * timers — a min-heap of deadlines with lazy cancellation, driving the
//     idle/slow-loris timeouts of the live servers. Firing and cancelling
//     are loop-thread-only and O(log n).
//   * cross-thread tasks — post() enqueues a closure from any thread and
//     wakes the loop via an eventfd. This is the only cross-thread entry
//     point: worker threads finish engine/upstream work off the loop and
//     post the completion back, so no fd or timer state ever needs a lock.
//
// Lifecycle: run() blocks until stop(); tasks already queued when stop() is
// observed still run (a close-all posted together with stop is guaranteed to
// execute), while tasks posted after the final drain are destroyed, not run,
// when the loop is destructed — their captured resources (connection
// handles) release through RAII.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

namespace appx::net {

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;
  using TimePoint = std::chrono::steady_clock::time_point;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Runs the loop on the calling thread until stop(). Dispatches fd events,
  // fires due timers, and drains posted tasks each iteration.
  void run();

  // Thread-safe. Wakes the loop; run() returns after draining the tasks that
  // were queued when the stop was observed.
  void stop();

  // Thread-safe. Enqueues `task` to run on the loop thread.
  void post(Task task);

  // --- fd watching (loop thread only) ---------------------------------------

  // Register `fd` for the epoll `events` mask (EPOLLIN/EPOLLOUT/...).
  void add_fd(int fd, std::uint32_t events, FdCallback callback);
  // Change the event mask of a registered fd.
  void mod_fd(int fd, std::uint32_t events);
  // Deregister. Safe to call from inside the fd's own callback.
  void del_fd(int fd);

  // --- timers (loop thread only) --------------------------------------------

  // Schedule `task` at `when`; returns an id for cancel_timer. Timers are
  // one-shot; re-arm from the callback for periodic behaviour.
  std::uint64_t add_timer(TimePoint when, Task task);
  void cancel_timer(std::uint64_t id);

  // --- introspection --------------------------------------------------------

  // Registered fds (excluding the internal wakeup fd). Readable from any
  // thread (observability gauges); exact only on the loop thread.
  std::size_t fd_count() const { return fd_count_.load(std::memory_order_relaxed); }
  // Tasks posted but not yet run. Cross-thread approximate.
  std::size_t pending_tasks() const { return pending_tasks_.load(std::memory_order_relaxed); }
  // True when called on the thread currently inside run().
  bool on_loop_thread() const;

 private:
  struct Handler {
    std::uint32_t events = 0;
    // Registration generation, stamped into epoll_data alongside the fd. A
    // stale event queued for a closed fd whose number was reused within the
    // same epoll_wait batch carries the old generation and is dropped
    // instead of being delivered to the new handler.
    std::uint32_t gen = 0;
    FdCallback callback;
  };
  struct TimerEntry {
    TimePoint when;
    std::uint64_t id;
    bool operator>(const TimerEntry& other) const {
      return when > other.when || (when == other.when && id > other.id);
    }
  };

  void wake();
  void drain_tasks();
  void fire_due_timers();
  // Milliseconds until the next live timer, -1 when none. Pops lazily
  // cancelled heap heads in place (loop thread only).
  int next_timeout_ms();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> fd_count_{0};
  std::atomic<std::size_t> pending_tasks_{0};
  std::atomic<const void*> loop_thread_id_{nullptr};

  std::unordered_map<int, std::shared_ptr<Handler>> handlers_;
  std::uint32_t next_gen_ = 1;  // 0 is reserved for the wakeup fd

  std::mutex tasks_mutex_;
  std::vector<Task> tasks_;

  std::uint64_t next_timer_id_ = 1;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, std::greater<TimerEntry>> timer_heap_;
  std::unordered_map<std::uint64_t, Task> timer_tasks_;
};

}  // namespace appx::net
