// Completion-mode EventLoop backend on raw io_uring syscalls (no liburing;
// DESIGN.md §5l). Feature-detected at runtime — uring_supported() requires
// io_uring_setup to succeed with EXT_ARG timeouts (kernel >= 5.11) and the
// opcodes below to probe as supported; anything older runs epoll.
//
// Structure:
//   * Every in-flight kernel op carries a unique 64-bit token in user_data,
//     mapped to a PendingOp. Tokens are never reused, so a CQE for an op
//     whose fd was closed and recycled can never be misdelivered — the
//     uring-native form of the epoll backend's (generation, fd) keys.
//   * The readiness contract (add_fd/mod_fd/del_fd) is emulated with
//     one-shot IORING_OP_POLL_ADD, re-armed after each delivery. One-shot —
//     not multishot — poll is deliberate: re-arming re-checks readiness
//     *levels*, preserving the epoll backend's level-triggered semantics
//     (multishot poll only fires on wakeups, so a callback that leaves data
//     unread would stall). Re-arms are SQEs, not syscalls: they ride the
//     next batched io_uring_enter.
//   * The data plane uses completion ops proper: submit_recv/submit_sendmsg
//     one-shot ops into caller-owned buffers, and multishot
//     IORING_OP_ACCEPT on listeners (downgrading to re-armed one-shot
//     accept on pre-5.19 kernels that reject the flag with -EINVAL).
//   * One io_uring_enter per loop iteration submits everything queued since
//     the last iteration and waits with an EXT_ARG timespec computed from
//     the timer heap — timers cost no timerfd and no extra syscall.
//   * Connection fds are auto-registered into a sparse fixed-file table on
//     first submission (IOSQE_FIXED_FILE thereafter); cancel_fd returns the
//     slot. Body slabs flow into SQE iovecs directly — no per-request
//     buffer registration anywhere.
//   * Teardown: cancel_fd marks every op on the fd dead and submits
//     IORING_OP_ASYNC_CANCEL *by token* (cancel-by-fd would need the fd
//     still open; the caller is about to close it). Dead ops' CQEs are
//     swallowed and their callbacks dropped, releasing captured connection
//     handles.
#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/event_loop.hpp"
#include "net/syscount.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace appx::net {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags,
                       const void* arg, std::size_t argsz) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, arg, argsz));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

[[noreturn]] void fail_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

std::uint32_t load_acquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_acquire);
}

void store_release(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

constexpr unsigned kSqEntries = 1024;
constexpr unsigned kCqEntries = 4096;
constexpr unsigned kFileSlots = 1024;
// Delay before re-arming accept after EMFILE/ENFILE/ENOBUFS: long enough to
// stop the instant-completion spin, short enough to pick connections back up
// promptly once fds free.
constexpr std::chrono::milliseconds kAcceptRearmBackoff{50};

class UringEventLoop final : public EventLoop {
 public:
  UringEventLoop() {
    io_uring_params params{};
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = kCqEntries;
    ring_fd_ = sys_io_uring_setup(kSqEntries, &params);
    if (ring_fd_ < 0) fail_errno("io_uring_setup");
    features_ = params.features;
    if ((features_ & IORING_FEAT_EXT_ARG) == 0 || (features_ & IORING_FEAT_NODROP) == 0) {
      ::close(ring_fd_);
      throw Error("io_uring: kernel lacks EXT_ARG/NODROP (need >= 5.11)");
    }
    try {
      map_rings(params);
    } catch (...) {
      ::close(ring_fd_);
      throw;
    }
    register_file_table();
    arm_wake_poll();
  }

  ~UringEventLoop() override {
    // Ring-fd close cancels in-flight ops only *asynchronously* (the
    // kernel's exit work), so reap first: once ops_ is empty no submitted
    // op references caller-owned memory (recv buffers, iovec arrays) and
    // the ops' callbacks (holding connection refs) have released. Whatever
    // survives the bounded reap is dropped here like the epoll backend's
    // handlers_ teardown.
    reap_pending_ops();
    ops_.clear();
    handlers_.clear();
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_sz_);
    if (cq_ring_ptr_ != nullptr && cq_ring_ptr_ != sq_ring_ptr_) {
      ::munmap(cq_ring_ptr_, cq_ring_sz_);
    }
    if (sq_ring_ptr_ != nullptr) ::munmap(sq_ring_ptr_, sq_ring_sz_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  const char* backend_name() const override { return "uring"; }
  bool supports_completions() const override { return true; }

  // --- readiness contract (one-shot poll, re-armed per delivery) ------------

  void add_fd(int fd, std::uint32_t events, FdCallback callback) override {
    // Re-adding a registered fd: retire the old poll op first so it can't
    // deliver a stale callback, and don't count the fd twice. (The epoll
    // backend fails loudly on EEXIST; replacing is the closest this backend
    // can get without diverging callers that already handled the overwrite.)
    const auto existing = handlers_.find(fd);
    const bool replacing = existing != handlers_.end();
    if (replacing) retire_poll(existing->second.token);
    FdHandler handler;
    handler.events = events;
    handler.token = new_token();
    handler.callback = std::make_shared<FdCallback>(std::move(callback));
    PendingOp op;
    op.kind = OpKind::kPoll;
    op.fd = fd;
    op.poll_cb = handler.callback;
    ops_.emplace(handler.token, std::move(op));
    prep_poll(fd, events, handler.token);
    handlers_[fd] = std::move(handler);
    if (!replacing) fd_count_.fetch_add(1, std::memory_order_relaxed);
  }

  void mod_fd(int fd, std::uint32_t events) override {
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) return;
    if (it->second.events == events) return;
    // Retire the old poll op and arm a fresh one under a new token; a CQE
    // already queued for the old token is dropped as dead.
    retire_poll(it->second.token);
    it->second.events = events;
    it->second.token = new_token();
    PendingOp op;
    op.kind = OpKind::kPoll;
    op.fd = fd;
    op.poll_cb = it->second.callback;
    ops_.emplace(it->second.token, std::move(op));
    prep_poll(fd, events, it->second.token);
  }

  void del_fd(int fd) override {
    const auto it = handlers_.find(fd);
    if (it == handlers_.end()) return;
    retire_poll(it->second.token);
    handlers_.erase(it);
    fd_count_.fetch_sub(1, std::memory_order_relaxed);
  }

  // --- completion ops -------------------------------------------------------

  bool submit_recv(int fd, void* buf, std::size_t len, IoCallback cb) override {
    const std::uint64_t token = new_token();
    PendingOp op;
    op.kind = OpKind::kRecv;
    op.fd = fd;
    op.io_cb = std::move(cb);
    ops_.emplace(token, std::move(op));
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_RECV;
    set_target_fd(sqe, fd);
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = static_cast<std::uint32_t>(len);
    sqe->user_data = token;
    publish_sqe();
    return true;
  }

  bool submit_sendmsg(int fd, const msghdr* msg, IoCallback cb) override {
    const std::uint64_t token = new_token();
    PendingOp op;
    op.kind = OpKind::kSend;
    op.fd = fd;
    op.io_cb = std::move(cb);
    ops_.emplace(token, std::move(op));
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_SENDMSG;
    set_target_fd(sqe, fd);
    sqe->addr = reinterpret_cast<std::uint64_t>(msg);
    sqe->len = 1;
    sqe->msg_flags = MSG_NOSIGNAL;
    sqe->user_data = token;
    publish_sqe();
    return true;
  }

  bool submit_accept(int listen_fd, AcceptCallback cb) override {
    const std::uint64_t token = new_token();
    PendingOp op;
    op.kind = OpKind::kAccept;
    op.fd = listen_fd;
    op.accept_cb = std::make_shared<AcceptCallback>(std::move(cb));
    ops_.emplace(token, std::move(op));
    prep_accept(listen_fd, token, accept_multishot_ok_);
    return true;
  }

  void cancel_fd(int fd) override {
    // Snapshot first: prep_cancel inserts into ops_, and a rehash mid-range-
    // for would invalidate the iterators (same pattern as reap_pending_ops).
    std::vector<std::uint64_t> doomed;
    for (const auto& [token, op] : ops_) {
      if (op.fd != fd || op.dead) continue;
      if (op.kind != OpKind::kRecv && op.kind != OpKind::kSend && op.kind != OpKind::kAccept) {
        continue;  // poll registrations go through del_fd
      }
      doomed.push_back(token);
    }
    for (const std::uint64_t token : doomed) {
      const auto it = ops_.find(token);
      if (it == ops_.end()) continue;
      if (it->second.parked) {
        // No kernel op in flight (accept waiting out a backoff timer), so no
        // terminal CQE will ever come: drop the entry here.
        ops_.erase(it);
        continue;
      }
      it->second.dead = true;
      prep_cancel(token);
    }
    unregister_file(fd);
  }

  void run() override {
    mark_loop_thread();
    while (!stopping()) {
      drain_tasks();
      fire_due_timers();
      if (stopping()) break;
      const int timeout = arm_sleep() ? next_timeout_ms() : 0;
      enter_and_wait(timeout);
      disarm_sleep();
      process_cqes();
    }
    // Final drain mirrors the epoll backend: tasks queued alongside the stop
    // run; later posts are destroyed by the destructor.
    drain_tasks();
    // The close-all tasks that just ran only *prepped* their cancel SQEs; a
    // parked kernel op pins its target's struct file, so leaving them
    // unsubmitted would hold every connection open (no FIN to the peer)
    // until the ring is destroyed. Cancel and reap now, before run()
    // returns, so stop() means resources released.
    reap_pending_ops();
    clear_loop_thread();
  }

 private:
  enum class OpKind : std::uint8_t { kPoll, kPollRemove, kRecv, kSend, kAccept, kCancel };

  struct PendingOp {
    OpKind kind = OpKind::kPoll;
    int fd = -1;
    // Deregistered/cancelled: swallow the CQE, never invoke the callback.
    bool dead = false;
    // No kernel op in flight for this token: the accept re-arm is waiting
    // out a backoff timer. No CQE will arrive, so teardown paths erase the
    // entry directly instead of submitting a cancel for it.
    bool parked = false;
    std::shared_ptr<FdCallback> poll_cb;        // kPoll (shared with FdHandler)
    IoCallback io_cb;                           // kRecv / kSend
    std::shared_ptr<AcceptCallback> accept_cb;  // kAccept
  };

  struct FdHandler {
    std::uint32_t events = 0;
    std::uint64_t token = 0;  // current poll op
    std::shared_ptr<FdCallback> callback;
  };

  static constexpr std::uint64_t kWakeToken = 1;

  std::uint64_t new_token() { return next_token_++; }

  void map_rings(const io_uring_params& params) {
    sq_ring_sz_ = params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
    cq_ring_sz_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
      sq_ring_sz_ = cq_ring_sz_ = std::max(sq_ring_sz_, cq_ring_sz_);
    }
    sq_ring_ptr_ = ::mmap(nullptr, sq_ring_sz_, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ptr_ == MAP_FAILED) {
      sq_ring_ptr_ = nullptr;
      fail_errno("mmap(sq ring)");
    }
    if ((features_ & IORING_FEAT_SINGLE_MMAP) != 0) {
      cq_ring_ptr_ = sq_ring_ptr_;
    } else {
      cq_ring_ptr_ = ::mmap(nullptr, cq_ring_sz_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ptr_ == MAP_FAILED) {
        cq_ring_ptr_ = nullptr;
        fail_errno("mmap(cq ring)");
      }
    }
    sqes_sz_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_sz_, PROT_READ | PROT_WRITE,
                                              MAP_SHARED | MAP_POPULATE, ring_fd_,
                                              IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      fail_errno("mmap(sqes)");
    }
    auto* sq_base = static_cast<char*>(sq_ring_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
    sq_entries_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_entries);
    sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
    auto* cq_base = static_cast<char*>(cq_ring_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq_base + params.cq_off.cqes);
    // Identity-map the SQ index array once; slot i always holds SQE i.
    for (unsigned i = 0; i < sq_entries_; ++i) sq_array_[i] = i;
    local_sq_tail_ = *sq_tail_;
  }

  void register_file_table() {
    const std::vector<int> sparse(kFileSlots, -1);
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_FILES, sparse.data(), kFileSlots) ==
        0) {
      files_registered_ = true;
      free_slots_.reserve(kFileSlots);
      for (unsigned i = kFileSlots; i > 0; --i) free_slots_.push_back(static_cast<int>(i - 1));
    }
    // Registration failure (old kernel, rlimit) just means raw fds in SQEs.
  }

  // --- SQE production (batched; nothing hits the kernel until enter) --------

  io_uring_sqe* get_sqe() {
    if (sq_full()) {
      // Ring full (a burst queued kSqEntries ops between iterations): flush
      // without waiting so production can continue. The kernel refuses the
      // flush with EBUSY while an unreaped CQ backlog is parked under
      // NODROP, so a still-full SQ after a flush means: reap completions,
      // then retry the enter — a mass shutdown can fill both rings at once,
      // and throwing there would turn close paths into crashes.
      for (int attempt = 0; attempt < 8 && sq_full(); ++attempt) {
        sys::count(sys::Op::kEnter);
        if (sys_io_uring_enter(ring_fd_, sq_pending(), 0, 0, nullptr, 0) < 0 &&
            errno != EINTR && errno != EBUSY) {
          fail_errno("io_uring_enter(flush)");
        }
        if (sq_full()) process_cqes();
      }
      if (sq_full()) throw Error("io_uring: submission queue stuck full");
    }
    io_uring_sqe* sqe = &sqes_[local_sq_tail_ & sq_mask_];
    std::memset(sqe, 0, sizeof(*sqe));
    return sqe;
  }

  bool sq_full() const { return local_sq_tail_ - load_acquire(sq_head_) == sq_entries_; }

  void publish_sqe() { store_release(sq_tail_, ++local_sq_tail_); }

  unsigned sq_pending() const { return local_sq_tail_ - load_acquire(sq_head_); }

  // Route an SQE at `fd`, through its fixed-file slot when one is (or can
  // be) registered. Listener fds stay raw: accept ops outlive connections
  // and slot churn buys nothing there.
  void set_target_fd(io_uring_sqe* sqe, int fd) {
    auto it = fd_slot_.find(fd);
    if (it == fd_slot_.end() && try_register_file(fd)) it = fd_slot_.find(fd);
    if (it != fd_slot_.end()) {
      sqe->fd = static_cast<std::int32_t>(it->second);
      sqe->flags |= IOSQE_FIXED_FILE;
    } else {
      sqe->fd = fd;
    }
  }

  bool try_register_file(int fd) {
    if (!files_registered_ || free_slots_.empty()) return false;
    const int slot = free_slots_.back();
    std::int32_t fd_val = fd;
    io_uring_files_update update{};
    update.offset = static_cast<std::uint32_t>(slot);
    update.fds = reinterpret_cast<std::uint64_t>(&fd_val);
    sys::count(sys::Op::kRegister);
    if (sys_io_uring_register(ring_fd_, IORING_REGISTER_FILES_UPDATE, &update, 1) != 1) {
      return false;
    }
    free_slots_.pop_back();
    fd_slot_.emplace(fd, static_cast<unsigned>(slot));
    return true;
  }

  void unregister_file(int fd) {
    const auto it = fd_slot_.find(fd);
    if (it == fd_slot_.end()) return;
    std::int32_t minus_one = -1;
    io_uring_files_update update{};
    update.offset = it->second;
    update.fds = reinterpret_cast<std::uint64_t>(&minus_one);
    sys::count(sys::Op::kRegister);
    sys_io_uring_register(ring_fd_, IORING_REGISTER_FILES_UPDATE, &update, 1);
    free_slots_.push_back(static_cast<int>(it->second));
    fd_slot_.erase(it);
  }

  void prep_poll(int fd, std::uint32_t events, std::uint64_t token) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;  // poll registrations stay on raw fds (del_fd may outlive slots)
    sqe->poll32_events = events;  // EPOLL* and POLL* share bit values on Linux
    sqe->user_data = token;
    publish_sqe();
  }

  void prep_accept(int fd, std::uint64_t token, bool multishot) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = fd;
    if (multishot) sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
    sqe->user_data = token;
    publish_sqe();
  }

  // Cancel a pending op by its token (never by fd: the fd may already be
  // closed, and cancel-by-fd needs a live descriptor to resolve the file).
  void prep_cancel(std::uint64_t target_token) {
    const std::uint64_t token = new_token();
    PendingOp op;
    op.kind = OpKind::kCancel;
    ops_.emplace(token, std::move(op));
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_ASYNC_CANCEL;
    sqe->fd = -1;
    sqe->addr = target_token;
    sqe->user_data = token;
    publish_sqe();
  }

  void prep_poll_remove(std::uint64_t target_token) {
    const std::uint64_t token = new_token();
    PendingOp op;
    op.kind = OpKind::kPollRemove;
    ops_.emplace(token, std::move(op));
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->fd = -1;
    sqe->addr = target_token;
    sqe->user_data = token;
    publish_sqe();
  }

  // Mark a readiness poll op dead and ask the kernel to retire it. Whether
  // the remove wins or the poll already completed, exactly one terminal CQE
  // for the token arrives and erases the entry.
  void retire_poll(std::uint64_t token) {
    const auto it = ops_.find(token);
    if (it == ops_.end()) return;
    it->second.dead = true;
    prep_poll_remove(token);
  }

  // Shutdown path: cancel every tracked op and drain the ring until each
  // token's terminal CQE has arrived (bounded — a wedged kernel must not
  // wedge shutdown). Dead ops already have a cancel in flight; live ones
  // (fds the user never deregistered, the armed accept) get one here. Runs
  // after run()'s final task drain and again from the destructor, where it
  // is idempotent: ops_ is normally already empty.
  void reap_pending_ops() {
    if (ring_fd_ < 0) return;
    std::vector<std::uint64_t> live;
    std::vector<std::uint64_t> parked;
    live.reserve(ops_.size());
    for (const auto& [token, op] : ops_) {
      if (op.parked) {
        parked.push_back(token);
      } else if (!op.dead && op.kind != OpKind::kCancel && op.kind != OpKind::kPollRemove) {
        live.push_back(token);
      }
    }
    // Parked ops have no kernel op in flight (accept waiting on a backoff
    // timer) — no terminal CQE will come, so drop them here rather than
    // letting them hold the reap loop to its deadline.
    for (const std::uint64_t token : parked) ops_.erase(token);
    for (const std::uint64_t token : live) {
      PendingOp& op = ops_.at(token);
      op.dead = true;
      if (op.kind == OpKind::kPoll) {
        prep_poll_remove(token);
      } else {
        prep_cancel(token);
      }
    }
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (!ops_.empty() && std::chrono::steady_clock::now() < deadline) {
      enter_and_wait(20);
      process_cqes();
    }
    if (!ops_.empty()) {
      log_warn("net.uring") << "shutdown reap timed out with " << ops_.size()
                            << " ops unresolved; their resources release at ring teardown";
    }
  }

  void arm_wake_poll() {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = wake_fd_;
    sqe->poll32_events = POLLIN;
    sqe->user_data = kWakeToken;
    publish_sqe();
  }

  // --- the one syscall per iteration ----------------------------------------

  void enter_and_wait(int timeout_ms) {
    const unsigned to_submit = sq_pending();
    unsigned flags = IORING_ENTER_GETEVENTS;
    unsigned min_complete = 1;
    io_uring_getevents_arg arg{};
    __kernel_timespec ts{};
    const void* argp = nullptr;
    std::size_t argsz = 0;
    if (timeout_ms == 0) {
      min_complete = 0;  // poll: submit + reap whatever is there
    } else {
      flags |= IORING_ENTER_EXT_ARG;
      argp = &arg;
      argsz = sizeof arg;
      if (timeout_ms > 0) {
        ts.tv_sec = timeout_ms / 1000;
        ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1'000'000;
        arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      }
      // timeout_ms < 0: arg.ts stays null — wait until an event arrives.
    }
    sys::count(sys::Op::kEnter);
    const int r = sys_io_uring_enter(ring_fd_, to_submit, min_complete, flags, argp, argsz);
    if (r < 0) {
      // ETIME: the EXT_ARG timeout fired (timers run next iteration).
      // EBUSY: CQ backlog under NODROP — reaping below makes room.
      // EINTR: signal; the loop re-enters.
      if (errno != ETIME && errno != EBUSY && errno != EINTR) {
        fail_errno("io_uring_enter");
      }
    }
  }

  void process_cqes() {
    // Reload the published head every iteration, not once up front: a
    // dispatched callback can re-enter process_cqes (via get_sqe's
    // ring-full reap), and a cached local head would then re-deliver CQEs
    // the nested call already consumed.
    while (true) {
      const unsigned head = load_acquire(cq_head_);
      const unsigned tail = load_acquire(cq_tail_);
      if (head == tail) break;
      // Copy out and publish consumption before dispatch: the callback may
      // run long, and freeing the slot keeps the kernel out of overflow.
      const io_uring_cqe cqe = cqes_[head & cq_mask_];
      store_release(cq_head_, head + 1);
      handle_cqe(cqe.user_data, cqe.res, cqe.flags);
    }
  }

  void handle_cqe(std::uint64_t token, int res, std::uint32_t flags) {
    if (token == kWakeToken) {
      std::uint64_t counter;
      sys::count(sys::Op::kRead);
      while (::read(wake_fd_, &counter, sizeof counter) > 0) {
      }
      arm_wake_poll();
      return;
    }
    const auto it = ops_.find(token);
    if (it == ops_.end()) return;  // stale token (already retired)
    switch (it->second.kind) {
      case OpKind::kPoll:
        handle_poll_cqe(it, res);
        return;
      case OpKind::kAccept:
        handle_accept_cqe(it, res, flags);
        return;
      case OpKind::kRecv:
      case OpKind::kSend: {
        // Extract first: the callback may submit new ops into ops_.
        auto node = ops_.extract(it);
        if (!node.mapped().dead && node.mapped().io_cb) {
          invoke_io(node.mapped().io_cb, res);
        }
        return;
      }
      case OpKind::kPollRemove:
      case OpKind::kCancel:
        // Result is advisory (-ENOENT when the target op had already
        // completed); the target's own terminal CQE does the cleanup.
        ops_.erase(it);
        return;
    }
  }

  void handle_poll_cqe(std::unordered_map<std::uint64_t, PendingOp>::iterator it, int res) {
    const std::uint64_t token = it->first;
    const int fd = it->second.fd;
    if (it->second.dead) {
      ops_.erase(it);
      return;
    }
    if (res == -EINVAL) {
      // Shouldn't happen for plain one-shot poll; drop the registration
      // rather than spin.
      log_error("net.uring") << "poll rejected for fd " << fd;
      ops_.erase(it);
      return;
    }
    if (res > 0) {
      const std::shared_ptr<FdCallback> cb = it->second.poll_cb;
      try {
        (*cb)(static_cast<std::uint32_t>(res));
      } catch (const std::exception& e) {
        log_error("net.loop") << "fd callback threw: " << e.what();
      }
    }
    // One-shot: re-arm (same token) iff the registration survived the
    // callback — it may have del_fd'd itself or re-registered under a new
    // token. Re-arming re-checks the readiness level, so un-drained data
    // fires again exactly like level-triggered epoll.
    const auto op_it = ops_.find(token);
    if (op_it == ops_.end() || op_it->second.dead) {
      if (op_it != ops_.end()) ops_.erase(op_it);
      return;
    }
    const auto handler_it = handlers_.find(fd);
    if (handler_it == handlers_.end() || handler_it->second.token != token) {
      ops_.erase(op_it);
      return;
    }
    prep_poll(fd, handler_it->second.events, token);
  }

  void handle_accept_cqe(std::unordered_map<std::uint64_t, PendingOp>::iterator it, int res,
                         std::uint32_t flags) {
    const std::uint64_t token = it->first;
    const int listen_fd = it->second.fd;
    const bool more = (flags & IORING_CQE_F_MORE) != 0;
    if (it->second.dead) {
      // A connection can still land between the cancel and its terminal
      // CQE; nobody will ever see it, so close it rather than leak it.
      if (res >= 0) ::close(res);
      if (!more) ops_.erase(it);
      return;
    }
    if (res >= 0) {
      sys::count(sys::Op::kAccept);
      const std::shared_ptr<AcceptCallback> cb = it->second.accept_cb;
      try {
        (*cb)(res);
      } catch (const std::exception& e) {
        log_error("net.loop") << "accept callback threw: " << e.what();
      }
    } else if (res == -EINVAL && accept_multishot_ok_) {
      // Pre-5.19 kernel: IORING_ACCEPT_MULTISHOT unknown. Downgrade every
      // future accept to re-armed one-shot.
      accept_multishot_ok_ = false;
    } else if (res == -ECANCELED || res == -EBADF || res == -ENOENT) {
      ops_.erase(it);  // listener gone
      return;
    } else if (res < 0) {
      // Transient accept failure (EMFILE burst, aborted handshake). Log and
      // fall through to the re-arm below; the op itself has terminated.
      log_warn("net.uring") << "accept failed: " << std::strerror(-res);
    }
    if (more) return;  // multishot still armed
    // Terminal CQE (one-shot accept, downgrade, or multishot ended e.g. on
    // CQ overflow): re-arm if the registration is still live.
    const auto op_it = ops_.find(token);
    if (op_it == ops_.end()) return;
    if (op_it->second.dead) {
      ops_.erase(op_it);
      return;
    }
    if (res == -EMFILE || res == -ENFILE || res == -ENOBUFS) {
      // Resource exhaustion is not transient on the completion timescale:
      // with one-shot accept a re-armed op completes again instantly with
      // the same error, pegging the loop in a submit/complete spin until
      // fds free up. Park the registration and re-arm from a short timer.
      op_it->second.parked = true;
      add_timer(std::chrono::steady_clock::now() + kAcceptRearmBackoff,
                [this, token, listen_fd] {
                  const auto it2 = ops_.find(token);
                  if (it2 == ops_.end()) return;
                  if (it2->second.dead) {
                    ops_.erase(it2);
                    return;
                  }
                  it2->second.parked = false;
                  prep_accept(listen_fd, token, accept_multishot_ok_);
                });
      return;
    }
    prep_accept(listen_fd, token, accept_multishot_ok_);
  }

  void invoke_io(IoCallback& cb, int res) {
    try {
      cb(res);
    } catch (const std::exception& e) {
      log_error("net.loop") << "completion callback threw: " << e.what();
    }
  }

  int ring_fd_ = -1;
  unsigned features_ = 0;
  void* sq_ring_ptr_ = nullptr;
  std::size_t sq_ring_sz_ = 0;
  void* cq_ring_ptr_ = nullptr;
  std::size_t cq_ring_sz_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_sz_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  unsigned local_sq_tail_ = 0;

  std::unordered_map<std::uint64_t, PendingOp> ops_;
  std::unordered_map<int, FdHandler> handlers_;
  std::uint64_t next_token_ = kWakeToken + 1;

  bool accept_multishot_ok_ = true;
  bool files_registered_ = false;
  std::vector<int> free_slots_;
  std::unordered_map<int, unsigned> fd_slot_;
};

}  // namespace

bool uring_supported() {
  static const bool supported = [] {
    const char* disabled = std::getenv("APPX_NO_URING");
    if (disabled != nullptr && *disabled != '\0' && *disabled != '0') return false;
    io_uring_params params{};
    const int fd = sys_io_uring_setup(2, &params);
    if (fd < 0) return false;  // ENOSYS, EPERM (io_uring_disabled sysctl), ...
    bool ok = (params.features & IORING_FEAT_EXT_ARG) != 0 &&
              (params.features & IORING_FEAT_NODROP) != 0;
    if (ok) {
      constexpr unsigned kProbeOps = 64;
      std::vector<std::uint8_t> storage(
          sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op), 0);
      auto* probe = reinterpret_cast<io_uring_probe*>(storage.data());
      if (sys_io_uring_register(fd, IORING_REGISTER_PROBE, probe, kProbeOps) == 0) {
        const auto has = [probe](unsigned op) {
          return op <= probe->last_op &&
                 (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
        };
        ok = has(IORING_OP_POLL_ADD) && has(IORING_OP_POLL_REMOVE) &&
             has(IORING_OP_RECV) && has(IORING_OP_SENDMSG) && has(IORING_OP_ACCEPT) &&
             has(IORING_OP_ASYNC_CANCEL);
      }
      // A failing probe (pre-5.6) leaves ok false via the feature check on
      // those kernels; anything with EXT_ARG also has the probe.
    }
    ::close(fd);
    return ok;
  }();
  return supported;
}

std::unique_ptr<EventLoop> make_uring_event_loop() {
  if (!uring_supported()) {
    throw Error("io_uring backend requested but not supported by this kernel");
  }
  return std::make_unique<UringEventLoop>();
}

}  // namespace appx::net
