// Live (real-socket) origin server and acceleration proxy.
//
// The simulator variant of these lives in eval/testbed; this is the same
// engine on actual TCP connections, mirroring the paper's deployable
// artefact (their mitmproxy-based prototype):
//
//   * LiveOriginServer — serves an apps::OriginServer over HTTP/1.1 with
//     keep-alive, one thread per connection.
//   * LiveProxyServer — accepts client connections, serves exact matches
//     from the engine's cache (tagging them "X-Appx-Cache: hit"), forwards
//     misses upstream, and runs dynamic learning + prefetching on a pool of
//     worker threads (paper §5: "we assign different worker threads to
//     handle dynamic learning and prefetching").
//
// Engine access is serialised by a mutex; network I/O never holds it.
//
// Liveness and resource bounds:
//   * Upstream fetches carry connect/read/write timeouts and a per-request
//     deadline; a dead origin degrades to a 504 instead of hanging a thread.
//   * Prefetching runs on N workers over a shared bounded queue. Jobs for
//     the same user are processed in order and never concurrently (chained
//     prefetches stay causal), but one slow upstream no longer head-of-line
//     blocks every other user's prefetching. Queue overflow drops the oldest
//     job (reported to the engine so its outstanding window is released).
//   * Connection-handler threads are reaped as connections close instead of
//     accumulating until stop().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/server.hpp"
#include "core/baselines.hpp"
#include "core/proxy.hpp"
#include "net/http_io.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace appx::net {

// Owns one std::thread per live connection and joins finished ones as new
// work arrives, so a long-lived server does not accumulate a dead thread
// handle per connection served.
class ThreadReaper {
 public:
  template <typename Fn>
  void spawn(Fn fn) {
    const std::lock_guard<std::mutex> lock(mutex_);
    reap_locked();
    const std::uint64_t id = next_id_++;
    threads_.emplace(id, std::thread([this, id, fn = std::move(fn)]() mutable {
      fn();
      const std::lock_guard<std::mutex> done_lock(mutex_);
      finished_.push_back(id);
    }));
  }

  // Number of still-running threads (reaps finished ones first).
  std::size_t live();

  // Join everything, running or finished. Callers must first unblock the
  // threads (close listeners / shut down connections).
  void join_all();

 private:
  void reap_locked();

  std::mutex mutex_;
  std::map<std::uint64_t, std::thread> threads_;
  std::vector<std::uint64_t> finished_;  // ids awaiting join
  std::uint64_t next_id_ = 0;
};

class LiveOriginServer {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving immediately.
  // `origin` must outlive the server.
  LiveOriginServer(apps::OriginServer* origin, std::uint16_t port = 0);
  ~LiveOriginServer();
  LiveOriginServer(const LiveOriginServer&) = delete;
  LiveOriginServer& operator=(const LiveOriginServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::size_t requests_served() const { return served_.load(); }
  // Live connection-handler threads (finished ones are reaped).
  std::size_t connection_threads() { return conn_threads_.live(); }
  // Origin-side metrics (request count, serve-time histogram); also served
  // over HTTP at /appx/metrics[.json].
  const obs::MetricsRegistry& metrics() const { return registry_; }
  void stop();

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);

  apps::OriginServer* origin_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> served_{0};
  std::mutex origin_mutex_;
  obs::MetricsRegistry registry_;
  obs::Counter* requests_total_ = nullptr;
  obs::Histogram* serve_us_ = nullptr;
  ThreadReaper conn_threads_;
  std::mutex conns_mutex_;
  std::set<int> conn_fds_;  // live connections, shut down on stop()
  std::thread acceptor_;
};

// Runtime bounds for the live proxy; 0 disables the corresponding bound.
struct LiveProxyOptions {
  // Upstream (proxy->origin) I/O bounds. A fetch that cannot complete within
  // request_deadline resolves as a 504 instead of blocking its thread.
  Duration connect_timeout = seconds(5);
  Duration io_timeout = seconds(10);       // per upstream read/write
  Duration request_deadline = seconds(15); // whole upstream fetch
  // Prefetch execution: worker pool size and queue bound (overflow drops the
  // oldest queued job and reports it to the engine).
  std::size_t prefetch_workers = 4;
  std::size_t max_prefetch_queue = 256;
  // Per-message size bounds on client connections (431/413 beyond them).
  ReaderLimits reader_limits;
  // Observability: capacity of the request-trace ring served at /appx/trace,
  // and optional periodic JSON metrics snapshots (empty path disables).
  std::size_t trace_ring_capacity = 128;
  std::string metrics_snapshot_path;
  Duration metrics_snapshot_interval = seconds(10);
};

class LiveProxyServer {
 public:
  // Routes upstream connections by request host: host -> 127.0.0.1:port.
  using UpstreamMap = std::map<std::string, std::uint16_t>;

  // `engine` must outlive the server (any ProxyLike: APPx or a baseline).
  LiveProxyServer(core::ProxyLike* engine, UpstreamMap upstreams, std::uint16_t port = 0,
                  LiveProxyOptions options = {});
  ~LiveProxyServer();
  LiveProxyServer(const LiveProxyServer&) = delete;
  LiveProxyServer& operator=(const LiveProxyServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  const LiveProxyOptions& options() const { return options_; }
  void stop();

  // Blocks until the prefetch queue is empty and no prefetch is in flight
  // (used by tests and demos to observe a settled cache).
  void drain_prefetches();

  // Live connection-handler threads (finished ones are reaped).
  std::size_t connection_threads() { return conn_threads_.live(); }
  // Prefetch jobs dropped by queue overflow.
  std::size_t prefetch_jobs_dropped() const { return queue_dropped_.load(); }

  // The registry scraped at /appx/metrics: the engine's own registry when it
  // has one (AppxProxy), otherwise a server-local registry holding just the
  // transport-level metrics.
  obs::MetricsRegistry& metrics() { return *registry_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }
  // Recent per-request traces, also served at /appx/trace.
  const obs::TraceRing& traces() const { return traces_; }

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);
  http::Response handle_admin(const http::Request& request);
  void prefetch_worker();
  void enqueue_prefetches(const std::string& user);
  // Oldest queued job whose user is not being worked on (per-user ordering),
  // or end() when no job is eligible. Call with queue_mutex_ held.
  std::deque<core::PrefetchJob>::iterator next_job_locked();
  http::Response fetch_upstream(const http::Request& request);
  SimTime now() const;

  core::ProxyLike* engine_;
  UpstreamMap upstreams_;
  LiveProxyOptions options_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};

  std::mutex engine_mutex_;

  // Transport-level observability. own_registry_ backs registry_ only for
  // engines without one; metric pointers are resolved once in the ctor.
  obs::MetricsRegistry own_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Histogram* client_hit_us_ = nullptr;   // receive -> respond, cache hits
  obs::Histogram* client_miss_us_ = nullptr;  // receive -> respond, forwards
  obs::Histogram* prefetch_fetch_us_ = nullptr;  // upstream fetch, prefetch path
  obs::Counter* admin_requests_ = nullptr;
  obs::Counter* queue_dropped_total_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::TraceRing traces_{128};
  std::unique_ptr<obs::SnapshotWriter> snapshot_writer_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<core::PrefetchJob> prefetch_queue_;
  std::set<std::string> busy_users_;   // users with a job being processed
  std::size_t prefetch_active_ = 0;    // jobs currently being processed
  std::atomic<std::size_t> queue_dropped_{0};

  ThreadReaper conn_threads_;
  std::mutex conns_mutex_;
  std::set<int> conn_fds_;  // live connections, shut down on stop()
  std::thread acceptor_;
  std::vector<std::thread> prefetchers_;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

}  // namespace appx::net
