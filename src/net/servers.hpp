// Live (real-socket) origin server and acceleration proxy, on an
// event-driven runtime (DESIGN.md §5g).
//
// The simulator variant of these lives in eval/testbed; this is the same
// engine on actual TCP connections, mirroring the paper's deployable
// artefact (their mitmproxy-based prototype):
//
//   * LiveOriginServer — serves an apps::OriginServer over HTTP/1.1 with
//     keep-alive.
//   * LiveProxyServer — accepts client connections, serves exact matches
//     from the engine's cache (tagging them "X-Appx-Cache: hit"), forwards
//     misses upstream, and runs dynamic learning + prefetching on a pool of
//     worker threads (paper §5: "we assign different worker threads to
//     handle dynamic learning and prefetching").
//
// Network runtime (replacing the seed's thread-per-connection servers):
//   * N event-loop threads (EngineOptions.loop_threads, default
//     hardware_concurrency), each owning one event loop
//     (EngineOptions.io_backend: epoll readiness or io_uring completion,
//     DESIGN.md §5l) and one SO_REUSEPORT listener on the shared port — the
//     kernel shards accepted connections across loops, no accept lock, no
//     per-connection thread.
//   * Each connection is a non-blocking Conn state machine pinned to its
//     loop: reads feed an incremental HttpParser (one scratch buffer per
//     connection, reused across keep-alive requests), responses drain
//     through a pending-write queue flushed with writev (head + body leave
//     in one syscall), and a timer-heap idle timeout reaps silent or
//     slow-loris connections. On the uring backend the same state machine
//     runs on completion ops (submit_recv/submit_sendmsg, multishot accept):
//     a whole warm exchange rides one batched io_uring_enter.
//   * Engine events and blocking upstream I/O never run on a loop thread:
//     complete requests are handed to EngineOptions.request_workers threads
//     that drive the session API (shard mutexes can block a worker, never a
//     reactor) and post the finished response back to the owning loop.
//   * Upstream fetches — miss path and prefetch workers alike — draw
//     per-host keep-alive connections from an UpstreamPool instead of
//     reconnecting per fetch; stale pooled sockets are health-checked on
//     reuse and retried once on a fresh connect when they fail at use.
//
// Liveness and resource bounds (carried over from the blocking runtime):
//   * Upstream fetches carry connect/read/write timeouts and a per-request
//     deadline; a dead origin degrades to a 504 instead of hanging a worker.
//   * Prefetching runs on N workers over a shared bounded queue with
//     per-user ordering; overflow drops the oldest job back to the engine.
//   * stop() closes listeners and live connections, unblocks in-flight
//     upstream fetches via the pool, and joins every thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/server.hpp"
#include "core/engine_options.hpp"
#include "core/proxy.hpp"
#include "core/session.hpp"
#include "net/event_loop.hpp"
#include "net/http_io.hpp"
#include "net/socket.hpp"
#include "net/upstream_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace appx::net {

class Conn;

// One reactor thread: an event loop plus its SO_REUSEPORT listener and the
// connections the kernel sharded onto it. Connections are owned here and
// never migrate between shards.
struct LoopShard {
  std::unique_ptr<EventLoop> loop;
  std::unique_ptr<TcpListener> listener;
  std::map<int, std::shared_ptr<Conn>> conns;  // loop-thread only
  std::thread thread;
};

// A fixed pool of threads running engine events and blocking upstream I/O so
// the reactors never block. Tasks queued but unstarted at stop() are
// destroyed, not run (their captured connection handles release via RAII).
class WorkerPool {
 public:
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();
  void submit(std::function<void()> task);
  void stop();
  std::size_t queue_depth() const;

 private:
  void worker();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

class LiveOriginServer {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving immediately on
  // `loop_threads` reactor threads (0 = hardware_concurrency). `origin` must
  // outlive the server; apps::OriginServer::serve is internally synchronized,
  // so loops call it concurrently with no server-wide lock. `io_backend`
  // picks the event-loop backend ("" = APPX_IO_BACKEND env, default epoll;
  // see resolve_io_backend).
  LiveOriginServer(apps::OriginServer* origin, std::uint16_t port = 0,
                   std::size_t loop_threads = 0, std::string io_backend = {});
  ~LiveOriginServer();
  LiveOriginServer(const LiveOriginServer&) = delete;
  LiveOriginServer& operator=(const LiveOriginServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t requests_served() const { return served_.load(); }
  // Currently open client connections across all loops.
  std::size_t open_connections() const { return open_conns_.load(); }
  std::size_t loop_thread_count() const { return shards_.size(); }
  // Origin-side metrics (request count, serve-time histogram); also served
  // over HTTP at /appx/metrics[.json].
  const obs::MetricsRegistry& metrics() const { return registry_; }
  void stop();

 private:
  // Loop-thread entry; the parsed request rides on the connection as a
  // zero-copy view (Conn::request_view) instead of a message argument.
  void handle_request(const std::shared_ptr<Conn>& conn);
  std::shared_ptr<Conn> make_conn(LoopShard* shard, TcpStream stream);

  apps::OriginServer* origin_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> served_{0};
  std::atomic<std::size_t> open_conns_{0};
  obs::MetricsRegistry registry_;
  obs::Counter* requests_total_ = nullptr;
  obs::Histogram* serve_us_ = nullptr;
  obs::Gauge* conns_gauge_ = nullptr;
  std::vector<std::unique_ptr<LoopShard>> shards_;
};

class LiveProxyServer {
 public:
  // Routes upstream connections by request host: host -> 127.0.0.1:port.
  using UpstreamMap = std::map<std::string, std::uint16_t>;

  // `engine` must outlive the server (any ProxyLike: the sharded APPx
  // runtime, a single-shard engine, or a baseline). Throws InvalidArgument
  // when options.validate() fails — bad bounds are rejected, never clamped.
  LiveProxyServer(core::ProxyLike* engine, UpstreamMap upstreams, std::uint16_t port = 0,
                  core::EngineOptions options = {});
  ~LiveProxyServer();
  LiveProxyServer(const LiveProxyServer&) = delete;
  LiveProxyServer& operator=(const LiveProxyServer&) = delete;

  std::uint16_t port() const { return port_; }
  const core::EngineOptions& options() const { return options_; }
  void stop();

  // Blocks until the prefetch queue is empty and no prefetch is in flight
  // (used by tests and demos to observe a settled cache).
  void drain_prefetches();

  // Currently open client connections across all loops.
  std::size_t open_connections() const { return open_conns_.load(); }
  std::size_t loop_thread_count() const { return shards_.size(); }
  // Prefetch jobs dropped by queue overflow.
  std::size_t prefetch_jobs_dropped() const { return queue_dropped_.load(); }
  // The shared origin-side keep-alive pool (reuse/connect/stale counters).
  const UpstreamPool& upstream_pool() const { return *pool_; }

  // The registry scraped at /appx/metrics: the engine's own registry when it
  // has one (ProxyEngine / ShardedProxyEngine), otherwise a server-local
  // registry holding just the transport-level metrics.
  obs::MetricsRegistry& metrics() { return *registry_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }
  // Recent per-request traces, also served at /appx/trace.
  const obs::TraceRing& traces() const { return traces_; }

 private:
  // Loop-thread entry: admin requests answered inline, everything else
  // dispatched to the request workers. The request rides on the connection
  // as a zero-copy view (Conn::request_view) over its pinned parser buffer.
  void dispatch(const std::shared_ptr<Conn>& conn);
  std::shared_ptr<Conn> make_conn(LoopShard* shard, TcpStream stream);
  // Worker-thread body: engine events + upstream fetch for one request.
  // Calls Conn::complete exactly once (unless it throws).
  void process_request(Conn* conn, SimTime received);
  http::Response handle_admin(const http::Request& request);
  // Durable learned state (DESIGN.md §5k): render the engine's learned state
  // as one binary snapshot container / restore it from the configured path
  // at startup (missing or unreadable snapshots degrade to a logged cold
  // start, never a construction failure).
  std::vector<std::uint8_t> serialize_engine_state();
  void restore_engine_state();
  void prefetch_worker();
  // Queue the jobs an engine event decided to issue; overflow drops the
  // oldest queued job back into the engine (outstanding window released).
  void enqueue_jobs(std::vector<core::PrefetchJob> jobs);
  // Serialises engine access for engines that need it; returns an unlocked
  // (empty) guard when the engine synchronises itself (ShardedProxyEngine),
  // so shard-parallel events never funnel through one server mutex.
  std::unique_lock<std::mutex> engine_guard();
  // Oldest queued job whose user is not being worked on (per-user ordering),
  // or end() when no job is eligible. Call with queue_mutex_ held.
  std::deque<core::PrefetchJob>::iterator next_job_locked();
  // Fetch through the keep-alive pool; a reused connection that fails at use
  // is retried once on a fresh connect. Degrades to canned 502/504 (shared
  // singletons — no per-failure assembly). The shared_ptr lets the response
  // ride to the client's write queue without copying.
  std::shared_ptr<const http::Response> fetch_upstream(const http::Request& request);
  SimTime now() const;

  core::ProxyLike* engine_;
  UpstreamMap upstreams_;
  core::EngineOptions options_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> open_conns_{0};

  std::mutex engine_mutex_;  // unused when engine_->thread_safe()

  // Transport-level observability. own_registry_ backs registry_ only for
  // engines without one; metric pointers are resolved once in the ctor.
  obs::MetricsRegistry own_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Histogram* client_hit_us_ = nullptr;   // receive -> respond, cache hits
  obs::Histogram* client_miss_us_ = nullptr;  // receive -> respond, forwards
  obs::Histogram* prefetch_fetch_us_ = nullptr;  // upstream fetch, prefetch path
  obs::Histogram* accept_to_first_byte_us_ = nullptr;
  obs::Counter* admin_requests_ = nullptr;
  obs::Counter* queue_dropped_total_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* conns_gauge_ = nullptr;
  obs::TraceRing traces_{128};
  std::unique_ptr<obs::SnapshotWriter> snapshot_writer_;
  // Engine-state persistence (only when options.state_snapshot_path is set).
  std::unique_ptr<obs::SnapshotWriter> state_writer_;
  obs::Gauge* state_bytes_gauge_ = nullptr;    // appx_state_snapshot_bytes
  obs::Gauge* state_last_ms_gauge_ = nullptr;  // appx_state_snapshot_last_unix_ms

  std::unique_ptr<UpstreamPool> pool_;
  std::unique_ptr<WorkerPool> workers_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<core::PrefetchJob> prefetch_queue_;
  std::set<std::string> busy_users_;   // users with a job being processed
  std::size_t prefetch_active_ = 0;    // jobs currently being processed
  std::atomic<std::size_t> queue_dropped_{0};

  std::vector<std::unique_ptr<LoopShard>> shards_;
  std::vector<std::thread> prefetchers_;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

}  // namespace appx::net
