// Live (real-socket) origin server and acceleration proxy.
//
// The simulator variant of these lives in eval/testbed; this is the same
// engine on actual TCP connections, mirroring the paper's deployable
// artefact (their mitmproxy-based prototype):
//
//   * LiveOriginServer — serves an apps::OriginServer over HTTP/1.1 with
//     keep-alive, one thread per connection.
//   * LiveProxyServer — accepts client connections, serves exact matches
//     from the engine's cache (tagging them "X-Appx-Cache: hit"), forwards
//     misses upstream, and runs dynamic learning + prefetching on a
//     dedicated worker thread (paper §5: "we assign different worker threads
//     to handle dynamic learning and prefetching").
//
// Engine access is serialised by a mutex; network I/O never holds it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <set>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/server.hpp"
#include "core/baselines.hpp"
#include "core/proxy.hpp"
#include "net/http_io.hpp"
#include "net/socket.hpp"

namespace appx::net {

class LiveOriginServer {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving immediately.
  // `origin` must outlive the server.
  LiveOriginServer(apps::OriginServer* origin, std::uint16_t port = 0);
  ~LiveOriginServer();
  LiveOriginServer(const LiveOriginServer&) = delete;
  LiveOriginServer& operator=(const LiveOriginServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::size_t requests_served() const { return served_.load(); }
  void stop();

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);

  apps::OriginServer* origin_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> served_{0};
  std::mutex origin_mutex_;
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
  std::mutex conns_mutex_;
  std::set<int> conn_fds_;  // live connections, shut down on stop()
  std::thread acceptor_;
};

class LiveProxyServer {
 public:
  // Routes upstream connections by request host: host -> 127.0.0.1:port.
  using UpstreamMap = std::map<std::string, std::uint16_t>;

  // `engine` must outlive the server (any ProxyLike: APPx or a baseline).
  LiveProxyServer(core::ProxyLike* engine, UpstreamMap upstreams, std::uint16_t port = 0);
  ~LiveProxyServer();
  LiveProxyServer(const LiveProxyServer&) = delete;
  LiveProxyServer& operator=(const LiveProxyServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  void stop();

  // Blocks until the prefetch queue is empty and no prefetch is in flight
  // (used by tests and demos to observe a settled cache).
  void drain_prefetches();

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);
  void prefetch_loop();
  void enqueue_prefetches(const std::string& user);
  http::Response fetch_upstream(const http::Request& request);
  SimTime now() const;

  core::ProxyLike* engine_;
  UpstreamMap upstreams_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};

  std::mutex engine_mutex_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<core::PrefetchJob> prefetch_queue_;
  bool prefetch_busy_ = false;

  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
  std::mutex conns_mutex_;
  std::set<int> conn_fds_;  // live connections, shut down on stop()
  std::thread acceptor_;
  std::thread prefetcher_;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

}  // namespace appx::net
