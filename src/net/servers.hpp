// Live (real-socket) origin server and acceleration proxy.
//
// The simulator variant of these lives in eval/testbed; this is the same
// engine on actual TCP connections, mirroring the paper's deployable
// artefact (their mitmproxy-based prototype):
//
//   * LiveOriginServer — serves an apps::OriginServer over HTTP/1.1 with
//     keep-alive, one thread per connection.
//   * LiveProxyServer — accepts client connections, serves exact matches
//     from the engine's cache (tagging them "X-Appx-Cache: hit"), forwards
//     misses upstream, and runs dynamic learning + prefetching on a pool of
//     worker threads (paper §5: "we assign different worker threads to
//     handle dynamic learning and prefetching").
//
// Engine access goes through the session API: each connection resolves its
// user once into a core::Session and every event completes in one call that
// also carries the prefetch jobs to enqueue. When the engine is thread-safe
// (ShardedProxyEngine) events run with no server-side lock at all — shards
// synchronise themselves; a single-shard or baseline engine is serialised by
// one server mutex as before. Network I/O never holds any engine lock.
//
// Liveness and resource bounds:
//   * Upstream fetches carry connect/read/write timeouts and a per-request
//     deadline; a dead origin degrades to a 504 instead of hanging a thread.
//   * Prefetching runs on N workers over a shared bounded queue. Jobs for
//     the same user are processed in order and never concurrently (chained
//     prefetches stay causal), but one slow upstream no longer head-of-line
//     blocks every other user's prefetching. Queue overflow drops the oldest
//     job (reported to the engine so its outstanding window is released).
//   * Connection-handler threads are reaped as connections close instead of
//     accumulating until stop().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/server.hpp"
#include "core/engine_options.hpp"
#include "core/proxy.hpp"
#include "core/session.hpp"
#include "net/http_io.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace appx::net {

// Owns one std::thread per live connection and joins finished ones as new
// work arrives, so a long-lived server does not accumulate a dead thread
// handle per connection served.
class ThreadReaper {
 public:
  template <typename Fn>
  void spawn(Fn fn) {
    const std::lock_guard<std::mutex> lock(mutex_);
    reap_locked();
    const std::uint64_t id = next_id_++;
    threads_.emplace(id, std::thread([this, id, fn = std::move(fn)]() mutable {
      fn();
      const std::lock_guard<std::mutex> done_lock(mutex_);
      finished_.push_back(id);
    }));
  }

  // Number of still-running threads (reaps finished ones first).
  std::size_t live();

  // Join everything, running or finished. Callers must first unblock the
  // threads (close listeners / shut down connections).
  void join_all();

 private:
  void reap_locked();

  std::mutex mutex_;
  std::map<std::uint64_t, std::thread> threads_;
  std::vector<std::uint64_t> finished_;  // ids awaiting join
  std::uint64_t next_id_ = 0;
};

class LiveOriginServer {
 public:
  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving immediately.
  // `origin` must outlive the server.
  LiveOriginServer(apps::OriginServer* origin, std::uint16_t port = 0);
  ~LiveOriginServer();
  LiveOriginServer(const LiveOriginServer&) = delete;
  LiveOriginServer& operator=(const LiveOriginServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  std::size_t requests_served() const { return served_.load(); }
  // Live connection-handler threads (finished ones are reaped).
  std::size_t connection_threads() { return conn_threads_.live(); }
  // Origin-side metrics (request count, serve-time histogram); also served
  // over HTTP at /appx/metrics[.json].
  const obs::MetricsRegistry& metrics() const { return registry_; }
  void stop();

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);

  apps::OriginServer* origin_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> served_{0};
  std::mutex origin_mutex_;
  obs::MetricsRegistry registry_;
  obs::Counter* requests_total_ = nullptr;
  obs::Histogram* serve_us_ = nullptr;
  ThreadReaper conn_threads_;
  std::mutex conns_mutex_;
  std::set<int> conn_fds_;  // live connections, shut down on stop()
  std::thread acceptor_;
};

// Deprecated alias: live-proxy runtime bounds are the transport/runtime
// section of core::EngineOptions (one knob surface for the whole stack; see
// core/engine_options.hpp). Will be removed after one release.
using LiveProxyOptions = core::EngineOptions;

class LiveProxyServer {
 public:
  // Routes upstream connections by request host: host -> 127.0.0.1:port.
  using UpstreamMap = std::map<std::string, std::uint16_t>;

  // `engine` must outlive the server (any ProxyLike: the sharded APPx
  // runtime, a single-shard engine, or a baseline). Throws InvalidArgument
  // when options.validate() fails — bad bounds are rejected, never clamped.
  LiveProxyServer(core::ProxyLike* engine, UpstreamMap upstreams, std::uint16_t port = 0,
                  LiveProxyOptions options = {});
  ~LiveProxyServer();
  LiveProxyServer(const LiveProxyServer&) = delete;
  LiveProxyServer& operator=(const LiveProxyServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }
  const LiveProxyOptions& options() const { return options_; }
  void stop();

  // Blocks until the prefetch queue is empty and no prefetch is in flight
  // (used by tests and demos to observe a settled cache).
  void drain_prefetches();

  // Live connection-handler threads (finished ones are reaped).
  std::size_t connection_threads() { return conn_threads_.live(); }
  // Prefetch jobs dropped by queue overflow.
  std::size_t prefetch_jobs_dropped() const { return queue_dropped_.load(); }

  // The registry scraped at /appx/metrics: the engine's own registry when it
  // has one (ProxyEngine / ShardedProxyEngine), otherwise a server-local
  // registry holding just the transport-level metrics.
  obs::MetricsRegistry& metrics() { return *registry_; }
  const obs::MetricsRegistry& metrics() const { return *registry_; }
  // Recent per-request traces, also served at /appx/trace.
  const obs::TraceRing& traces() const { return traces_; }

 private:
  void accept_loop();
  void serve_connection(TcpStream stream);
  http::Response handle_admin(const http::Request& request);
  void prefetch_worker();
  // Queue the jobs an engine event decided to issue; overflow drops the
  // oldest queued job back into the engine (outstanding window released).
  void enqueue_jobs(std::vector<core::PrefetchJob> jobs);
  // Serialises engine access for engines that need it; returns an unlocked
  // (empty) guard when the engine synchronises itself (ShardedProxyEngine),
  // so shard-parallel events never funnel through one server mutex.
  std::unique_lock<std::mutex> engine_guard();
  // Oldest queued job whose user is not being worked on (per-user ordering),
  // or end() when no job is eligible. Call with queue_mutex_ held.
  std::deque<core::PrefetchJob>::iterator next_job_locked();
  http::Response fetch_upstream(const http::Request& request);
  SimTime now() const;

  core::ProxyLike* engine_;
  UpstreamMap upstreams_;
  LiveProxyOptions options_;
  TcpListener listener_;
  std::atomic<bool> stopping_{false};

  std::mutex engine_mutex_;  // unused when engine_->thread_safe()

  // Transport-level observability. own_registry_ backs registry_ only for
  // engines without one; metric pointers are resolved once in the ctor.
  obs::MetricsRegistry own_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Histogram* client_hit_us_ = nullptr;   // receive -> respond, cache hits
  obs::Histogram* client_miss_us_ = nullptr;  // receive -> respond, forwards
  obs::Histogram* prefetch_fetch_us_ = nullptr;  // upstream fetch, prefetch path
  obs::Counter* admin_requests_ = nullptr;
  obs::Counter* queue_dropped_total_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::TraceRing traces_{128};
  std::unique_ptr<obs::SnapshotWriter> snapshot_writer_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<core::PrefetchJob> prefetch_queue_;
  std::set<std::string> busy_users_;   // users with a job being processed
  std::size_t prefetch_active_ = 0;    // jobs currently being processed
  std::atomic<std::size_t> queue_dropped_{0};

  ThreadReaper conn_threads_;
  std::mutex conns_mutex_;
  std::set<int> conn_fds_;  // live connections, shut down on stop()
  std::thread acceptor_;
  std::vector<std::thread> prefetchers_;
  std::chrono::steady_clock::time_point epoch_ = std::chrono::steady_clock::now();
};

}  // namespace appx::net
