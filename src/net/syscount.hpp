// In-process syscall accounting for the serving data plane (DESIGN.md §5l).
//
// Every syscall the network runtime issues on its own behalf — reactor waits,
// interest-set updates, socket reads/writes, accepts, loop wakeups,
// io_uring_enter/register — passes through count() at the call site. The
// counters are process-wide relaxed atomics: recording costs one uncontended
// add, works identically under sanitizers and in CI containers where ptrace
// is blocked, and is deterministic (a ptrace/strace self-fork also counts the
// tracer's own noise and is forbidden in many sandboxes). Deliberately NOT
// counted: blocking client/upstream sockets (TcpStream used by tests,
// benches and the upstream pool — not the warm-hit serving path) and futex
// traffic from mutex/condvar scheduling, which both backends pay equally.
//
// bench_syscalls drives the warm-hit path through a live proxy, diffs
// snapshot() across a measured window, and gates syscalls/request against
// bench/syscall_budget.json the same way bench_alloc gates allocations.
#pragma once

#include <atomic>
#include <cstdint>

namespace appx::net::sys {

// One bucket per syscall family on the serving path.
enum class Op : unsigned {
  kWait = 0,   // epoll_wait
  kCtl,        // epoll_ctl (add/mod/del)
  kRead,       // recv/read on a served connection (+ wakeup-eventfd drains)
  kWrite,      // sendmsg/writev on a served connection
  kAccept,     // accept4
  kWake,       // eventfd write from post()/stop()
  kEnter,      // io_uring_enter
  kRegister,   // io_uring_register (file-table updates)
  kOpCount
};

namespace detail {
inline std::atomic<std::uint64_t> counters[static_cast<unsigned>(Op::kOpCount)];
}

inline void count(Op op) {
  detail::counters[static_cast<unsigned>(op)].fetch_add(1, std::memory_order_relaxed);
}

struct Counters {
  std::uint64_t wait = 0;
  std::uint64_t ctl = 0;
  std::uint64_t read = 0;
  std::uint64_t write = 0;
  std::uint64_t accept = 0;
  std::uint64_t wake = 0;
  std::uint64_t enter = 0;
  std::uint64_t reg = 0;

  std::uint64_t total() const { return wait + ctl + read + write + accept + wake + enter + reg; }

  Counters operator-(const Counters& other) const {
    Counters d;
    d.wait = wait - other.wait;
    d.ctl = ctl - other.ctl;
    d.read = read - other.read;
    d.write = write - other.write;
    d.accept = accept - other.accept;
    d.wake = wake - other.wake;
    d.enter = enter - other.enter;
    d.reg = reg - other.reg;
    return d;
  }
};

inline Counters snapshot() {
  const auto load = [](Op op) {
    return detail::counters[static_cast<unsigned>(op)].load(std::memory_order_relaxed);
  };
  Counters c;
  c.wait = load(Op::kWait);
  c.ctl = load(Op::kCtl);
  c.read = load(Op::kRead);
  c.write = load(Op::kWrite);
  c.accept = load(Op::kAccept);
  c.wake = load(Op::kWake);
  c.enter = load(Op::kEnter);
  c.reg = load(Op::kRegister);
  return c;
}

}  // namespace appx::net::sys
