#include "net/upstream_pool.hpp"

#include <sys/socket.h>

#include <utility>

#include "util/error.hpp"

namespace appx::net {

UpstreamPool::UpstreamPool(Options options, obs::MetricsRegistry* registry)
    : options_(options) {
  if (registry != nullptr) {
    reuse_total_ = &registry->counter("appx_upstream_reuse_total");
    connect_total_ = &registry->counter("appx_upstream_connect_total");
    stale_total_ = &registry->counter("appx_upstream_stale_total");
    retry_total_ = &registry->counter("appx_upstream_retry_total");
    idle_gauge_ = &registry->gauge("appx_upstream_idle");
  }
}

UpstreamPool::~UpstreamPool() { shutdown(); }

// --- Lease ---------------------------------------------------------------------------

UpstreamPool::Lease::~Lease() { abandon(); }

UpstreamPool::Lease::Lease(Lease&& other) noexcept
    : pool_(other.pool_),
      stream_(std::move(other.stream_)),
      key_(std::move(other.key_)),
      reused_(other.reused_) {
  other.pool_ = nullptr;
  other.reused_ = false;
}

UpstreamPool::Lease& UpstreamPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    abandon();
    pool_ = other.pool_;
    stream_ = std::move(other.stream_);
    key_ = std::move(other.key_);
    reused_ = other.reused_;
    other.pool_ = nullptr;
    other.reused_ = false;
  }
  return *this;
}

void UpstreamPool::Lease::abandon() {
  if (pool_ != nullptr && stream_.valid()) pool_->forget_lease(stream_.fd());
  pool_ = nullptr;
  stream_ = TcpStream(Fd{});  // close now, while the fd is deregistered
}

void UpstreamPool::forget_lease(int fd) {
  const std::lock_guard<std::mutex> lock(mutex_);
  leased_fds_.erase(fd);
}

bool UpstreamPool::healthy(const TcpStream& stream) {
  // A parked connection must be silent: readable means either EOF (origin
  // closed it) or stray bytes (framing desync) — both disqualify.
  char probe;
  const ssize_t n = ::recv(stream.fd(), &probe, 1, MSG_PEEK | MSG_DONTWAIT);
  if (n > 0) return false;   // unexpected bytes
  if (n == 0) return false;  // orderly close
  return errno == EAGAIN || errno == EWOULDBLOCK;
}

void UpstreamPool::update_idle_gauge_locked() {
  if (idle_gauge_ == nullptr) return;
  std::size_t total = 0;
  for (const auto& [key, parked] : idle_) total += parked.size();
  idle_gauge_->set(static_cast<std::int64_t>(total));
}

TcpStream UpstreamPool::connect_fresh(const std::string& host, std::uint16_t port,
                                      const std::string& key) {
  (void)key;
  TcpStream stream = TcpStream::connect(host, port, options_.connect_timeout);
  connects_.fetch_add(1, std::memory_order_relaxed);
  if (connect_total_ != nullptr) connect_total_->inc();
  return stream;
}

UpstreamPool::Lease UpstreamPool::acquire(const std::string& host, std::uint16_t port,
                                          bool force_fresh) {
  if (stopping_.load(std::memory_order_acquire)) {
    throw Error("upstream pool: shutting down");
  }
  const std::string key = host + ":" + std::to_string(port);
  if (!force_fresh && options_.max_per_host > 0) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = idle_.find(key);
    if (it != idle_.end()) {
      const auto now = std::chrono::steady_clock::now();
      // Prefer the most recently parked connection (LIFO keeps the warm end
      // warm); the front is the oldest and ages out first.
      while (!it->second.empty()) {
        Idle candidate = std::move(it->second.back());
        it->second.pop_back();
        const bool aged =
            options_.idle_timeout > 0 &&
            now - candidate.parked_at > std::chrono::microseconds(options_.idle_timeout);
        if (!aged && healthy(candidate.stream)) {
          leased_fds_.insert(candidate.stream.fd());
          update_idle_gauge_locked();
          lock.unlock();
          reuses_.fetch_add(1, std::memory_order_relaxed);
          if (reuse_total_ != nullptr) reuse_total_->inc();
          return Lease(this, std::move(candidate.stream), key, /*reused=*/true);
        }
        stale_.fetch_add(1, std::memory_order_relaxed);
        if (stale_total_ != nullptr) stale_total_->inc();
        // candidate.stream closes here (RAII) and we try the next one.
      }
      if (it->second.empty()) idle_.erase(it);
      update_idle_gauge_locked();
    }
  }
  // Connect outside the lock: a slow origin must not serialise other hosts'
  // acquires behind it.
  TcpStream stream = connect_fresh(host, port, key);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      throw Error("upstream pool: shutting down");
    }
    leased_fds_.insert(stream.fd());
  }
  return Lease(this, std::move(stream), key, /*reused=*/false);
}

void UpstreamPool::release(Lease lease, bool reusable) {
  if (!lease.valid()) return;
  lease.pool_ = nullptr;  // deregistered here; the destructor must not re-enter
  const std::lock_guard<std::mutex> lock(mutex_);
  leased_fds_.erase(lease.stream_.fd());
  if (!reusable || options_.max_per_host == 0 || stopping_.load(std::memory_order_acquire)) {
    return;  // lease.stream_ closes on scope exit
  }
  // Returned sockets must not carry per-request I/O state into the next use.
  lease.stream_.clear_deadline();
  lease.stream_.set_read_timeout(0);
  lease.stream_.set_write_timeout(0);
  auto& parked = idle_[lease.key_];
  parked.push_back(Idle{std::move(lease.stream_), std::chrono::steady_clock::now()});
  while (parked.size() > options_.max_per_host) {
    parked.pop_front();  // oldest idle closes
  }
  update_idle_gauge_locked();
}

void UpstreamPool::shutdown() {
  if (stopping_.exchange(true)) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  idle_.clear();  // parked streams close via RAII
  for (const int fd : leased_fds_) ::shutdown(fd, SHUT_RDWR);
  update_idle_gauge_locked();
}

std::size_t UpstreamPool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, parked] : idle_) total += parked.size();
  return total;
}

void UpstreamPool::note_retry() {
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (retry_total_ != nullptr) retry_total_->inc();
}

}  // namespace appx::net
