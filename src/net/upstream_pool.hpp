// Per-host HTTP/1.1 keep-alive connection pool for proxy->origin fetches.
//
// The seed runtime opened a fresh TCP connection to the origin for EVERY
// upstream fetch and prefetch — a full handshake RTT added to every cache
// miss, and at prefetch fan-out rates a connect storm against the origin.
// UpstreamPool keeps completed connections parked per host and hands them
// back to the next fetch:
//
//   * bounded: at most `max_per_host` idle connections per origin
//     (oldest-idle evicted beyond it); anything over the bound closes.
//   * health-checked on reuse: a parked socket the origin has since closed
//     (FIN pending) or polluted (stray bytes) is detected with a
//     non-blocking MSG_PEEK and discarded, falling through to the next
//     parked socket or a fresh connect. Reuse never hands out a socket with
//     buffered input.
//   * aged out: idle connections older than `idle_timeout` are discarded on
//     acquire (the origin's own idle timer has likely fired by then).
//   * stop-safe: every leased fd is registered until release, so shutdown()
//     can ::shutdown() in-flight fetches mid-read; acquire() after shutdown
//     throws, and released connections close instead of re-parking.
//
// The pool is shared by the miss path and the prefetch workers (both sides
// of the paper's §5 worker split), so a hot origin sees one warm connection
// set, not per-path churn. Callers that detect a stale socket only at use
// (write succeeded into the FIN race, read hit EOF) retry once on a fresh
// connect — see LiveProxyServer::fetch_upstream.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "util/units.hpp"

namespace appx::net {

class UpstreamPool {
 public:
  struct Options {
    std::size_t max_per_host = 8;       // 0 disables pooling entirely
    Duration idle_timeout = seconds(30);  // 0 = parked connections never age out
    Duration connect_timeout = seconds(5);
  };

  // `registry` may be null (no metrics). Counter names:
  // appx_upstream_{reuse,connect,stale,retry}_total, gauge appx_upstream_idle.
  explicit UpstreamPool(Options options, obs::MetricsRegistry* registry = nullptr);
  ~UpstreamPool();
  UpstreamPool(const UpstreamPool&) = delete;
  UpstreamPool& operator=(const UpstreamPool&) = delete;

  // A borrowed upstream connection. Move-only; must be returned via
  // release() (or destroyed — which counts as a non-reusable release: the
  // destructor unregisters the fd from the pool and closes the connection,
  // so an abandoned lease never leaves a dangling entry for shutdown() to
  // ::shutdown() after the fd number has been recycled).
  class Lease {
   public:
    Lease() = default;
    ~Lease();
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;

    TcpStream& stream() { return stream_; }
    // True when this connection came out of the pool (vs a fresh connect):
    // the caller should retry once on a fresh connection if it fails mid-use.
    bool reused() const { return reused_; }
    bool valid() const { return stream_.valid(); }

   private:
    friend class UpstreamPool;
    Lease(UpstreamPool* pool, TcpStream stream, std::string key, bool reused)
        : pool_(pool), stream_(std::move(stream)), key_(std::move(key)), reused_(reused) {}
    // Unregister from the pool without parking (destructor / move-assign).
    void abandon();
    UpstreamPool* pool_ = nullptr;
    TcpStream stream_{Fd{}};
    std::string key_;
    bool reused_ = false;
  };

  // Hand out a healthy pooled connection for host:port, or a fresh connect.
  // `force_fresh` skips the pool (retry after a stale-at-use failure).
  // Throws Error/TimeoutError on connect failure or after shutdown().
  Lease acquire(const std::string& host, std::uint16_t port, bool force_fresh = false);

  // Return a lease. `reusable` means the HTTP exchange completed cleanly at
  // a message boundary with no residual bytes; anything else closes.
  void release(Lease lease, bool reusable);

  // Close parked connections, ::shutdown() leased ones (unblocking fetches
  // stuck in read), and refuse further acquires.
  void shutdown();

  // --- introspection (tests, /appx/metrics) ---------------------------------
  std::size_t idle_count() const;
  std::uint64_t reuses() const { return reuses_.load(std::memory_order_relaxed); }
  std::uint64_t connects() const { return connects_.load(std::memory_order_relaxed); }
  std::uint64_t stale_discards() const { return stale_.load(std::memory_order_relaxed); }
  // Recorded by callers that retried a stale-at-use connection.
  void note_retry();
  std::uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }

 private:
  struct Idle {
    TcpStream stream{Fd{}};
    std::chrono::steady_clock::time_point parked_at;
  };

  // True when the parked socket is still usable: open, no pending bytes.
  static bool healthy(const TcpStream& stream);

  TcpStream connect_fresh(const std::string& host, std::uint16_t port, const std::string& key);
  void update_idle_gauge_locked();
  // Drop `fd` from leased_fds_ (a Lease died without release()).
  void forget_lease(int fd);

  Options options_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mutex_;
  std::map<std::string, std::deque<Idle>> idle_;  // key = host:port, FIFO per host
  std::set<int> leased_fds_;                      // in-flight fetches, for shutdown()

  std::atomic<std::uint64_t> reuses_{0};
  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> stale_{0};
  std::atomic<std::uint64_t> retries_{0};

  obs::Counter* reuse_total_ = nullptr;
  obs::Counter* connect_total_ = nullptr;
  obs::Counter* stale_total_ = nullptr;
  obs::Counter* retry_total_ = nullptr;
  obs::Gauge* idle_gauge_ = nullptr;
};

}  // namespace appx::net
