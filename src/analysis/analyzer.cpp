#include "analysis/analyzer.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace appx::analysis {

namespace {

using core::BodyKind;
using core::DependencyEdge;
using core::FieldLocation;
using core::RequestField;
using core::ResponseBodyKind;
using core::TransactionSignature;
using ir::Instruction;
using ir::Method;
using ir::OpCode;
using ir::Program;
using ir::Reg;
using pattern::FieldTemplate;

// --- abstract value domain --------------------------------------------------------

struct ObjectData;
struct Node;
using ValuePtr = std::shared_ptr<const Node>;
using ObjectPtr = std::shared_ptr<ObjectData>;

struct Node {
  enum class Kind { kConst, kEnv, kConcat, kResp, kRespField, kObject, kUnknown };
  Kind kind = Kind::kUnknown;
  std::string text;            // const text / env name
  std::vector<ValuePtr> parts; // concat parts; also provenance links
  std::string site;            // resp / resp-field: send-site key
  std::string path;            // resp-field JSON path
  ObjectPtr object;            // heap reference
  SliceEntry origin;           // defining instruction
};

ValuePtr make_unknown(SliceEntry origin) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kUnknown;
  n->origin = std::move(origin);
  return n;
}

ValuePtr make_const(std::string text, SliceEntry origin) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kConst;
  n->text = std::move(text);
  n->origin = std::move(origin);
  return n;
}

ValuePtr make_env(std::string name, SliceEntry origin) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kEnv;
  n->text = std::move(name);
  n->origin = std::move(origin);
  return n;
}

// Structural equality (objects by identity).
bool values_equal(const ValuePtr& a, const ValuePtr& b) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Node::Kind::kConst:
    case Node::Kind::kEnv:
      return a->text == b->text;
    case Node::Kind::kConcat:
      if (a->parts.size() != b->parts.size()) return false;
      for (std::size_t i = 0; i < a->parts.size(); ++i) {
        if (!values_equal(a->parts[i], b->parts[i])) return false;
      }
      return true;
    case Node::Kind::kResp:
      return a->site == b->site;
    case Node::Kind::kRespField:
      return a->site == b->site && a->path == b->path;
    case Node::Kind::kObject:
      return a->object == b->object;
    case Node::Kind::kUnknown:
      return false;  // unknowns never merge to equal
  }
  return false;
}

void collect_origins(const ValuePtr& v, std::set<SliceEntry>& out) {
  if (!v) return;
  out.insert(v->origin);
  for (const ValuePtr& part : v->parts) collect_origins(part, out);
}

// --- builders and heap ---------------------------------------------------------------

struct BuilderField {
  std::string name;
  ValuePtr value;
  bool optional = false;
  SliceEntry origin;
};

struct BuilderData {
  std::string verb = "GET";
  ValuePtr url;
  std::vector<BuilderField> query;
  std::vector<BuilderField> headers;
  std::vector<BuilderField> body;
  std::set<SliceEntry> op_origins;  // builder-mutating instructions
};

struct ObjectData {
  std::string class_name;
  std::map<std::string, ValuePtr> fields;
  std::unique_ptr<BuilderData> builder;  // non-null for HTTP builders
};

struct SendSite {
  std::string key;  // "method:pc"
  std::string label;
  std::string body_kind;
  BuilderData builder;
  std::set<std::string> response_paths;
  std::set<SliceEntry> slice;
};

ValuePtr make_object(std::string class_name, bool is_builder, SliceEntry origin) {
  auto obj = std::make_shared<ObjectData>();
  obj->class_name = std::move(class_name);
  if (is_builder) obj->builder = std::make_unique<BuilderData>();
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kObject;
  n->object = std::move(obj);
  n->origin = std::move(origin);
  return n;
}

// Deep-ish copy used when alias analysis is disabled: the copy shares no
// mutable state with the original, so later writes are invisible through it.
ValuePtr copy_object(const ValuePtr& v, SliceEntry origin) {
  auto obj = std::make_shared<ObjectData>();
  obj->class_name = v->object->class_name;
  obj->fields = v->object->fields;
  if (v->object->builder) obj->builder = std::make_unique<BuilderData>(*v->object->builder);
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::kObject;
  n->object = std::move(obj);
  n->origin = std::move(origin);
  return n;
}

// BuilderData needs a copy constructor for the above; the default one copies
// the unique_ptr-free members, which is what we get since it has none.

// --- interpreter ------------------------------------------------------------------------

class Interpreter {
 public:
  Interpreter(const Program& program, const AnalysisOptions& options)
      : program_(program), options_(options) {}

  void run() {
    for (std::size_t iteration = 0; iteration < options_.max_fixpoint_iterations; ++iteration) {
      ++report_.fixpoint_iterations;
      // Sites are rebuilt each fixpoint pass so values that arrived through
      // the intent map in later passes replace early Unknowns rather than
      // merging with them.
      sites_.clear();
      site_order_.clear();
      methods_seen_.clear();
      intent_changed_ = false;
      for (const std::string& entry : program_.entry_points) {
        const Method& method = program_.get_method(entry);
        std::vector<std::string> stack;
        interpret(method, {}, 0, stack);
      }
      if (!intent_changed_) break;
    }
    report_.methods_analyzed = methods_seen_.size();
    report_.send_sites = site_order_.size();
  }

  AnalysisResult finish();

 private:
  SliceEntry here(const Method& method, std::size_t pc) const {
    return SliceEntry{method.name, pc};
  }

  ValuePtr interpret(const Method& method, std::vector<ValuePtr> args, std::size_t depth,
                     std::vector<std::string>& stack);

  ValuePtr rx_element_of(const ValuePtr& v, SliceEntry origin) const {
    // flatMap iterates the elements of an observable built from `v`; when v
    // names a JSON array, the element is the per-element ([*]) path.
    if (v->kind == Node::Kind::kRespField) {
      auto n = std::make_shared<Node>();
      n->kind = Node::Kind::kRespField;
      n->site = v->site;
      n->path = v->path + "[*]";
      n->origin = origin;
      n->parts = {v};
      return n;
    }
    if (v->kind == Node::Kind::kResp) return v;
    return v;
  }

  ValuePtr call_ref(std::string_view ref, std::vector<ValuePtr> args, std::size_t depth,
                    std::vector<std::string>& stack, SliceEntry origin) {
    const Method* callee = program_.find_method(ref);
    if (callee == nullptr) {
      log_warn("analysis") << "unresolved method reference " << ref;
      return make_unknown(origin);
    }
    return interpret(*callee, std::move(args), depth + 1, stack);
  }

  void merge_builder_field(std::vector<BuilderField>& existing,
                           const std::vector<BuilderField>& incoming);
  void record_send(const Method& method, std::size_t pc, const Instruction& instr,
                   const ObjectData& builder_obj);

  const Program& program_;
  AnalysisOptions options_;
  std::map<std::string, ValuePtr> intent_map_;
  bool intent_changed_ = false;
  std::map<std::string, SendSite> sites_;
  std::vector<std::string> site_order_;
  std::set<std::string> methods_seen_;
  AnalysisReport report_;
};

ValuePtr Interpreter::interpret(const Method& method, std::vector<ValuePtr> args,
                                std::size_t depth, std::vector<std::string>& stack) {
  methods_seen_.insert(method.name);
  const SliceEntry entry_origin = here(method, 0);
  if (depth > options_.max_call_depth) return make_unknown(entry_origin);
  if (std::find(stack.begin(), stack.end(), method.name) != stack.end()) {
    return make_unknown(entry_origin);  // recursion: give up on this path
  }
  stack.push_back(method.name);

  std::vector<ValuePtr> regs(static_cast<std::size_t>(method.reg_count));
  for (std::size_t i = 0; i < regs.size(); ++i) regs[i] = make_unknown(entry_origin);
  for (std::size_t i = 0; i < args.size() && i < static_cast<std::size_t>(method.param_count);
       ++i) {
    regs[i] = std::move(args[i]);
  }

  ValuePtr return_value;
  int guard_depth = 0;

  for (std::size_t pc = 0; pc < method.code.size(); ++pc) {
    const Instruction& instr = method.code[pc];
    ++report_.instructions_interpreted;
    const SliceEntry origin = here(method, pc);
    const auto reg = [&](Reg r) -> ValuePtr& { return regs[static_cast<std::size_t>(r)]; };

    switch (instr.op) {
      case OpCode::kConst:
        reg(instr.dst) = make_const(instr.s, origin);
        break;
      case OpCode::kEnv:
        reg(instr.dst) = make_env(instr.s, origin);
        break;
      case OpCode::kMove: {
        const ValuePtr src = reg(instr.a);
        if (src->kind == Node::Kind::kObject && !options_.alias_analysis) {
          // Without alias analysis a move is an untracked copy: subsequent
          // writes through the original are lost to this reference.
          reg(instr.dst) = copy_object(src, origin);
        } else {
          reg(instr.dst) = src;
        }
        break;
      }
      case OpCode::kConcat: {
        auto n = std::make_shared<Node>();
        n->kind = Node::Kind::kConcat;
        n->origin = origin;
        const auto flatten = [&n](const ValuePtr& v) {
          if (v->kind == Node::Kind::kConcat) {
            n->parts.insert(n->parts.end(), v->parts.begin(), v->parts.end());
          } else {
            n->parts.push_back(v);
          }
        };
        flatten(reg(instr.a));
        flatten(reg(instr.b));
        reg(instr.dst) = std::move(n);
        break;
      }
      case OpCode::kNewObject:
        reg(instr.dst) = make_object(instr.s, /*is_builder=*/false, origin);
        break;
      case OpCode::kGetField: {
        const ValuePtr obj = reg(instr.a);
        if (obj->kind == Node::Kind::kObject) {
          const auto it = obj->object->fields.find(instr.s);
          reg(instr.dst) = (it != obj->object->fields.end()) ? it->second : make_unknown(origin);
        } else if (obj->kind == Node::Kind::kResp || obj->kind == Node::Kind::kRespField) {
          // Field access on JSON data behaves like json_get.
          auto n = std::make_shared<Node>();
          n->kind = Node::Kind::kRespField;
          n->site = obj->site;
          n->path = obj->kind == Node::Kind::kResp ? instr.s : obj->path + "." + instr.s;
          n->origin = origin;
          n->parts = {obj};
          const auto site = sites_.find(obj->site);
          if (site != sites_.end()) site->second.response_paths.insert(n->path);
          reg(instr.dst) = std::move(n);
        } else {
          reg(instr.dst) = make_unknown(origin);
        }
        break;
      }
      case OpCode::kPutField: {
        const ValuePtr obj = reg(instr.a);
        if (obj->kind == Node::Kind::kObject) obj->object->fields[instr.s] = reg(instr.b);
        break;
      }
      case OpCode::kInvoke: {
        std::vector<ValuePtr> call_args;
        call_args.reserve(instr.args.size());
        for (Reg r : instr.args) call_args.push_back(reg(r));
        reg(instr.dst) = call_ref(instr.s, std::move(call_args), depth, stack, origin);
        break;
      }
      case OpCode::kIntentPut: {
        if (!options_.intent_support) break;
        const ValuePtr value = reg(instr.a);
        const auto it = intent_map_.find(instr.s);
        if (it == intent_map_.end() || !values_equal(it->second, value)) {
          intent_map_[instr.s] = value;
          intent_changed_ = true;
        }
        break;
      }
      case OpCode::kIntentGet: {
        if (!options_.intent_support) {
          reg(instr.dst) = make_unknown(origin);
          break;
        }
        const auto it = intent_map_.find(instr.s);
        reg(instr.dst) = (it != intent_map_.end()) ? it->second : make_unknown(origin);
        break;
      }
      case OpCode::kRxMap: {
        if (!options_.rx_support) {
          reg(instr.dst) = make_unknown(origin);
          break;
        }
        reg(instr.dst) = call_ref(instr.s, {reg(instr.a)}, depth, stack, origin);
        break;
      }
      case OpCode::kRxFlatMap: {
        if (!options_.rx_support) {
          reg(instr.dst) = make_unknown(origin);
          break;
        }
        reg(instr.dst) =
            call_ref(instr.s, {rx_element_of(reg(instr.a), origin)}, depth, stack, origin);
        break;
      }
      case OpCode::kRxDefer: {
        if (!options_.rx_support) {
          reg(instr.dst) = make_unknown(origin);
          break;
        }
        reg(instr.dst) = call_ref(instr.s, {}, depth, stack, origin);
        break;
      }
      case OpCode::kHttpNew:
        reg(instr.dst) = make_object("HttpRequest", /*is_builder=*/true, origin);
        break;
      case OpCode::kHttpMethod:
      case OpCode::kHttpUrl:
      case OpCode::kHttpQuery:
      case OpCode::kHttpHeader:
      case OpCode::kHttpBody: {
        const ValuePtr obj = reg(instr.a);
        if (obj->kind != Node::Kind::kObject || !obj->object->builder) {
          log_warn("analysis") << method.name << ":" << pc
                               << ": HTTP builder op on a non-builder value";
          break;
        }
        BuilderData& builder = *obj->object->builder;
        builder.op_origins.insert(origin);
        switch (instr.op) {
          case OpCode::kHttpMethod:
            builder.verb = instr.s;
            break;
          case OpCode::kHttpUrl:
            builder.url = reg(instr.b);
            break;
          case OpCode::kHttpQuery:
            builder.query.push_back({instr.s, reg(instr.b), guard_depth > 0, origin});
            break;
          case OpCode::kHttpHeader:
            builder.headers.push_back({instr.s, reg(instr.b), guard_depth > 0, origin});
            break;
          case OpCode::kHttpBody:
            builder.body.push_back({instr.s, reg(instr.b), guard_depth > 0, origin});
            break;
          default:
            break;
        }
        break;
      }
      case OpCode::kHttpSend: {
        const ValuePtr obj = reg(instr.a);
        if (obj->kind != Node::Kind::kObject || !obj->object->builder) {
          log_warn("analysis") << method.name << ":" << pc << ": send on a non-builder value";
          reg(instr.dst) = make_unknown(origin);
          break;
        }
        record_send(method, pc, instr, *obj->object);
        auto n = std::make_shared<Node>();
        n->kind = Node::Kind::kResp;
        n->site = method.name + ":" + std::to_string(pc);
        n->origin = origin;
        reg(instr.dst) = std::move(n);
        break;
      }
      case OpCode::kJsonGet: {
        const ValuePtr src = reg(instr.a);
        if (src->kind == Node::Kind::kResp || src->kind == Node::Kind::kRespField) {
          auto n = std::make_shared<Node>();
          n->kind = Node::Kind::kRespField;
          n->site = src->site;
          n->path = src->kind == Node::Kind::kResp ? instr.s : src->path + "." + instr.s;
          n->origin = origin;
          n->parts = {src};
          const auto site = sites_.find(src->site);
          if (site != sites_.end()) site->second.response_paths.insert(n->path);
          reg(instr.dst) = std::move(n);
        } else {
          reg(instr.dst) = make_unknown(origin);
        }
        break;
      }
      case OpCode::kIfEnv:
        ++guard_depth;
        break;
      case OpCode::kEndIf:
        if (guard_depth > 0) --guard_depth;
        break;
      case OpCode::kFormat: {
        // String.format: a concat of the literal pieces with the argument
        // values in placeholder positions.
        auto n = std::make_shared<Node>();
        n->kind = Node::Kind::kConcat;
        n->origin = origin;
        std::size_t arg_index = 0;
        std::string literal;
        for (std::size_t i = 0; i < instr.s.size(); ++i) {
          if (instr.s[i] == '%' && i + 1 < instr.s.size() && instr.s[i + 1] == 's') {
            if (!literal.empty()) {
              n->parts.push_back(make_const(literal, origin));
              literal.clear();
            }
            if (arg_index < instr.args.size()) {
              n->parts.push_back(reg(instr.args[arg_index++]));
            } else {
              n->parts.push_back(make_unknown(origin));
            }
            ++i;
          } else {
            literal += instr.s[i];
          }
        }
        if (!literal.empty()) n->parts.push_back(make_const(literal, origin));
        reg(instr.dst) = std::move(n);
        break;
      }
      case OpCode::kReturn: {
        const ValuePtr v = reg(instr.a);
        if (!return_value) {
          return_value = v;
        } else if (!values_equal(return_value, v)) {
          return_value = make_unknown(origin);
        }
        break;
      }
    }
  }

  stack.pop_back();
  return return_value ? return_value : make_unknown(entry_origin);
}

void Interpreter::merge_builder_field(std::vector<BuilderField>& existing,
                                      const std::vector<BuilderField>& incoming) {
  // Fields seen in only one visiting context become optional; fields whose
  // values differ across contexts degrade to Unknown (a run-time hole).
  for (const BuilderField& in : incoming) {
    auto it = std::find_if(existing.begin(), existing.end(),
                           [&](const BuilderField& e) { return e.name == in.name; });
    if (it == existing.end()) {
      BuilderField added = in;
      added.optional = true;
      existing.push_back(std::move(added));
      continue;
    }
    it->optional = it->optional || in.optional;
    if (!values_equal(it->value, in.value)) it->value = make_unknown(in.origin);
  }
  for (BuilderField& e : existing) {
    const bool in_incoming = std::any_of(incoming.begin(), incoming.end(),
                                         [&](const BuilderField& in) { return in.name == e.name; });
    if (!in_incoming) e.optional = true;
  }
}

void Interpreter::record_send(const Method& method, std::size_t pc, const Instruction& instr,
                              const ObjectData& builder_obj) {
  const std::string key = method.name + ":" + std::to_string(pc);
  const BuilderData& incoming = *builder_obj.builder;

  auto it = sites_.find(key);
  if (it == sites_.end()) {
    SendSite site;
    site.key = key;
    site.label = instr.s;
    site.body_kind = instr.s2;
    site.builder = incoming;
    it = sites_.emplace(key, std::move(site)).first;
    site_order_.push_back(key);
  } else {
    SendSite& site = it->second;
    if (!values_equal(site.builder.url, incoming.url)) {
      site.builder.url = make_unknown(here(method, pc));
    }
    merge_builder_field(site.builder.query, incoming.query);
    merge_builder_field(site.builder.headers, incoming.headers);
    merge_builder_field(site.builder.body, incoming.body);
    site.builder.op_origins.insert(incoming.op_origins.begin(), incoming.op_origins.end());
  }

  // Backward slice: every instruction whose value contributed to the request.
  SendSite& site = it->second;
  site.slice.insert(here(method, pc));
  site.slice.insert(incoming.op_origins.begin(), incoming.op_origins.end());
  collect_origins(incoming.url, site.slice);
  for (const auto* group : {&incoming.query, &incoming.headers, &incoming.body}) {
    for (const BuilderField& f : *group) collect_origins(f.value, site.slice);
  }
}

// --- signature construction -------------------------------------------------------------

struct PendingEdge {
  std::string pred_site;
  std::string path;
  std::string succ_site;
  std::string hole;
};

class SignatureBuilder {
 public:
  SignatureBuilder(const Program& program, AnalysisReport& report)
      : program_(program), report_(report) {}

  FieldTemplate to_template(const ValuePtr& value, const std::string& site_key) {
    FieldTemplate t;
    append_value(t, value, site_key);
    return t;
  }

  // Split a URL template into scheme/host/path parts. Expects the scheme
  // separator "://" to appear inside a literal segment.
  static void split_url(const FieldTemplate& url, FieldTemplate& scheme, FieldTemplate& host,
                        FieldTemplate& path) {
    enum class Part { kScheme, kHost, kPath } part = Part::kScheme;
    for (const auto& seg : url.segments()) {
      if (seg.is_hole) {
        switch (part) {
          case Part::kScheme: throw ParseError("analysis: URL scheme must be a literal");
          case Part::kHost: host.append_hole(seg.text, seg.shape); break;
          case Part::kPath: path.append_hole(seg.text, seg.shape); break;
        }
        continue;
      }
      std::string_view text = seg.text;
      if (part == Part::kScheme) {
        const std::size_t sep = text.find("://");
        if (sep == std::string_view::npos) {
          throw ParseError("analysis: URL literal lacks '://': " + seg.text);
        }
        scheme.append_literal(text.substr(0, sep));
        text = text.substr(sep + 3);
        part = Part::kHost;
      }
      if (part == Part::kHost) {
        const std::size_t slash = text.find('/');
        if (slash == std::string_view::npos) {
          host.append_literal(text);
          continue;
        }
        host.append_literal(text.substr(0, slash));
        text = text.substr(slash);
        part = Part::kPath;
      }
      path.append_literal(text);
    }
    if (path.segments().empty()) path.append_literal("/");
  }

  std::vector<PendingEdge>& pending_edges() { return pending_edges_; }

 private:
  void append_value(FieldTemplate& t, const ValuePtr& value, const std::string& site_key) {
    if (!value) {
      t.append_hole(fresh_runtime_hole(site_key));
      return;
    }
    switch (value->kind) {
      case Node::Kind::kConst:
        t.append_literal(value->text);
        break;
      case Node::Kind::kEnv:
        t.append_hole("env." + program_.app + "." + value->text);
        break;
      case Node::Kind::kConcat:
        for (const ValuePtr& part : value->parts) append_value(t, part, site_key);
        break;
      case Node::Kind::kRespField: {
        const std::string hole =
            "dep." + short_digest(value->site + "|" + value->path, 10);
        t.append_hole(hole);
        pending_edges_.push_back({value->site, value->path, site_key, hole});
        break;
      }
      case Node::Kind::kResp:
      case Node::Kind::kObject:
      case Node::Kind::kUnknown:
        t.append_hole(fresh_runtime_hole(site_key));
        break;
    }
  }

  std::string fresh_runtime_hole(const std::string& site_key) {
    ++report_.unresolved_values;
    return "rt." + short_digest(site_key, 8) + "." + std::to_string(runtime_counter_++);
  }

  const Program& program_;
  AnalysisReport& report_;
  std::vector<PendingEdge> pending_edges_;
  std::size_t runtime_counter_ = 0;
};

AnalysisResult Interpreter::finish() {
  AnalysisResult result;
  SignatureBuilder builder(program_, report_);
  std::map<std::string, std::string> site_to_sig;  // site key -> signature id

  for (const std::string& key : site_order_) {
    const SendSite& site = sites_.at(key);
    TransactionSignature sig;
    sig.app = program_.app;
    sig.label = site.label;
    sig.request.method = site.builder.verb;

    const FieldTemplate url = builder.to_template(site.builder.url, key);
    SignatureBuilder::split_url(url, sig.request.scheme, sig.request.host, sig.request.path);

    const auto lower_fields = [&](const std::vector<BuilderField>& fields,
                                  FieldLocation location) {
      std::vector<RequestField> out;
      out.reserve(fields.size());
      for (const BuilderField& f : fields) {
        out.push_back({location, f.name, builder.to_template(f.value, key), f.optional});
      }
      return out;
    };
    sig.request.query = lower_fields(site.builder.query, FieldLocation::kQuery);
    sig.request.headers = lower_fields(site.builder.headers, FieldLocation::kHeader);
    sig.request.body = lower_fields(site.builder.body, FieldLocation::kBody);
    sig.request.body_kind = sig.request.body.empty() ? BodyKind::kNone : BodyKind::kForm;

    sig.response.body_kind =
        site.body_kind == "opaque" ? ResponseBodyKind::kOpaque : ResponseBodyKind::kJson;
    // Leaf paths only: drop paths that are proper prefixes of other paths.
    for (const std::string& path : site.response_paths) {
      const bool is_prefix = std::any_of(
          site.response_paths.begin(), site.response_paths.end(), [&](const std::string& other) {
            return other.size() > path.size() && other.compare(0, path.size(), path) == 0;
          });
      if (!is_prefix) sig.response.fields.push_back({path, ".*"});
    }

    sig.finalize();
    if (result.signatures.find(sig.id) == nullptr) {
      result.signatures.add(sig);
      result.slices[sig.label].insert(site.slice.begin(), site.slice.end());
    } else {
      // Two send sites with identical behaviour collapse into one signature.
      result.slices[result.signatures.get(sig.id).label].insert(site.slice.begin(),
                                                                site.slice.end());
    }
    site_to_sig[key] = sig.id;
  }

  std::set<std::string> edge_dedup;
  for (const PendingEdge& pe : builder.pending_edges()) {
    const auto pred = site_to_sig.find(pe.pred_site);
    const auto succ = site_to_sig.find(pe.succ_site);
    if (pred == site_to_sig.end() || succ == site_to_sig.end()) continue;
    const std::string dedup_key = pred->second + "|" + pe.path + "|" + succ->second + "|" + pe.hole;
    if (!edge_dedup.insert(dedup_key).second) continue;
    result.signatures.add_edge({pred->second, pe.path, succ->second, pe.hole});
  }

  report_.unique_signatures = result.signatures.size();
  report_.dependency_edges = result.signatures.edges().size();
  result.report = report_;
  return result;
}

}  // namespace

AnalysisResult analyze(const Program& program, const AnalysisOptions& options) {
  Interpreter interpreter(program, options);
  interpreter.run();
  return interpreter.finish();
}

AnalysisResult analyze_sapk(const std::vector<std::uint8_t>& sapk,
                            const AnalysisOptions& options) {
  return analyze(Program::deserialize(sapk), options);
}

}  // namespace appx::analysis
