// Static program analysis over SAPK binaries (paper §4.1).
//
// Re-creates the Extractocol role in the APPx pipeline: given an app binary,
// produce HTTP transaction signatures and inter-transaction dependencies.
//
// The engine is an inter-procedural abstract interpreter with an explicit
// provenance graph. Every register holds an abstract value:
//
//   Const(text)           - statically known string
//   Env(name)             - run-time-only value (device id, cookie, host...)
//   Concat(parts)         - string concatenation (URL building)
//   Resp(site)            - the response of a send site
//   RespField(site, path) - a JSON field read out of a response: the raw
//                           material of dependency edges
//   Object(fields)        - heap object; moves create aliases (configurable)
//   Unknown               - anything the analysis cannot track
//
// The three Extractocol extensions the paper contributes are modelled and
// individually switchable for ablation studies:
//   * Intent support: put/get flows through the global Intent map, resolved
//     to a fixpoint (paper: "constructs an Intent map... finds every put
//     method and performs backward slicing").
//   * RxAndroid semantics: map/flatMap/defer route values through method
//     references; flatMap introduces per-element ([*]) paths.
//   * Alias-aware heap analysis: object moves alias the same heap node, so
//     writes through one alias are seen through all (without it, moves
//     snapshot-copy and chained derivations lose fields).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/signature.hpp"
#include "ir/program.hpp"

namespace appx::analysis {

struct AnalysisOptions {
  bool intent_support = true;
  bool rx_support = true;
  bool alias_analysis = true;
  // Safety bounds.
  std::size_t max_call_depth = 64;
  std::size_t max_fixpoint_iterations = 6;
};

// One instruction that contributes to a transaction's request — an element
// of the paper's backward program slice.
struct SliceEntry {
  std::string method;
  std::size_t pc = 0;

  auto operator<=>(const SliceEntry&) const = default;
};

struct AnalysisReport {
  std::size_t methods_analyzed = 0;
  std::size_t instructions_interpreted = 0;
  std::size_t send_sites = 0;
  std::size_t unique_signatures = 0;
  std::size_t dependency_edges = 0;
  std::size_t unresolved_values = 0;  // holes that are neither env nor dep
  std::size_t fixpoint_iterations = 0;
};

class AnalysisResult {
 public:
  core::SignatureSet signatures;
  AnalysisReport report;
  // Backward slice per signature label: contributing (method, pc) pairs.
  std::map<std::string, std::set<SliceEntry>> slices;
};

// Run the full analysis over a program. Throws appx::Error subclasses on
// malformed programs (unknown entry points, bad URL shapes).
AnalysisResult analyze(const ir::Program& program, const AnalysisOptions& options = {});

// Convenience: load a SAPK blob and analyze it.
AnalysisResult analyze_sapk(const std::vector<std::uint8_t>& sapk,
                            const AnalysisOptions& options = {});

}  // namespace appx::analysis
