// Value-based prefetch admission with load-adaptive threshold (DESIGN.md §5j).
//
// A prefetch is admitted when its expected value,
//
//   value = P(use) × expected_saving_ms / max(expected_KB, 1),
//
// clears the current threshold. The threshold floors at min_value; load
// feedback (queue depth above target, or jobs dropped after enqueue since the
// last observation) grows it multiplicatively up to max_threshold, and calm
// periods decay it back. Under overload the proxy therefore sheds the
// *lowest-value* prefetches at admission time instead of drop-oldest
// thrashing after enqueue — PR 7's macro harness measured millions of
// enqueued-then-dropped jobs at saturation; this is the fix.
//
// Not thread-safe; owned per engine shard.
#pragma once

#include <cstdint>

#include "policy/model.hpp"
#include "policy/options.hpp"

namespace appx::policy {

class AdmissionController {
 public:
  AdmissionController() : AdmissionController(PolicyOptions{}) {}
  explicit AdmissionController(const PolicyOptions& options)
      : options_(options), threshold_(options.min_value) {}

  // ms of expected saving per KB of expected cost.
  static double value_of(const Estimate& estimate) {
    const double kb = estimate.bytes / 1024.0;
    return estimate.p_use * estimate.saving_ms / (kb > 1.0 ? kb : 1.0);
  }

  bool admit(const Estimate& estimate) const { return value_of(estimate) >= threshold_; }

  // Load feedback, called once per admission batch. `queue_depth` is the
  // fleet-wide queued + outstanding prefetch count; `drops_total` a monotonic
  // dropped-after-enqueue counter (the first observation only sets the
  // baseline — shared registries may carry drops that predate this shard).
  void observe_load(std::int64_t queue_depth, std::int64_t drops_total);

  double threshold() const { return threshold_; }

 private:
  PolicyOptions options_;
  double threshold_;
  bool primed_ = false;
  std::int64_t last_drops_ = 0;
};

}  // namespace appx::policy
