#include "policy/model.hpp"

#include <algorithm>

namespace appx::policy {

const SignatureModel::PerSig* SignatureModel::find(std::string_view sig_id) const {
  const auto it = per_sig_.find(sig_id);
  return it == per_sig_.end() ? nullptr : &it->second;
}

void SignatureModel::on_issued(std::string_view sig_id) {
  ++per_sig_[std::string(sig_id)].issued;
}

void SignatureModel::on_prefetched(std::string_view sig_id, Bytes wire_bytes,
                                   double response_time_ms) {
  PerSig& per = per_sig_[std::string(sig_id)];
  per.saving_ms.add(response_time_ms);
  per.body_bytes.add(static_cast<double>(wire_bytes));
}

void SignatureModel::on_first_use(std::string_view sig_id) {
  ++per_sig_[std::string(sig_id)].used;
}

void SignatureModel::on_wasted(std::string_view sig_id, Bytes wire_bytes) {
  (void)wire_bytes;  // byte-level waste is accounted by the engine's counters
  ++per_sig_[std::string(sig_id)].wasted;
}

void SignatureModel::observe_content(std::string_view sig_id, std::uint64_t key_hash,
                                     std::uint64_t body_hash, SimTime now) {
  PerSig& per = per_sig_[std::string(sig_id)];
  if (per.has_sample && per.last_key_hash == key_hash) {
    if (per.last_body_hash != body_hash) {
      // The same key re-fetched with different content: the elapsed time
      // bounds the content lifetime from above.
      per.change_interval_us.add(static_cast<double>(std::max<SimTime>(now - per.last_sample_at, 1)));
      per.last_body_hash = body_hash;
      per.last_sample_at = now;
    }
    // Same body: keep the original sample time so a slow drift still
    // accumulates into one long interval instead of resetting per probe.
    return;
  }
  per.has_sample = true;
  per.last_key_hash = key_hash;
  per.last_body_hash = body_hash;
  per.last_sample_at = now;
}

std::optional<Duration> SignatureModel::learned_expiry(std::string_view sig_id,
                                                       Duration floor) const {
  const PerSig* per = find(sig_id);
  if (per == nullptr || !per->change_interval_us.has_value()) return std::nullopt;
  // Conservative: expire at half the observed change period (mirrors the
  // verification phase's estimate/2 rule).
  const auto half = static_cast<Duration>(per->change_interval_us.value() / 2.0);
  return std::max(half, floor);
}

Estimate SignatureModel::estimate(std::string_view sig_id) const {
  Estimate out;
  out.saving_ms = priors_.saving_ms;
  out.bytes = priors_.bytes;
  const PerSig* per = find(sig_id);
  if (per == nullptr) return out;
  // Laplace smoothing: (used + 1) / (issued + 2) — responds immediately to
  // both hits and fan-out over-prefetching without waiting for entries to
  // age out of the cache.
  out.p_use = static_cast<double>(per->used + 1) / static_cast<double>(per->issued + 2);
  if (per->saving_ms.has_value()) out.saving_ms = per->saving_ms.value();
  if (per->body_bytes.has_value()) out.bytes = per->body_bytes.value();
  out.issued = per->issued;
  return out;
}

std::size_t SignatureModel::used(std::string_view sig_id) const {
  const PerSig* per = find(sig_id);
  return per == nullptr ? 0 : per->used;
}

std::size_t SignatureModel::wasted(std::string_view sig_id) const {
  const PerSig* per = find(sig_id);
  return per == nullptr ? 0 : per->wasted;
}

}  // namespace appx::policy
