#include "policy/model.hpp"

#include <algorithm>

namespace appx::policy {

std::string SignatureModel::key(std::string_view app, std::string_view sig_id) {
  std::string out;
  out.reserve(app.size() + 1 + sig_id.size());
  out.append(app);
  out.push_back('\x1f');
  out.append(sig_id);
  return out;
}

const SignatureModel::PerSig* SignatureModel::find_locked(std::string_view app,
                                                          std::string_view sig_id) const {
  scratch_.clear();
  scratch_.append(app);
  scratch_.push_back('\x1f');
  scratch_.append(sig_id);
  const auto it = per_sig_.find(scratch_);
  return it == per_sig_.end() ? nullptr : &it->second;
}

SignatureModel::PerSig& SignatureModel::at_locked(std::string_view app,
                                                  std::string_view sig_id) {
  return per_sig_[key(app, sig_id)];
}

void SignatureModel::on_issued(std::string_view app, std::string_view sig_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++at_locked(app, sig_id).issued;
}

void SignatureModel::on_prefetched(std::string_view app, std::string_view sig_id,
                                   Bytes wire_bytes, double response_time_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  PerSig& per = at_locked(app, sig_id);
  per.saving_ms.add(response_time_ms);
  per.body_bytes.add(static_cast<double>(wire_bytes));
}

void SignatureModel::on_first_use(std::string_view app, std::string_view sig_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ++at_locked(app, sig_id).used;
}

void SignatureModel::on_wasted(std::string_view app, std::string_view sig_id,
                               Bytes wire_bytes) {
  (void)wire_bytes;  // byte-level waste is accounted by the engine's counters
  std::lock_guard<std::mutex> lock(mu_);
  ++at_locked(app, sig_id).wasted;
}

void SignatureModel::observe_content(std::string_view app, std::string_view sig_id,
                                     std::uint64_t key_hash, std::uint64_t body_hash,
                                     SimTime now) {
  std::lock_guard<std::mutex> lock(mu_);
  PerSig& per = at_locked(app, sig_id);
  if (per.has_sample && per.last_key_hash == key_hash) {
    if (per.last_body_hash != body_hash) {
      // The same key re-fetched with different content: the elapsed time
      // bounds the content lifetime from above.
      per.change_interval_us.add(static_cast<double>(std::max<SimTime>(now - per.last_sample_at, 1)));
      per.last_body_hash = body_hash;
      per.last_sample_at = now;
    }
    // Same body: keep the original sample time so a slow drift still
    // accumulates into one long interval instead of resetting per probe.
    return;
  }
  per.has_sample = true;
  per.last_key_hash = key_hash;
  per.last_body_hash = body_hash;
  per.last_sample_at = now;
}

std::optional<Duration> SignatureModel::learned_expiry(std::string_view app,
                                                       std::string_view sig_id,
                                                       Duration floor) const {
  std::lock_guard<std::mutex> lock(mu_);
  const PerSig* per = find_locked(app, sig_id);
  if (per == nullptr || !per->change_interval_us.has_value()) return std::nullopt;
  // Conservative: expire at half the observed change period (mirrors the
  // verification phase's estimate/2 rule).
  const auto half = static_cast<Duration>(per->change_interval_us.value() / 2.0);
  return std::max(half, floor);
}

Estimate SignatureModel::estimate(std::string_view app, std::string_view sig_id) const {
  Estimate out;
  out.saving_ms = priors_.saving_ms;
  out.bytes = priors_.bytes;
  std::lock_guard<std::mutex> lock(mu_);
  const PerSig* per = find_locked(app, sig_id);
  if (per == nullptr) return out;
  // Laplace smoothing: (used + 1) / (issued + 2) — responds immediately to
  // both hits and fan-out over-prefetching without waiting for entries to
  // age out of the cache.
  out.p_use = static_cast<double>(per->used + 1) / static_cast<double>(per->issued + 2);
  if (per->saving_ms.has_value()) out.saving_ms = per->saving_ms.value();
  if (per->body_bytes.has_value()) out.bytes = per->body_bytes.value();
  out.issued = per->issued;
  return out;
}

std::size_t SignatureModel::tracked_signatures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return per_sig_.size();
}

std::size_t SignatureModel::used(std::string_view app, std::string_view sig_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const PerSig* per = find_locked(app, sig_id);
  return per == nullptr ? 0 : per->used;
}

std::size_t SignatureModel::wasted(std::string_view app, std::string_view sig_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const PerSig* per = find_locked(app, sig_id);
  return per == nullptr ? 0 : per->wasted;
}

void SignatureModel::persist(ByteWriter& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out.u64(per_sig_.size());
  for (const auto& [composed, per] : per_sig_) {
    out.str(composed);  // app + '\x1f' + sig_id, already composed
    out.u64(per.issued);
    out.u64(per.used);
    out.u64(per.wasted);
    out.f64(per.saving_ms.value());
    out.u64(per.saving_ms.count());
    out.f64(per.body_bytes.value());
    out.u64(per.body_bytes.count());
    out.u8(per.has_sample ? 1 : 0);
    out.u64(per.last_key_hash);
    out.u64(per.last_body_hash);
    out.f64(per.change_interval_us.value());
    out.u64(per.change_interval_us.count());
  }
}

void SignatureModel::restore(ByteReader& in, std::uint32_t version, SimTime now) {
  (void)version;  // v1 is the only layout so far
  std::lock_guard<std::mutex> lock(mu_);
  per_sig_.clear();
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string composed = in.str();
    PerSig& per = per_sig_[composed];
    per.issued = in.u64();
    per.used = in.u64();
    per.wasted = in.u64();
    const double saving = in.f64();
    per.saving_ms.seed(saving, in.u64());
    const double bytes = in.f64();
    per.body_bytes.seed(bytes, in.u64());
    per.has_sample = in.u8() != 0;
    per.last_key_hash = in.u64();
    per.last_body_hash = in.u64();
    // SimTime is a process clock; re-anchor the sample to this process.
    per.last_sample_at = per.has_sample ? now : 0;
    const double interval = in.f64();
    per.change_interval_us.seed(interval, in.u64());
  }
}

}  // namespace appx::policy
