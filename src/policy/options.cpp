#include "policy/options.hpp"

#include <cmath>

namespace appx::policy {

util::Error PolicyOptions::validate() const {
  if (!std::isfinite(min_value) || min_value <= 0) {
    return util::Error::failure("PolicyOptions.min_value must be finite and > 0");
  }
  if (!std::isfinite(max_threshold) || max_threshold < min_value) {
    return util::Error::failure("PolicyOptions.max_threshold must be finite and >= min_value");
  }
  if (!std::isfinite(threshold_growth) || threshold_growth < 1.0) {
    return util::Error::failure(
        "PolicyOptions.threshold_growth must be >= 1 (1 disables the overload response)");
  }
  if (!std::isfinite(threshold_decay) || threshold_decay <= 0 || threshold_decay > 1.0) {
    return util::Error::failure("PolicyOptions.threshold_decay must be in (0, 1]");
  }
  if (target_queue_depth < 1) {
    return util::Error::failure("PolicyOptions.target_queue_depth must be >= 1");
  }
  if (budget_window <= 0) {
    return util::Error::failure("PolicyOptions.budget_window must be positive");
  }
  if (!std::isfinite(hit_byte_refund) || hit_byte_refund < 0 || hit_byte_refund > 1.0) {
    return util::Error::failure("PolicyOptions.hit_byte_refund must be in [0, 1]");
  }
  if (min_learned_expiry <= 0) {
    return util::Error::failure("PolicyOptions.min_learned_expiry must be positive");
  }
  return util::Error();
}

}  // namespace appx::policy
