// Token-bucket data-budget pacing (DESIGN.md §5j).
//
// Replaces the hard data_budget cliff (all prefetching stops for the rest of
// the session once cumulative bytes cross the budget) with a bucket of
// `budget` tokens refilled continuously over `window`: a burst may spend the
// whole budget at once, but sustained prefetching is paced to budget bytes
// per window for the entire session.
//
// Charging is asymmetric by outcome: every prefetched byte is charged in
// full when the response arrives (tokens may go negative — the actual size
// is only known then), and an entry's first cache hit refunds `hit_refund`
// of its bytes. Wasted (never-hit) bytes therefore consume budget at full
// rate while useful bytes cost (1 - hit_refund) of theirs — the budget
// preferentially throttles waste.
//
// A budget of 0 means unlimited: every call is a no-op and allows() is true.
// Not thread-safe; owned per user alongside the prefetch cache.
#pragma once

#include <algorithm>

#include "util/units.hpp"

namespace appx::policy {

class BudgetPacer {
 public:
  struct Options {
    Bytes budget = 0;              // bucket capacity; 0 = unlimited
    Duration window = minutes(1);  // one full budget refills per window
    double hit_refund = 0.5;       // fraction of a hit's bytes credited back
  };

  BudgetPacer() = default;
  explicit BudgetPacer(Options options) : options_(options), tokens_(static_cast<double>(options.budget)) {}

  bool unlimited() const { return options_.budget <= 0; }

  // Room for an expected-size prefetch? Refills first.
  bool allows(Bytes expected, SimTime now) {
    if (unlimited()) return true;
    refill(now);
    return tokens_ >= static_cast<double>(expected);
  }

  // Charge actual wire bytes of a completed prefetch (may push tokens
  // negative; future allows() stay false until the bucket refills past 0).
  void charge(Bytes bytes, SimTime now) {
    if (unlimited()) return;
    refill(now);
    tokens_ -= static_cast<double>(bytes);
  }

  // First-hit refund: the bytes turned out to be useful.
  void refund_hit(Bytes bytes) {
    if (unlimited()) return;
    tokens_ = std::min(tokens_ + options_.hit_refund * static_cast<double>(bytes),
                       static_cast<double>(options_.budget));
  }

  double tokens(SimTime now) {
    if (!unlimited()) refill(now);
    return tokens_;
  }

 private:
  void refill(SimTime now) {
    if (now <= last_refill_) return;
    const double elapsed = static_cast<double>(now - last_refill_);
    last_refill_ = now;
    tokens_ = std::min(tokens_ + elapsed * static_cast<double>(options_.budget) /
                                      static_cast<double>(options_.window),
                       static_cast<double>(options_.budget));
  }

  Options options_;
  double tokens_ = 0;
  SimTime last_refill_ = 0;
};

}  // namespace appx::policy
