#include "policy/admission.hpp"

#include <algorithm>

namespace appx::policy {

void AdmissionController::observe_load(std::int64_t queue_depth, std::int64_t drops_total) {
  if (!primed_) {
    primed_ = true;
    last_drops_ = drops_total;
    return;
  }
  const bool overloaded = queue_depth > options_.target_queue_depth || drops_total > last_drops_;
  last_drops_ = drops_total;
  if (overloaded) {
    threshold_ = std::min(options_.max_threshold, threshold_ * options_.threshold_growth);
  } else {
    threshold_ = std::max(options_.min_value, threshold_ * options_.threshold_decay);
  }
}

}  // namespace appx::policy
