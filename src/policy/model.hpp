// Per-signature value model feeding the admission controller (DESIGN.md §5j).
//
// For every (app, signature) pair the model tracks what a prefetch of it has
// been worth historically:
//   * P(use)      — the fraction of cached prefetches served to a client
//                   before leaving the cache (Laplace-smoothed, so unseen
//                   signatures start at 0.5 rather than 0 or 1);
//   * saving_ms   — EWMA of the origin response time, i.e. the latency a hit
//                   hides from the user;
//   * bytes       — EWMA of the response wire size, i.e. what a prefetch
//                   costs against the data budget.
//
// It also refines TTLs online: each cached prefetch contributes a content
// sample (cache-key hash, body hash); when the *same* key is re-prefetched
// with a different body, the elapsed time is a content-change-interval
// sample, and half the EWMA'd interval becomes the learned expiry — the
// runtime analogue of the verification phase's probing (§4.3).
//
// Keying is per APP, not per engine shard: signature value is a property of
// the app's request graph, not of whichever shard a user hashed to, so one
// model is shared by every shard of a ShardedProxyEngine and each signature
// pays its exploration cost once fleet-wide instead of once per shard. The
// model is internally synchronized (a single mutex; every touch is a few map
// operations) to support that sharing.
//
// The accumulated estimates are part of the durable learned state: persist()
// and restore() round-trip every entry through the "policy.model" section of
// the engine snapshot (DESIGN.md §5k). Content-sample timestamps are process
// times, so restore() re-stamps them with the caller's `now`.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "util/byte_io.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace appx::policy {

// What the model believes a prefetch of one signature is worth.
struct Estimate {
  double p_use = 0.5;     // probability the cached response gets used
  double saving_ms = 0;   // expected latency hidden by a hit
  double bytes = 0;       // expected body cost
  std::size_t issued = 0;  // issues behind the p_use estimate (0 = priors only)
};

class SignatureModel {
 public:
  // Estimates for signatures with no history yet. The defaults deliberately
  // make unknown signatures look worth prefetching (p_use 0.5 on a plausible
  // response) so the policy explores before it prunes.
  struct Priors {
    double saving_ms = 50.0;
    double bytes = 8192.0;
  };

  SignatureModel() = default;
  explicit SignatureModel(Priors priors) : priors_(priors) {}

  // A prefetch for (app, sig_id) was admitted and issued. Counted at issue
  // time — not at response time — so a synchronous fan-out burst (one
  // predecessor response making dozens of same-signature prefetches ready at
  // once) sees its own issues reflected in p_use immediately: an unproven
  // signature's admission rate decays within the batch instead of only after
  // responses trickle back, and first uses restore it run by run.
  void on_issued(std::string_view app, std::string_view sig_id);
  // The issued prefetch's response arrived and was cached: update the cost
  // and saving estimates with the observed wire size / response time.
  void on_prefetched(std::string_view app, std::string_view sig_id, Bytes wire_bytes,
                     double response_time_ms);
  // A cached prefetched entry was served to a client for the first time.
  void on_first_use(std::string_view app, std::string_view sig_id);
  // A cached entry left the cache (evicted/expired/overwritten) unused.
  void on_wasted(std::string_view app, std::string_view sig_id, Bytes wire_bytes);

  // TTL refinement: one content sample per cached prefetch. Only consecutive
  // samples of the SAME key are compared — a different key resets the sample
  // (items of a fan-out differ without the content having "changed").
  void observe_content(std::string_view app, std::string_view sig_id,
                       std::uint64_t key_hash, std::uint64_t body_hash, SimTime now);
  // Half the EWMA'd change interval, floored at `floor`; nullopt until a
  // change has been observed.
  std::optional<Duration> learned_expiry(std::string_view app, std::string_view sig_id,
                                         Duration floor) const;

  Estimate estimate(std::string_view app, std::string_view sig_id) const;

  std::size_t tracked_signatures() const;
  std::size_t used(std::string_view app, std::string_view sig_id) const;
  std::size_t wasted(std::string_view app, std::string_view sig_id) const;

  // --- Persistence (snapshot section "policy.model") -----------------------
  static constexpr std::uint32_t kPersistVersion = 1;
  void persist(ByteWriter& out) const;
  // Replaces the current entries. Persisted sample times are meaningless
  // across processes (SimTime restarts at the process epoch), so every
  // restored content sample is re-stamped at `now`: interval learning resumes
  // from the already-learned EWMA and just re-anchors its clock.
  void restore(ByteReader& in, std::uint32_t version, SimTime now);

 private:
  struct PerSig {
    std::size_t issued = 0;
    std::size_t used = 0;
    std::size_t wasted = 0;
    RunningAverage saving_ms{0.3};
    RunningAverage body_bytes{0.3};
    // Last content sample for TTL refinement.
    bool has_sample = false;
    std::uint64_t last_key_hash = 0;
    std::uint64_t last_body_hash = 0;
    SimTime last_sample_at = 0;
    RunningAverage change_interval_us{0.3};
  };
  // Map key: app + '\x1f' + sig_id ('\x1f' cannot appear in either part).
  static std::string key(std::string_view app, std::string_view sig_id);
  const PerSig* find_locked(std::string_view app, std::string_view sig_id) const;
  PerSig& at_locked(std::string_view app, std::string_view sig_id);

  Priors priors_;
  mutable std::mutex mu_;
  std::map<std::string, PerSig, std::less<>> per_sig_;
  // Lookup scratch so read paths don't allocate a composed key per call;
  // guarded by mu_ like everything else.
  mutable std::string scratch_;
};

}  // namespace appx::policy
