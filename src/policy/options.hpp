// Knobs for the cost-aware prefetch policy engine (DESIGN.md §5j).
//
// The policy layer decides *whether* a prefetch is worth issuing (the
// scheduler already decides in what order): a prefetch is admitted only when
// its expected value — P(use) × expected_latency_saving_ms per KB of body —
// clears a threshold that adapts to load, and when the user's data budget,
// paced as a token bucket instead of a hard cliff, has room for it.
//
// Disabled by default: with `enabled = false` the engine behaves exactly as
// before (fire-everything prefetch bounded by the hard data_budget cliff).
#pragma once

#include <cstdint>

#include "util/error.hpp"
#include "util/units.hpp"

namespace appx::policy {

struct PolicyOptions {
  bool enabled = false;

  // --- value-based admission -----------------------------------------------
  //
  // value(sig) = P(use) * expected_saving_ms / max(expected_KB, 1). The
  // admission threshold starts at min_value (its floor). Load feedback
  // (scheduler queue depth above target, or post-enqueue drops observed)
  // multiplies it by threshold_growth up to max_threshold; calm periods decay
  // it by threshold_decay back toward min_value — under overload the proxy
  // degrades to best-jobs-only instead of drop-oldest thrash.
  double min_value = 0.05;          // ms saved per KB; also the threshold floor
  double max_threshold = 50.0;      // threshold ceiling under sustained overload
  double threshold_growth = 1.25;   // multiplicative increase when overloaded
  double threshold_decay = 0.9;     // multiplicative decay when calm
  std::int64_t target_queue_depth = 256;  // queued + outstanding, fleet-wide

  // --- budget pacing --------------------------------------------------------
  //
  // ProxyConfig.data_budget becomes a token-bucket capacity refilled once per
  // budget_window (instead of a hard per-session cliff). Prefetched bytes are
  // charged in full when the response arrives; an entry's *first* cache hit
  // refunds hit_byte_refund of its bytes, so wasted (never-hit) bytes are
  // charged at full rate and useful bytes at a discount.
  Duration budget_window = minutes(1);
  double hit_byte_refund = 0.5;  // fraction of a hit's bytes credited back

  // --- learned expiry -------------------------------------------------------
  //
  // Refine configured TTLs online: re-prefetches of the same cache key whose
  // body changed yield change-interval samples; half the EWMA'd interval
  // (floored at min_learned_expiry) caps the configured expiration.
  bool learn_expiry = true;
  Duration min_learned_expiry = seconds(1);

  util::Error validate() const;
};

}  // namespace appx::policy
