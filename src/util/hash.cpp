#include "util/hash.hpp"

#include "util/strings.hpp"

namespace appx {

std::uint64_t fnv1a(std::string_view data) { return fnv1a(data.data(), data.size()); }

std::uint64_t fnv1a(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::string short_digest(std::string_view data, std::size_t hex_chars) {
  std::string full = strings::to_hex(fnv1a(data));
  if (hex_chars < full.size()) full.resize(hex_chars);
  return full;
}

}  // namespace appx
