#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace appx {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgumentError("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

bool Rng::chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw InvalidArgumentError("Rng::exponential: mean must be > 0");
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += uniform01();
  return mean + stddev * (sum - 6.0);
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw InvalidArgumentError("Rng::zipf: n must be > 0");
  if (s <= 0) return index(n);
  // Inverse-CDF over the (small) support; n is at most a few thousand in our
  // workloads so the linear scan is fine and keeps the draw deterministic.
  double norm = 0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double target = uniform01() * norm;
  double acc = 0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (acc >= target) return k - 1;
  }
  return n - 1;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw InvalidArgumentError("Rng::index: n must be > 0");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace appx
