// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit across platforms, so we avoid
// std::*_distribution (whose output is implementation-defined) and implement
// the distributions we need on top of a fixed 64-bit generator
// (splitmix64-seeded xoshiro256**).
#pragma once

#include <cstdint>
#include <vector>

namespace appx {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit word.
  std::uint64_t next_u64();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform01();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Bernoulli trial with probability p of returning true.
  bool chance(double p);

  // Exponential with the given mean (> 0). Used for think times.
  double exponential(double mean);

  // Approximately normal (Irwin-Hall sum of 12 uniforms), mean/stddev given.
  double normal(double mean, double stddev);

  // Zipf-distributed rank in [0, n). s is the skew (s = 0 -> uniform).
  // Used for item-popularity choices in user traces.
  std::size_t zipf(std::size_t n, double s);

  // Random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  // Derive an independent child generator (for per-user streams).
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace appx
