#include "util/arena.hpp"

#include <algorithm>
#include <cstring>

namespace appx::util {

void* Arena::alloc(std::size_t n, std::size_t align) {
  if (n == 0) n = 1;
  char* aligned = cursor_ + ((align - (reinterpret_cast<std::uintptr_t>(cursor_) & (align - 1))) &
                             (align - 1));
  if (aligned + n > end_) {
    // Advance to the next recycled block that fits, or grow.
    while (block_index_ < blocks_.size() && blocks_[block_index_].size < n + align) {
      ++block_index_;
    }
    if (block_index_ == blocks_.size()) {
      const std::size_t want = std::max(n + align, next_block_bytes_);
      blocks_.push_back(Block{std::make_unique<char[]>(want), want});
      capacity_ += want;
      next_block_bytes_ = std::min(next_block_bytes_ * 2, kMaxBlockBytes);
    }
    Block& block = blocks_[block_index_];
    ++block_index_;
    cursor_ = block.bytes.get();
    end_ = cursor_ + block.size;
    aligned = cursor_ + ((align - (reinterpret_cast<std::uintptr_t>(cursor_) & (align - 1))) &
                         (align - 1));
  }
  cursor_ = aligned + n;
  used_ += n;
  return aligned;
}

std::string_view Arena::copy(std::string_view bytes) {
  if (bytes.empty()) return {};
  char* dst = static_cast<char*>(alloc(bytes.size(), 1));
  std::memcpy(dst, bytes.data(), bytes.size());
  return std::string_view(dst, bytes.size());
}

void Arena::reset() {
  // Keep the largest block first so a warm arena serves a typical request
  // from one block instead of walking fragments it outgrew.
  std::sort(blocks_.begin(), blocks_.end(),
            [](const Block& a, const Block& b) { return a.size > b.size; });
  block_index_ = 0;
  used_ = 0;
  if (blocks_.empty()) {
    cursor_ = end_ = nullptr;
  } else {
    block_index_ = 1;
    cursor_ = blocks_[0].bytes.get();
    end_ = cursor_ + blocks_[0].size;
  }
}

}  // namespace appx::util
