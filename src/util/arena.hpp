// Bump allocator for per-connection / per-request transient state.
//
// An Arena hands out raw bytes from chained blocks; nothing is freed
// individually. reset() recycles every block for the next request, so a
// keep-alive connection pays the block allocations once and then serves
// every subsequent request with zero heap traffic (DESIGN.md §5h).
//
// Objects placed in an arena must be trivially destructible: reset() does
// not run destructors.
#pragma once

#include <cstddef>
#include <memory>
#include <string_view>
#include <vector>

namespace appx::util {

class Arena {
 public:
  // First block size; subsequent blocks double up to kMaxBlockBytes.
  explicit Arena(std::size_t initial_block_bytes = 4096)
      : next_block_bytes_(initial_block_bytes == 0 ? 4096 : initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // `align` must be a power of two. An oversized request gets a dedicated
  // block, so alloc never fails short of bad_alloc.
  void* alloc(std::size_t n, std::size_t align = alignof(std::max_align_t));

  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>, "arena never runs destructors");
    return static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
  }

  // Copy bytes into the arena; the view lives until reset().
  std::string_view copy(std::string_view bytes);

  // Recycle all blocks: capacity is retained, so a warm arena allocates
  // nothing on subsequent identical request patterns.
  void reset();

  // Bytes handed out since the last reset().
  std::size_t used() const { return used_; }
  // Total bytes owned across all blocks (never shrinks until destruction).
  std::size_t capacity() const { return capacity_; }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> bytes;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMaxBlockBytes = 256 * 1024;

  char* cursor_ = nullptr;
  char* end_ = nullptr;
  std::size_t block_index_ = 0;  // blocks_[0..block_index_) are in use
  std::size_t next_block_bytes_;
  std::size_t used_ = 0;
  std::size_t capacity_ = 0;
  std::vector<Block> blocks_;
};

}  // namespace appx::util
