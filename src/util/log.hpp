// Minimal leveled logger.
//
// The proxy and the analysis pipeline log at Debug/Info; experiments run with
// the level raised to Warn so measurement loops stay quiet. The logger is a
// process-wide sink by design (it is configuration, not data flow).
#pragma once

#include <sstream>
#include <string>

namespace appx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  // Emit one line at the given level (no-op if below the current level).
  static void write(LogLevel level, const std::string& component, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= Logger::level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug(std::string component) {
  return detail::LogLine(LogLevel::kDebug, std::move(component));
}
inline detail::LogLine log_info(std::string component) {
  return detail::LogLine(LogLevel::kInfo, std::move(component));
}
inline detail::LogLine log_warn(std::string component) {
  return detail::LogLine(LogLevel::kWarn, std::move(component));
}
inline detail::LogLine log_error(std::string component) {
  return detail::LogLine(LogLevel::kError, std::move(component));
}

}  // namespace appx
