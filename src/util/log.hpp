// Minimal leveled logger.
//
// The proxy and the analysis pipeline log at Debug/Info; experiments run with
// the level raised to Warn so measurement loops stay quiet. The logger is a
// process-wide sink by design (it is configuration, not data flow).
//
// Thread safety: write() formats each record into a single line —
// `[<seconds-since-start>] [T<dense thread id>] [LEVEL] component: message` —
// and delivers it to the sink under one process-wide mutex, so concurrent
// connection handlers and prefetch workers never interleave output.
// Timestamps come from the monotonic clock (steady since process start), so
// log ordering survives wall-clock adjustments.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace appx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  // Receives one fully formatted line (no trailing newline) per record.
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  static LogLevel level();
  static void set_level(LogLevel level);

  // Redirect output (tests, file capture); a null sink restores stderr. The
  // sink is invoked with the logger's mutex held: keep it fast and never log
  // from inside it.
  static void set_sink(Sink sink);

  // Small dense id of the calling thread (1, 2, ... in first-log order);
  // stable for the thread's lifetime. Exposed for tests.
  static int thread_id();

  // Microseconds on the monotonic clock since the logger was first touched.
  static std::int64_t elapsed_us();

  // Emit one line at the given level (no-op if below the current level).
  static void write(LogLevel level, const std::string& component, const std::string& message);
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (level_ >= Logger::level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug(std::string component) {
  return detail::LogLine(LogLevel::kDebug, std::move(component));
}
inline detail::LogLine log_info(std::string component) {
  return detail::LogLine(LogLevel::kInfo, std::move(component));
}
inline detail::LogLine log_warn(std::string component) {
  return detail::LogLine(LogLevel::kWarn, std::move(component));
}
inline detail::LogLine log_error(std::string component) {
  return detail::LogLine(LogLevel::kError, std::move(component));
}

}  // namespace appx
