// Stable (platform-independent) hashing.
//
// Signature hashes (the `hash` field in the proxy configuration, Fig. 9 of the
// paper) must be stable across runs and machines, so we use FNV-1a rather than
// std::hash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace appx {

std::uint64_t fnv1a(std::string_view data);
std::uint64_t fnv1a(const void* data, std::size_t len);

// Combine hashes (boost-style mix).
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

// Short printable digest, e.g. "ar93ba"-style ids in configurations.
std::string short_digest(std::string_view data, std::size_t hex_chars = 12);

}  // namespace appx
