// Exception hierarchy shared by all appx subsystems.
//
// Every subsystem throws a subclass of appx::Error so callers can choose
// between catching a specific failure class (ParseError, ...) or anything
// raised by the library.
#pragma once

#include <stdexcept>
#include <string>

namespace appx {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Malformed textual or binary input (HTTP wire data, JSON, patterns, SAPK).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

// An I/O operation exceeded its configured deadline (socket timeouts).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

// A lookup for a key/id/path that does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

// An operation that violates an invariant of the receiving object.
class InvalidStateError : public Error {
 public:
  explicit InvalidStateError(const std::string& what) : Error(what) {}
};

// Bad argument supplied by the caller.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

namespace util {

// Value-typed error for validation paths that should report, not throw: a
// default-constructed Error means success, failure() carries a message.
// Callers that do want an exception chain with throw_if_error().
class [[nodiscard]] Error {
 public:
  Error() = default;  // success
  static Error failure(std::string message) {
    Error e;
    e.message_ = std::move(message);
    if (e.message_.empty()) e.message_ = "unspecified error";
    return e;
  }

  bool ok() const { return message_.empty(); }
  explicit operator bool() const { return !ok(); }  // true when an error is set
  const std::string& message() const { return message_; }

  void throw_if_error() const {
    if (!ok()) throw InvalidArgumentError(message_);
  }

 private:
  std::string message_;
};

}  // namespace util

}  // namespace appx
