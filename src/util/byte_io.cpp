#include "util/byte_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "util/error.hpp"

namespace appx {

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v & 0xff));
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void ByteWriter::i64(std::int64_t v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  if (s.size() > UINT32_MAX) throw InvalidArgumentError("ByteWriter::str: string too large");
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

void ByteWriter::raw(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + len);
}

void ByteReader::need(std::size_t n) const {
  if (size_ - pos_ < n) throw ParseError("ByteReader: truncated input");
}

void ByteReader::skip(std::size_t n) {
  need(n);
  pos_ += n;
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::int64_t ByteReader::i64() { return std::bit_cast<std::int64_t>(u64()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return out;
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("write_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  if (!out) throw Error("write_file: write failed for " + path);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw Error("read_file: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  if (!in) throw Error("read_file: read failed for " + path);
  return data;
}

}  // namespace appx
