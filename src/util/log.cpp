#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace appx {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;
Logger::Sink g_sink;  // guarded by g_mutex; empty = stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

std::chrono::steady_clock::time_point process_epoch() {
  // First touch wins; function-local static makes the race-free init explicit.
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}
}  // namespace

LogLevel Logger::level() { return g_level.load(std::memory_order_relaxed); }

void Logger::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void Logger::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

int Logger::thread_id() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::int64_t Logger::elapsed_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               process_epoch())
      .count();
}

void Logger::write(LogLevel level, const std::string& component, const std::string& message) {
  if (level < Logger::level() || message.empty()) return;
  const std::int64_t us = elapsed_us();
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[%8.3f] [T%02d] [%s] ",
                static_cast<double>(us) / 1e6, thread_id(), level_name(level));
  std::string line = prefix;
  line += component;
  line += ": ";
  line += message;
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace appx
