// Small string helpers used across parsing code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace appx::strings {

// Split on a single character; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

// Split on a separator string. Requires non-empty sep.
std::vector<std::string> split(std::string_view s, std::string_view sep);

// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

// ASCII case conversion (locale-independent).
std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);
bool iequals(std::string_view a, std::string_view b);

// Append-style variants for hot paths that reuse an output buffer across
// calls (DESIGN.md §5h): each appends to `out` without clearing it.
void to_lower_into(std::string_view s, std::string& out);
void url_encode_into(std::string_view s, std::string& out);
void url_decode_into(std::string_view s, std::string& out);

// Parse a decimal integer; rejects trailing garbage.
std::optional<std::int64_t> to_int(std::string_view s);
std::optional<double> to_double(std::string_view s);

// Percent-encoding per RFC 3986 (unreserved chars kept verbatim).
std::string url_encode(std::string_view s);
std::string url_decode(std::string_view s);

// Lower-case hex rendering of raw bytes.
std::string to_hex(const void* data, std::size_t len);
std::string to_hex(std::uint64_t value);

// Replace every occurrence of `from` with `to`. Requires non-empty `from`.
std::string replace_all(std::string_view s, std::string_view from, std::string_view to);

}  // namespace appx::strings
