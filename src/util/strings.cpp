#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "util/error.hpp"

namespace appx::strings {

std::vector<std::string> split(std::string_view s, char sep) {
  return split(s, std::string_view(&sep, 1));
}

std::vector<std::string> split(std::string_view s, std::string_view sep) {
  if (sep.empty()) throw InvalidArgumentError("strings::split: empty separator");
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(s.substr(pos));
      return out;
    }
    out.emplace_back(s.substr(pos, next - pos));
    pos = next + sep.size();
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out;
  to_lower_into(s, out);
  return out;
}

void to_lower_into(std::string_view s, std::string& out) {
  for (char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::optional<std::int64_t> to_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> to_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is not universally available pre-gcc11 with
  // -std=c++20, but gcc 12 has it.
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

namespace {
bool is_unreserved(unsigned char c) {
  return std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~';
}
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string url_encode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  url_encode_into(s, out);
  return out;
}

void url_encode_into(std::string_view s, std::string& out) {
  static const char* kHex = "0123456789ABCDEF";
  for (unsigned char c : s) {
    if (is_unreserved(c)) {
      out += static_cast<char>(c);
    } else {
      out += '%';
      out += kHex[c >> 4];
      out += kHex[c & 0xf];
    }
  }
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  url_decode_into(s, out);
  return out;
}

void url_decode_into(std::string_view s, std::string& out) {
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) throw ParseError("url_decode: truncated percent escape");
      const int hi = hex_digit(s[i + 1]);
      const int lo = hex_digit(s[i + 2]);
      if (hi < 0 || lo < 0) throw ParseError("url_decode: bad percent escape");
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else if (s[i] == '+') {
      out += ' ';
    } else {
      out += s[i];
    }
  }
}

std::string to_hex(const void* data, std::size_t len) {
  static const char* kHex = "0123456789abcdef";
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out += kHex[bytes[i] >> 4];
    out += kHex[bytes[i] & 0xf];
  }
  return out;
}

std::string to_hex(std::uint64_t value) {
  unsigned char bytes[8];
  for (int i = 7; i >= 0; --i) {
    bytes[i] = static_cast<unsigned char>(value & 0xff);
    value >>= 8;
  }
  return to_hex(bytes, sizeof bytes);
}

std::string replace_all(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) throw InvalidArgumentError("strings::replace_all: empty needle");
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(from, pos);
    if (next == std::string_view::npos) {
      out += s.substr(pos);
      return out;
    }
    out += s.substr(pos, next - pos);
    out += to;
    pos = next + from.size();
  }
}

}  // namespace appx::strings
