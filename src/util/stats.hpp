// Descriptive statistics over latency / size samples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace appx {

// Accumulates samples and answers summary queries. Percentile queries sort a
// copy lazily; the accumulator itself is append-only.
class SampleSet {
 public:
  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const;
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  // q in [0, 1]; linear interpolation between order statistics.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }

  // (value, cumulative probability) pairs for each distinct sorted sample.
  std::vector<std::pair<double, double>> cdf() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Exponentially-weighted running average; used by the proxy's prefetch
// scheduler for per-signature response-time estimates (paper §5).
class RunningAverage {
 public:
  explicit RunningAverage(double alpha = 0.2);

  void add(double value);
  double value() const { return value_; }
  bool has_value() const { return count_ > 0; }
  std::size_t count() const { return count_; }

  // Re-enter a previously accumulated state (snapshot restore): the next
  // add() continues the EWMA from `value` as if `count` samples preceded it.
  void seed(double value, std::size_t count) {
    value_ = value;
    count_ = count;
  }

 private:
  double alpha_;
  double value_ = 0;
  std::size_t count_ = 0;
};

// Hit/miss ratio tracker (also §5: hit-rate-weighted prefetch priority).
class RatioTracker {
 public:
  void record(bool hit);
  std::size_t hits() const { return hits_; }
  std::size_t total() const { return total_; }
  // Laplace-smoothed so unseen signatures start at 0.5 rather than 0.
  double rate() const;

  // Re-enter a previously accumulated state (snapshot restore).
  void seed(std::size_t hits, std::size_t total) {
    hits_ = hits;
    total_ = total;
  }

 private:
  std::size_t hits_ = 0;
  std::size_t total_ = 0;
};

}  // namespace appx
