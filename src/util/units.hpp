// Simulation-wide unit types.
//
// All simulated time is integer microseconds so event ordering is exact;
// helpers convert to/from human units. Sizes are plain bytes.
#pragma once

#include <cstdint>

namespace appx {

// Microseconds since simulation start.
using SimTime = std::int64_t;
// A span of simulated time, also microseconds.
using Duration = std::int64_t;

using Bytes = std::int64_t;

constexpr Duration microseconds(std::int64_t us) { return us; }
constexpr Duration milliseconds(double ms) { return static_cast<Duration>(ms * 1000.0); }
constexpr Duration seconds(double s) { return static_cast<Duration>(s * 1'000'000.0); }
constexpr Duration minutes(double m) { return seconds(m * 60.0); }

constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_seconds(Duration d) { return static_cast<double>(d) / 1'000'000.0; }

constexpr Bytes kilobytes(double kb) { return static_cast<Bytes>(kb * 1024.0); }
constexpr Bytes megabytes(double mb) { return static_cast<Bytes>(mb * 1024.0 * 1024.0); }

// Bandwidth in bits per second; transmission delay of `size` bytes.
constexpr Duration transmission_delay(Bytes size, double bits_per_second) {
  return static_cast<Duration>(static_cast<double>(size) * 8.0 / bits_per_second * 1'000'000.0);
}

constexpr double mbps(double megabits_per_second) { return megabits_per_second * 1'000'000.0; }

}  // namespace appx
