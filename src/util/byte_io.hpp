// Binary serialisation primitives for the SAPK app-binary format and the
// signature-set format. Little-endian, length-prefixed, no padding.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace appx {

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  // u32 length prefix + raw bytes.
  void str(std::string_view s);
  void raw(const void* data, std::size_t len);

  const std::vector<std::uint8_t>& data() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}
  ByteReader(const void* data, std::size_t size)
      : data_(static_cast<const std::uint8_t*>(data)), size_(size) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();

  // Advance past n bytes without decoding them (throws ParseError when fewer
  // remain); used with cursor() to slice nested payloads out of a container.
  void skip(std::size_t n);
  // Pointer to the next unread byte (valid while the underlying buffer lives).
  const std::uint8_t* cursor() const { return data_ + pos_; }

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Whole-file helpers (throw appx::Error subclasses on failure).
void write_file(const std::string& path, const std::vector<std::uint8_t>& data);
std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace appx
