#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace appx {

void SampleSet::add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void SampleSet::add_all(const std::vector<double>& values) {
  samples_.insert(samples_.end(), values.begin(), values.end());
  sorted_valid_ = false;
}

double SampleSet::sum() const {
  double total = 0;
  for (double v : samples_) total += v;
  return total;
}

double SampleSet::mean() const {
  if (samples_.empty()) throw InvalidStateError("SampleSet::mean on empty set");
  return sum() / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) throw InvalidStateError("SampleSet::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) throw InvalidStateError("SampleSet::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void SampleSet::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleSet::percentile(double q) const {
  if (samples_.empty()) throw InvalidStateError("SampleSet::percentile on empty set");
  if (q < 0 || q > 1) throw InvalidArgumentError("SampleSet::percentile: q outside [0,1]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> SampleSet::cdf() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    const double p = static_cast<double>(i + 1) / n;
    if (!out.empty() && out.back().first == sorted_[i]) {
      out.back().second = p;
    } else {
      out.emplace_back(sorted_[i], p);
    }
  }
  return out;
}

RunningAverage::RunningAverage(double alpha) : alpha_(alpha) {
  if (alpha <= 0 || alpha > 1) throw InvalidArgumentError("RunningAverage: alpha outside (0,1]");
}

void RunningAverage::add(double value) {
  value_ = (count_ == 0) ? value : alpha_ * value + (1.0 - alpha_) * value_;
  ++count_;
}

void RatioTracker::record(bool hit) {
  ++total_;
  if (hit) ++hits_;
}

double RatioTracker::rate() const {
  return (static_cast<double>(hits_) + 1.0) / (static_cast<double>(total_) + 2.0);
}

}  // namespace appx
