# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_pattern[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_signature[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_learning[1]_include.cmake")
include("/root/repo/build/tests/test_proxy[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_interpreter[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_multiapp[1]_include.cmake")
include("/root/repo/build/tests/test_disasm[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_http_io[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")
