# Empty compiler generated dependencies file for test_http_io.
# This may be replaced when dependencies are built.
