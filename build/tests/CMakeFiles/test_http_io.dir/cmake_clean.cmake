file(REMOVE_RECURSE
  "CMakeFiles/test_http_io.dir/test_http_io.cpp.o"
  "CMakeFiles/test_http_io.dir/test_http_io.cpp.o.d"
  "test_http_io"
  "test_http_io.pdb"
  "test_http_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_http_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
