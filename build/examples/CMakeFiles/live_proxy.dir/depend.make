# Empty dependencies file for live_proxy.
# This may be replaced when dependencies are built.
