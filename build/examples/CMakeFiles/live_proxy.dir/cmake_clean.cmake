file(REMOVE_RECURSE
  "CMakeFiles/live_proxy.dir/live_proxy.cpp.o"
  "CMakeFiles/live_proxy.dir/live_proxy.cpp.o.d"
  "live_proxy"
  "live_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
