# Empty dependencies file for configure_policy.
# This may be replaced when dependencies are built.
