file(REMOVE_RECURSE
  "CMakeFiles/configure_policy.dir/configure_policy.cpp.o"
  "CMakeFiles/configure_policy.dir/configure_policy.cpp.o.d"
  "configure_policy"
  "configure_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configure_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
