file(REMOVE_RECURSE
  "CMakeFiles/appx.dir/appx_cli.cpp.o"
  "CMakeFiles/appx.dir/appx_cli.cpp.o.d"
  "appx"
  "appx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
