# Empty compiler generated dependencies file for appx.
# This may be replaced when dependencies are built.
