# Empty dependencies file for appx.
# This may be replaced when dependencies are built.
