file(REMOVE_RECURSE
  "CMakeFiles/appx_analysis.dir/analysis/analyzer.cpp.o"
  "CMakeFiles/appx_analysis.dir/analysis/analyzer.cpp.o.d"
  "libappx_analysis.a"
  "libappx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
