file(REMOVE_RECURSE
  "libappx_analysis.a"
)
