# Empty compiler generated dependencies file for appx_analysis.
# This may be replaced when dependencies are built.
