# Empty dependencies file for appx_pattern.
# This may be replaced when dependencies are built.
