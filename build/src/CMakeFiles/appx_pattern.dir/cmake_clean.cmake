file(REMOVE_RECURSE
  "CMakeFiles/appx_pattern.dir/pattern/regex.cpp.o"
  "CMakeFiles/appx_pattern.dir/pattern/regex.cpp.o.d"
  "CMakeFiles/appx_pattern.dir/pattern/template.cpp.o"
  "CMakeFiles/appx_pattern.dir/pattern/template.cpp.o.d"
  "libappx_pattern.a"
  "libappx_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
