file(REMOVE_RECURSE
  "libappx_pattern.a"
)
