# Empty compiler generated dependencies file for appx_eval.
# This may be replaced when dependencies are built.
