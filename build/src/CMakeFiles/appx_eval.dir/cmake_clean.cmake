file(REMOVE_RECURSE
  "CMakeFiles/appx_eval.dir/eval/experiments.cpp.o"
  "CMakeFiles/appx_eval.dir/eval/experiments.cpp.o.d"
  "CMakeFiles/appx_eval.dir/eval/report.cpp.o"
  "CMakeFiles/appx_eval.dir/eval/report.cpp.o.d"
  "CMakeFiles/appx_eval.dir/eval/testbed.cpp.o"
  "CMakeFiles/appx_eval.dir/eval/testbed.cpp.o.d"
  "CMakeFiles/appx_eval.dir/eval/verification.cpp.o"
  "CMakeFiles/appx_eval.dir/eval/verification.cpp.o.d"
  "libappx_eval.a"
  "libappx_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
