file(REMOVE_RECURSE
  "libappx_eval.a"
)
