file(REMOVE_RECURSE
  "CMakeFiles/appx_net.dir/net/http_io.cpp.o"
  "CMakeFiles/appx_net.dir/net/http_io.cpp.o.d"
  "CMakeFiles/appx_net.dir/net/servers.cpp.o"
  "CMakeFiles/appx_net.dir/net/servers.cpp.o.d"
  "CMakeFiles/appx_net.dir/net/socket.cpp.o"
  "CMakeFiles/appx_net.dir/net/socket.cpp.o.d"
  "libappx_net.a"
  "libappx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
