# Empty compiler generated dependencies file for appx_net.
# This may be replaced when dependencies are built.
