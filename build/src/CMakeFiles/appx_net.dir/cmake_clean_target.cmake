file(REMOVE_RECURSE
  "libappx_net.a"
)
