# Empty compiler generated dependencies file for appx_apps.
# This may be replaced when dependencies are built.
