file(REMOVE_RECURSE
  "libappx_apps.a"
)
