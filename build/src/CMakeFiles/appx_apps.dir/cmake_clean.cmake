file(REMOVE_RECURSE
  "CMakeFiles/appx_apps.dir/apps/catalog.cpp.o"
  "CMakeFiles/appx_apps.dir/apps/catalog.cpp.o.d"
  "CMakeFiles/appx_apps.dir/apps/client.cpp.o"
  "CMakeFiles/appx_apps.dir/apps/client.cpp.o.d"
  "CMakeFiles/appx_apps.dir/apps/compiler.cpp.o"
  "CMakeFiles/appx_apps.dir/apps/compiler.cpp.o.d"
  "CMakeFiles/appx_apps.dir/apps/content.cpp.o"
  "CMakeFiles/appx_apps.dir/apps/content.cpp.o.d"
  "CMakeFiles/appx_apps.dir/apps/server.cpp.o"
  "CMakeFiles/appx_apps.dir/apps/server.cpp.o.d"
  "CMakeFiles/appx_apps.dir/apps/spec.cpp.o"
  "CMakeFiles/appx_apps.dir/apps/spec.cpp.o.d"
  "libappx_apps.a"
  "libappx_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
