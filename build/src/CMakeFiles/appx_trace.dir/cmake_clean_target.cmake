file(REMOVE_RECURSE
  "libappx_trace.a"
)
