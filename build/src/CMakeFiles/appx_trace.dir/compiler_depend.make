# Empty compiler generated dependencies file for appx_trace.
# This may be replaced when dependencies are built.
