file(REMOVE_RECURSE
  "CMakeFiles/appx_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/appx_trace.dir/trace/trace.cpp.o.d"
  "libappx_trace.a"
  "libappx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
