file(REMOVE_RECURSE
  "CMakeFiles/appx_json.dir/json/json.cpp.o"
  "CMakeFiles/appx_json.dir/json/json.cpp.o.d"
  "libappx_json.a"
  "libappx_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
