# Empty compiler generated dependencies file for appx_json.
# This may be replaced when dependencies are built.
