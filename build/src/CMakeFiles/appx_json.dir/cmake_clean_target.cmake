file(REMOVE_RECURSE
  "libappx_json.a"
)
