file(REMOVE_RECURSE
  "libappx_http.a"
)
