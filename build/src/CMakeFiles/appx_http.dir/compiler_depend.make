# Empty compiler generated dependencies file for appx_http.
# This may be replaced when dependencies are built.
