file(REMOVE_RECURSE
  "CMakeFiles/appx_http.dir/http/message.cpp.o"
  "CMakeFiles/appx_http.dir/http/message.cpp.o.d"
  "CMakeFiles/appx_http.dir/http/uri.cpp.o"
  "CMakeFiles/appx_http.dir/http/uri.cpp.o.d"
  "libappx_http.a"
  "libappx_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
