file(REMOVE_RECURSE
  "libappx_util.a"
)
