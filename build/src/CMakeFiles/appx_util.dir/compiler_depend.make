# Empty compiler generated dependencies file for appx_util.
# This may be replaced when dependencies are built.
