file(REMOVE_RECURSE
  "CMakeFiles/appx_util.dir/util/byte_io.cpp.o"
  "CMakeFiles/appx_util.dir/util/byte_io.cpp.o.d"
  "CMakeFiles/appx_util.dir/util/hash.cpp.o"
  "CMakeFiles/appx_util.dir/util/hash.cpp.o.d"
  "CMakeFiles/appx_util.dir/util/log.cpp.o"
  "CMakeFiles/appx_util.dir/util/log.cpp.o.d"
  "CMakeFiles/appx_util.dir/util/rng.cpp.o"
  "CMakeFiles/appx_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/appx_util.dir/util/stats.cpp.o"
  "CMakeFiles/appx_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/appx_util.dir/util/strings.cpp.o"
  "CMakeFiles/appx_util.dir/util/strings.cpp.o.d"
  "libappx_util.a"
  "libappx_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
