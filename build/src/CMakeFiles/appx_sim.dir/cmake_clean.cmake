file(REMOVE_RECURSE
  "CMakeFiles/appx_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/appx_sim.dir/sim/simulator.cpp.o.d"
  "libappx_sim.a"
  "libappx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
