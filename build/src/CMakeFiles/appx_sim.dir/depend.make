# Empty dependencies file for appx_sim.
# This may be replaced when dependencies are built.
