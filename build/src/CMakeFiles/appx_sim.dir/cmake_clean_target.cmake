file(REMOVE_RECURSE
  "libappx_sim.a"
)
