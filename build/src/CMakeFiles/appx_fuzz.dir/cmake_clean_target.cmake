file(REMOVE_RECURSE
  "libappx_fuzz.a"
)
