file(REMOVE_RECURSE
  "CMakeFiles/appx_fuzz.dir/fuzz/fuzzer.cpp.o"
  "CMakeFiles/appx_fuzz.dir/fuzz/fuzzer.cpp.o.d"
  "libappx_fuzz.a"
  "libappx_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
