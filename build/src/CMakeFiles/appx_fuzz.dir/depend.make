# Empty dependencies file for appx_fuzz.
# This may be replaced when dependencies are built.
