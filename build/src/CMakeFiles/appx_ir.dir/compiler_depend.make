# Empty compiler generated dependencies file for appx_ir.
# This may be replaced when dependencies are built.
