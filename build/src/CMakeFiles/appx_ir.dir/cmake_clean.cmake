file(REMOVE_RECURSE
  "CMakeFiles/appx_ir.dir/ir/disasm.cpp.o"
  "CMakeFiles/appx_ir.dir/ir/disasm.cpp.o.d"
  "CMakeFiles/appx_ir.dir/ir/interpreter.cpp.o"
  "CMakeFiles/appx_ir.dir/ir/interpreter.cpp.o.d"
  "CMakeFiles/appx_ir.dir/ir/program.cpp.o"
  "CMakeFiles/appx_ir.dir/ir/program.cpp.o.d"
  "libappx_ir.a"
  "libappx_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
