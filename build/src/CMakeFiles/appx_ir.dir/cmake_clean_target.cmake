file(REMOVE_RECURSE
  "libappx_ir.a"
)
