
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/disasm.cpp" "src/CMakeFiles/appx_ir.dir/ir/disasm.cpp.o" "gcc" "src/CMakeFiles/appx_ir.dir/ir/disasm.cpp.o.d"
  "/root/repo/src/ir/interpreter.cpp" "src/CMakeFiles/appx_ir.dir/ir/interpreter.cpp.o" "gcc" "src/CMakeFiles/appx_ir.dir/ir/interpreter.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/CMakeFiles/appx_ir.dir/ir/program.cpp.o" "gcc" "src/CMakeFiles/appx_ir.dir/ir/program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/appx_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/appx_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/appx_http.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
