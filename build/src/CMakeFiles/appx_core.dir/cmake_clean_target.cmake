file(REMOVE_RECURSE
  "libappx_core.a"
)
