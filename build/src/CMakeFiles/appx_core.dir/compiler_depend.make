# Empty compiler generated dependencies file for appx_core.
# This may be replaced when dependencies are built.
