
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/appx_core.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/appx_core.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/cache.cpp" "src/CMakeFiles/appx_core.dir/core/cache.cpp.o" "gcc" "src/CMakeFiles/appx_core.dir/core/cache.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/appx_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/appx_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/learning.cpp" "src/CMakeFiles/appx_core.dir/core/learning.cpp.o" "gcc" "src/CMakeFiles/appx_core.dir/core/learning.cpp.o.d"
  "/root/repo/src/core/proxy.cpp" "src/CMakeFiles/appx_core.dir/core/proxy.cpp.o" "gcc" "src/CMakeFiles/appx_core.dir/core/proxy.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/appx_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/appx_core.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/signature.cpp" "src/CMakeFiles/appx_core.dir/core/signature.cpp.o" "gcc" "src/CMakeFiles/appx_core.dir/core/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/appx_http.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/appx_pattern.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/appx_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/appx_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
