file(REMOVE_RECURSE
  "CMakeFiles/appx_core.dir/core/baselines.cpp.o"
  "CMakeFiles/appx_core.dir/core/baselines.cpp.o.d"
  "CMakeFiles/appx_core.dir/core/cache.cpp.o"
  "CMakeFiles/appx_core.dir/core/cache.cpp.o.d"
  "CMakeFiles/appx_core.dir/core/config.cpp.o"
  "CMakeFiles/appx_core.dir/core/config.cpp.o.d"
  "CMakeFiles/appx_core.dir/core/learning.cpp.o"
  "CMakeFiles/appx_core.dir/core/learning.cpp.o.d"
  "CMakeFiles/appx_core.dir/core/proxy.cpp.o"
  "CMakeFiles/appx_core.dir/core/proxy.cpp.o.d"
  "CMakeFiles/appx_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/appx_core.dir/core/scheduler.cpp.o.d"
  "CMakeFiles/appx_core.dir/core/signature.cpp.o"
  "CMakeFiles/appx_core.dir/core/signature.cpp.o.d"
  "libappx_core.a"
  "libappx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
