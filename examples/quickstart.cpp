// Quickstart: the complete APPx pipeline on one app, end to end.
//
//   1. Compile the Wish-like app model to a SAPK binary (the "APK").
//   2. Run static program analysis -> transaction signatures + dependencies.
//   3. Stand up the simulated testbed (client / proxy / origins).
//   4. Measure the main interaction without and with the prefetching proxy.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;

  // 1. The app "binary".
  const apps::AppSpec spec = apps::make_wish();
  const ir::Program program = apps::compile_app(spec);
  const auto sapk = program.serialize();
  std::cout << "compiled " << spec.name << " to SAPK: " << sapk.size() << " bytes, "
            << program.methods.size() << " methods, " << program.instruction_count()
            << " instructions\n\n";

  // 2. Static analysis.
  const auto result = analysis::analyze_sapk(sapk);
  std::cout << "static analysis: " << result.signatures.size() << " transaction signatures, "
            << result.signatures.prefetchable().size() << " prefetchable, "
            << result.signatures.edges().size() << " dependency edges, max chain "
            << result.signatures.max_chain_length() << "\n\n";

  // A taste of the signatures (paper Fig. 5).
  std::cout << "example signature (item detail):\n";
  const auto* detail = result.signatures.find_by_label("detail");
  if (detail != nullptr) {
    std::cout << "  URI    " << detail->uri_regex() << "\n";
    for (const auto& field : detail->request.body) {
      std::cout << "  body   " << field.name << ": " << field.value.to_regex_string()
                << (field.optional ? "   (branch-dependent)" : "") << "\n";
      if (field.name == "attr2") {
        std::cout << "  ...    (" << detail->request.body.size() - 3 << " more fields)\n";
        break;
      }
    }
  }
  std::cout << "\n";

  // 3+4. Measure the main interaction, Orig vs APPx (Fig. 13 methodology).
  eval::AnalyzedApp app = eval::analyze_app(spec);

  eval::TestbedConfig orig_config;
  orig_config.prefetch_enabled = false;
  const auto orig = eval::measure_main_interaction(app, orig_config, 10);

  eval::TestbedConfig appx_config;
  appx_config.prefetch_enabled = true;
  appx_config.proxy_config.default_expiration = minutes(30);
  const auto accel = eval::measure_main_interaction(app, appx_config, 10);

  eval::TablePrinter table({"setup", "total (ms)", "network (ms)", "processing (ms)"});
  table.add_row({"Orig", eval::TablePrinter::fmt(orig.total_ms),
                 eval::TablePrinter::fmt(orig.network_ms),
                 eval::TablePrinter::fmt(orig.processing_ms)});
  table.add_row({"APPx", eval::TablePrinter::fmt(accel.total_ms),
                 eval::TablePrinter::fmt(accel.network_ms),
                 eval::TablePrinter::fmt(accel.processing_ms)});
  table.print(std::cout);

  const double reduction = 1.0 - accel.total_ms / orig.total_ms;
  std::cout << "\nuser-perceived latency reduction: " << eval::TablePrinter::pct(reduction)
            << " (paper reports 47-62% across apps for the main interaction)\n";
  return 0;
}
