// trace_replay: the user-study workflow (§6.2) as a standalone tool.
//
//   1. Generate a 30-user, 3-minutes-per-user event trace for an app and
//      persist it to disk (the reproducible workload artefact).
//   2. Replay it twice — without and with prefetching — and print the
//      latency distribution of the main interaction plus data usage.
//
// Usage:  ./build/examples/trace_replay [users] [minutes]
#include <cstdlib>
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"
#include "util/byte_io.hpp"

int main(int argc, char** argv) {
  using namespace appx;
  trace::TraceParams params;
  if (argc > 1) params.users = std::atoi(argv[1]);
  if (argc > 2) params.session_length = minutes(std::atof(argv[2]));

  const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());

  // 1. Generate + persist + reload (replayable workload artefact).
  const auto traces = trace::generate_traces(app.spec, params);
  const std::string path = "/tmp/appx_user_study.trace";
  write_file(path, trace::serialize_traces(traces));
  const auto replayed = trace::deserialize_traces(read_file(path));
  std::size_t events = 0;
  for (const auto& t : replayed) events += t.events.size();
  std::cout << "generated " << replayed.size() << " user sessions (" << events
            << " events) -> " << path << "\n\n";

  // 2. Replay under both configurations.
  eval::TestbedConfig orig;
  orig.prefetch_enabled = false;
  const auto base = eval::run_trace_experiment(app, orig, replayed);

  eval::TestbedConfig accel;
  accel.prefetch_enabled = true;
  accel.proxy_config = eval::deployment_config(app);
  const auto fast = eval::run_trace_experiment(app, accel, replayed);

  const auto pct = [](const SampleSet& s, double q) {
    return s.empty() ? 0.0 : s.percentile(q);
  };
  eval::TablePrinter table({"Setup", "p25 (ms)", "p50 (ms)", "p75 (ms)", "p90 (ms)",
                            "Origin data"});
  table.add_row({"Orig", eval::TablePrinter::fmt(pct(base.main_latency_ms, 0.25)),
                 eval::TablePrinter::fmt(pct(base.main_latency_ms, 0.50)),
                 eval::TablePrinter::fmt(pct(base.main_latency_ms, 0.75)),
                 eval::TablePrinter::fmt(pct(base.main_latency_ms, 0.90)),
                 eval::TablePrinter::fmt(static_cast<double>(base.origin_bytes) / 1048576.0) +
                     " MiB"});
  table.add_row({"APPx", eval::TablePrinter::fmt(pct(fast.main_latency_ms, 0.25)),
                 eval::TablePrinter::fmt(pct(fast.main_latency_ms, 0.50)),
                 eval::TablePrinter::fmt(pct(fast.main_latency_ms, 0.75)),
                 eval::TablePrinter::fmt(pct(fast.main_latency_ms, 0.90)),
                 eval::TablePrinter::fmt(static_cast<double>(fast.origin_bytes) / 1048576.0) +
                     " MiB"});
  table.print(std::cout);

  const double cut = 1.0 - pct(fast.main_latency_ms, 0.5) / pct(base.main_latency_ms, 0.5);
  std::cout << "\nmedian main-interaction latency reduction: " << eval::TablePrinter::pct(cut)
            << "; proxy hit rate "
            << eval::TablePrinter::pct(
                   static_cast<double>(fast.proxy_stats.cache_hits) /
                   static_cast<double>(std::max<std::size_t>(fast.proxy_stats.client_requests,
                                                             1)))
            << "\n";
  return 0;
}
