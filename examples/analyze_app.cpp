// analyze_app: the static-analysis half of the pipeline as a standalone tool.
//
// Compiles an app model to a SAPK binary on disk, loads it back (the way the
// real framework ingests an APK), runs the analysis, and dumps the artefacts
// a proxy operator would look at: signature list, dependency graph,
// backward-slice sizes, and the effect of disabling each analysis extension.
//
// Usage:  ./build/examples/analyze_app [wish|geek|doordash|purpleocean|postmates]
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "eval/report.hpp"
#include "ir/disasm.hpp"
#include "util/byte_io.hpp"

namespace {

appx::apps::AppSpec pick_app(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "wish";
  if (name == "wish") return appx::apps::make_wish();
  if (name == "geek") return appx::apps::make_geek();
  if (name == "doordash") return appx::apps::make_doordash();
  if (name == "purpleocean") return appx::apps::make_purpleocean();
  if (name == "postmates") return appx::apps::make_postmates();
  std::cerr << "unknown app '" << name << "'; using wish\n";
  return appx::apps::make_wish();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace appx;
  const apps::AppSpec spec = pick_app(argc, argv);

  // 1. Produce and persist the app binary, then reload it.
  const ir::Program program = apps::compile_app(spec);
  const std::string path = "/tmp/" + spec.package + ".sapk";
  write_file(path, program.serialize());
  std::cout << "wrote " << path << " (" << program.serialize().size() << " bytes)\n";
  const auto sapk = read_file(path);

  // 2. Analyze.
  const auto result = analysis::analyze_sapk(sapk);
  const auto& sigs = result.signatures;
  std::cout << "\n" << spec.name << ": " << sigs.size() << " signatures, "
            << sigs.prefetchable().size() << " prefetchable, " << sigs.edges().size()
            << " dependency edges, max chain " << sigs.max_chain_length() << "\n"
            << "analysis walked " << result.report.methods_analyzed << " methods / "
            << result.report.instructions_interpreted << " abstract instructions in "
            << result.report.fixpoint_iterations << " fixpoint pass(es)\n\n";

  // 3. Signature inventory (first 12 rows).
  eval::TablePrinter table({"Label", "Method", "URI pattern", "Deps in", "Deps out", "Slice"});
  std::size_t shown = 0;
  for (const auto& sig : sigs.all()) {
    if (shown++ == 12) break;
    const auto slice = result.slices.find(sig->label);
    table.add_row({sig->label, sig->request.method, sig->uri_regex(),
                   std::to_string(sigs.edges_to(sig->id).size()),
                   std::to_string(sigs.edges_from(sig->id).size()),
                   slice == result.slices.end() ? "-" : std::to_string(slice->second.size())});
  }
  table.print(std::cout);
  if (sigs.size() > 12) std::cout << "... (" << sigs.size() - 12 << " more)\n";

  // 4. The dependency chain behind the main interaction.
  std::cout << "\ndependency edges into the main-interaction signatures:\n";
  for (const char* label : {"detail", "related", "photo", "reviews"}) {
    const auto* sig = sigs.find_by_label(label);
    if (sig == nullptr) continue;
    for (const auto* edge : sigs.edges_to(sig->id)) {
      std::cout << "  " << sigs.get(edge->pred_id).label << " [" << edge->pred_path << "] -> "
                << label << "\n";
    }
  }

  // 5. Disassembly excerpt: what the "binary" looks like.
  std::cout << "\ndisassembly of the feed builder:\n";
  const std::string listing =
      ir::disassemble(program.get_method(apps::build_method_name(spec, spec.endpoint("feed"))));
  std::istringstream lines(listing);
  std::string line;
  for (int i = 0; i < 18 && std::getline(lines, line); ++i) std::cout << "  " << line << "\n";
  std::cout << "  ...\n";

  // 6. Extension ablation on this app.
  std::cout << "\nanalysis extensions (paper 4.1) on " << spec.name << ":\n";
  eval::TablePrinter ablation({"Variant", "Edges", "Prefetchable"});
  const auto run_variant = [&](const char* name, analysis::AnalysisOptions options) {
    const auto r = analysis::analyze(program, options);
    ablation.add_row({name, std::to_string(r.signatures.edges().size()),
                      std::to_string(r.signatures.prefetchable().size())});
  };
  run_variant("full", {});
  analysis::AnalysisOptions no_intent;
  no_intent.intent_support = false;
  run_variant("no intent map", no_intent);
  analysis::AnalysisOptions no_rx;
  no_rx.rx_support = false;
  run_variant("no rx models", no_rx);
  analysis::AnalysisOptions no_alias;
  no_alias.alias_analysis = false;
  run_variant("no alias analysis", no_alias);
  ablation.print(std::cout);
  return 0;
}
