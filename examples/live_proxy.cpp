// live_proxy: the whole system on real TCP sockets (no simulator).
//
//   1. Start a loopback origin server hosting the Wish-like backend.
//   2. Start the acceleration proxy in front of it (dynamic learning +
//      background prefetch worker, as in the paper's mitmproxy prototype).
//   3. Act as the app: fetch the feed, open one item, then open more items
//      and watch them come back from the prefetch cache (X-Appx-Cache: hit),
//      with wall-clock timings per request.
//
// Usage:  ./build/examples/live_proxy
#include <chrono>
#include <iostream>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "core/sharded_proxy.hpp"
#include "eval/report.hpp"
#include "net/servers.hpp"
#include "util/byte_io.hpp"

namespace {

using namespace appx;

http::Request feed_request(const apps::AppSpec& spec) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("feed").host + "/api/get-feed");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", std::to_string(spec.endpoint("feed").list_count));
  req.headers.set("Cookie", "session-abc");
  req.headers.set("User-Agent", "Mozilla/5.0");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  return req;
}

http::Request detail_request(const apps::AppSpec& spec, const json::Value& feed_body,
                             std::size_t index) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("detail").host + "/product/get");
  req.headers.set("Cookie", "session-abc");
  req.headers.set("User-Agent", "Mozilla/5.0");
  http::FormFields fields;
  for (const apps::FieldSpec& f : spec.endpoint("detail").fields) {
    if (f.loc != core::FieldLocation::kBody || f.conditional) continue;
    if (f.value.kind == apps::ValueSpec::Kind::kDep) {
      std::string path = f.value.dep_path;
      const auto star = path.find("[*]");
      if (star != std::string::npos) path.replace(star, 3, "[" + std::to_string(index) + "]");
      fields.emplace_back(f.name, json::Path(path).resolve_first(feed_body)->scalar_to_string());
    } else if (f.value.kind == apps::ValueSpec::Kind::kEnv) {
      fields.emplace_back(f.name, spec.env_defaults.at(f.value.text));
    } else {
      fields.emplace_back(f.name, f.value.text);
    }
  }
  req.set_form_fields(fields);
  return req;
}

}  // namespace

int main() {
  const apps::AppSpec spec = apps::make_wish();
  const auto analysis = analysis::analyze(apps::compile_app(spec));
  // The "Sig." artifact of Fig. 4: the analysis output ships to the proxy as
  // a file; the proxy loads it at startup.
  write_file("/tmp/com.wish.app.sig", analysis.signatures.serialize());
  const core::SignatureSet signatures =
      core::SignatureSet::deserialize(read_file("/tmp/com.wish.app.sig"));
  std::cout << "analyzed " << spec.name << ": " << signatures.size() << " signatures / "
            << signatures.edges().size() << " edges (via /tmp/com.wish.app.sig)\n";

  apps::OriginServer origin(&spec);
  net::LiveOriginServer origin_server(&origin);
  std::cout << "origin server on 127.0.0.1:" << origin_server.port() << "\n";

  core::ProxyConfig config;
  config.default_expiration = minutes(30);
  // One knob surface for the whole stack: engine seed/shards and the
  // server's transport bounds all live in core::EngineOptions.
  core::EngineOptions options;
  options.seed = 42;
  options.connect_timeout = seconds(2);
  options.request_deadline = seconds(5);
  options.prefetch_workers = 4;
  core::ShardedProxyEngine engine(&signatures, &config, options);
  net::LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec.endpoints) upstreams[ep.host] = origin_server.port();
  net::LiveProxyServer proxy(&engine, std::move(upstreams), 0, options);
  std::cout << "acceleration proxy on 127.0.0.1:" << proxy.port() << " ("
            << engine.shard_count() << " shards, "
            << proxy.options().prefetch_workers << " prefetch workers, "
            << to_ms(proxy.options().request_deadline) << " ms upstream deadline)\n\n";

  // The "phone": one keep-alive connection through the proxy.
  net::TcpStream stream = net::TcpStream::connect("127.0.0.1", proxy.port());
  net::HttpReader reader(&stream);
  const auto roundtrip = [&](http::Request req) {
    req.headers.set("X-Appx-User", "demo");
    const auto started = std::chrono::steady_clock::now();
    net::write_request(stream, req);
    auto response = reader.read_response();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - started)
                          .count();
    return std::make_pair(*response, ms);
  };

  eval::TablePrinter table({"Request", "Status", "Cache", "Wall time"});
  const auto [feed_resp, feed_ms] = roundtrip(feed_request(spec));
  table.add_row({"POST /api/get-feed", std::to_string(feed_resp.status),
                 feed_resp.headers.get("X-Appx-Cache").value_or("-"),
                 eval::TablePrinter::fmt(feed_ms, 2) + " ms"});
  const json::Value feed_body = json::parse(feed_resp.body);

  for (std::size_t i = 0; i < 5; ++i) {
    const auto [resp, ms] = roundtrip(detail_request(spec, feed_body, i));
    table.add_row({"POST /product/get (item " + std::to_string(i) + ")",
                   std::to_string(resp.status),
                   resp.headers.get("X-Appx-Cache").value_or("-"),
                   eval::TablePrinter::fmt(ms, 2) + " ms"});
    if (i == 0) proxy.drain_prefetches();  // let the worker fill the cache
  }
  table.print(std::cout);

  // Monitoring: the same connection can scrape the admin endpoint — the
  // Prometheus text a real deployment would poll.
  {
    http::Request scrape;
    scrape.method = "GET";
    scrape.uri.path = "/appx/metrics";
    net::write_request(stream, scrape);
    const auto metrics = reader.read_response();
    const std::string_view body = metrics->body.view();
    std::cout << "\nGET /appx/metrics (" << body.size() << " bytes):\n";
    std::size_t shown = 0;
    std::size_t pos = 0;
    while (shown < 12 && pos < body.size()) {
      const auto eol = body.find('\n', pos);
      const std::string_view line = body.substr(pos, eol - pos);
      pos = eol == std::string_view::npos ? body.size() : eol + 1;
      if (line.empty() || line[0] == '#') continue;
      std::cout << "  " << line << "\n";
      ++shown;
    }
    std::cout << "  ... (full scrape: curl http://127.0.0.1:" << proxy.port()
              << "/appx/metrics)\n";
  }

  const auto& stats = engine.stats();
  std::cout << "\nproxy: " << stats.prefetches_issued << " prefetches issued, "
            << stats.cache_hits << " cache hits, " << stats.forwarded << " forwarded\n"
            << "bounds: " << stats.evicted_lru << " LRU evictions, "
            << stats.evicted_expired << " TTL evictions, " << stats.prefetches_dropped
            << " prefetches dropped (queue drops: " << proxy.prefetch_jobs_dropped()
            << ")\n"
            << "(the first detail is a miss that teaches the proxy the run-time values;\n"
            << " every further item is served from the prefetch cache)\n";

  proxy.stop();
  origin_server.stop();
  return 0;
}
