// configure_policy: the verification phase and the Fig. 9 configuration
// workflow, end to end.
//
//   1. Run the testing & verification phase (UI fuzzing through the proxy):
//      failing signatures (the nonce-protected cart endpoint) are disabled
//      and expiration times estimated from content churn.
//   2. Emit the generated initial configuration as JSON.
//   3. Hand-tune it the way a service provider would: add a prefetch-marker
//      header and a price condition, then show the policies taking effect
//      under live traffic.
//
// Usage:  ./build/examples/configure_policy
#include <iostream>
#include <sstream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"
#include "eval/verification.hpp"

int main() {
  using namespace appx;
  const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());

  // --- 1. verification phase --------------------------------------------------
  eval::VerificationParams params;
  params.fuzz.duration = minutes(20);
  std::cout << "running verification phase (" << to_seconds(params.fuzz.duration) / 60
            << " simulated minutes of UI fuzzing through the proxy)...\n";
  const eval::VerificationOutcome outcome = eval::run_verification(app, params);

  std::cout << "  prefetches observed: " << outcome.prefetches_observed << "\n"
            << "  verified signatures: " << outcome.verified.size() << "\n"
            << "  failing signatures:  " << outcome.failing.size() << "\n";
  for (const std::string& id : outcome.failing) {
    std::cout << "    - " << app.analysis.signatures.get(id).label
              << " (nonce replay drew 403; prefetch disabled)\n";
  }

  // --- 2. the generated configuration ------------------------------------------
  const std::string json = outcome.initial_config.to_json();
  std::cout << "\ngenerated initial configuration ("
            << outcome.initial_config.policy_count() << " policies, " << json.size()
            << " bytes of JSON); first policies:\n";
  std::istringstream lines(json);
  std::string line;
  for (int i = 0; i < 24 && std::getline(lines, line); ++i) std::cout << "  " << line << "\n";
  std::cout << "  ...\n";

  // --- 3. provider customisation ------------------------------------------------
  core::ProxyConfig config = core::ProxyConfig::from_json(json);
  const auto* related = app.analysis.signatures.find_by_label("related");
  core::SignaturePolicy policy = *config.policy_for(related->id);
  policy.add_headers = {{"X-Appx", "prefetch"}};  // let the origin tag prefetches
  policy.conditions = {{"data.contest.price", core::FieldCondition::Op::kGt, "1000"}};
  config.set_policy(policy);
  std::cout << "\nprovider customisation: related-items prefetch now carries an "
               "'X-Appx: prefetch'\nheader and fires only when the item price exceeds "
               "1000 (Fig. 9's example).\n";

  // Show the condition working: replay a short workload and count skips.
  eval::TestbedConfig accel;
  accel.prefetch_enabled = true;
  accel.proxy_config = config;
  trace::TraceParams tp;
  tp.users = 5;
  const auto traces = trace::generate_traces(app.spec, tp);
  const auto result = eval::run_trace_experiment(app, accel, traces);
  eval::TablePrinter table({"Metric", "Value"});
  table.add_row({"interactions replayed", std::to_string(result.interactions)});
  table.add_row({"prefetches issued", std::to_string(result.proxy_stats.prefetches_issued)});
  table.add_row({"skipped by condition", std::to_string(result.proxy_stats.skipped_condition)});
  table.add_row({"skipped by policy", std::to_string(result.proxy_stats.skipped_disabled)});
  table.add_row({"prefetch failures", std::to_string(result.proxy_stats.prefetch_failures)});
  table.add_row({"cache hits", std::to_string(result.proxy_stats.cache_hits)});
  std::cout << "\n";
  table.print(std::cout);
  std::cout << "\n(with the cart signature disabled by verification, prefetch failures "
               "stay at zero\n while the price condition filters related-item prefetches)\n";
  return 0;
}
