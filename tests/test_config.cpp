// Unit tests for the proxy configuration model (paper Fig. 9).
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "util/error.hpp"

namespace appx::core {
namespace {

json::Value product_body(int price, const std::string& merchant = "Silk") {
  json::Object contest;
  contest["price"] = price;
  contest["merchant_name"] = merchant;
  json::Object data;
  data["contest"] = std::move(contest);
  json::Object root;
  root["data"] = std::move(data);
  return json::Value(std::move(root));
}

TEST(FieldCondition, NumericComparisons) {
  FieldCondition c{"data.contest.price", FieldCondition::Op::kGt, "1000"};
  EXPECT_TRUE(c.evaluate(product_body(1200)));
  EXPECT_FALSE(c.evaluate(product_body(800)));

  c.op = FieldCondition::Op::kLe;
  EXPECT_TRUE(c.evaluate(product_body(1000)));
  c.op = FieldCondition::Op::kEq;
  EXPECT_TRUE(c.evaluate(product_body(1000)));
  c.op = FieldCondition::Op::kNe;
  EXPECT_FALSE(c.evaluate(product_body(1000)));
}

TEST(FieldCondition, StringComparisons) {
  FieldCondition c{"data.contest.merchant_name", FieldCondition::Op::kEq, "Silk"};
  EXPECT_TRUE(c.evaluate(product_body(1, "Silk")));
  EXPECT_FALSE(c.evaluate(product_body(1, "Other")));
  c.op = FieldCondition::Op::kContains;
  c.value = "il";
  EXPECT_TRUE(c.evaluate(product_body(1, "Silk")));
}

TEST(FieldCondition, MissingPathFailsConservatively) {
  FieldCondition c{"data.nope", FieldCondition::Op::kGt, "0"};
  EXPECT_FALSE(c.evaluate(product_body(100)));
}

TEST(FieldCondition, ContainerValueFails) {
  FieldCondition c{"data.contest", FieldCondition::Op::kEq, "x"};
  EXPECT_FALSE(c.evaluate(product_body(100)));
}

TEST(FieldCondition, OpNamesRoundTrip) {
  for (const char* name : {"gt", "ge", "lt", "le", "eq", "ne", "contains"}) {
    FieldCondition c;
    c.op = FieldCondition::parse_op(name);
    EXPECT_EQ(c.op_name(), name);
  }
  EXPECT_THROW(FieldCondition::parse_op("unknown"), ParseError);
}

TEST(ProxyConfig, DefaultsWhenNoPolicy) {
  ProxyConfig config;
  EXPECT_TRUE(config.prefetch_enabled("any"));
  EXPECT_DOUBLE_EQ(config.probability("any"), 1.0);
  EXPECT_EQ(config.expiration("any"), seconds(60));
  EXPECT_TRUE(config.added_headers("any").empty());
  EXPECT_EQ(config.conditions("any"), nullptr);
}

TEST(ProxyConfig, PolicyOverrides) {
  ProxyConfig config;
  SignaturePolicy p;
  p.hash = "3853be";
  p.uri = ".*/product/get";
  p.prefetch = true;
  p.expiration_time = minutes(60 * 24);  // 1 day
  p.probability = 0.8;
  p.add_headers = {{"proxy", "prefetch"}};
  p.conditions = {{"data.contest.price", FieldCondition::Op::kGt, "1000"}};
  config.set_policy(p);

  EXPECT_TRUE(config.prefetch_enabled("3853be"));
  EXPECT_DOUBLE_EQ(config.probability("3853be"), 0.8);
  EXPECT_EQ(config.expiration("3853be"), minutes(60 * 24));
  ASSERT_EQ(config.added_headers("3853be").size(), 1u);
  ASSERT_NE(config.conditions("3853be"), nullptr);
}

TEST(ProxyConfig, GlobalProbabilityMultiplies) {
  ProxyConfig config;
  config.global_probability = 0.5;
  SignaturePolicy p;
  p.hash = "x";
  p.probability = 0.8;
  config.set_policy(p);
  EXPECT_DOUBLE_EQ(config.probability("x"), 0.4);
  EXPECT_DOUBLE_EQ(config.probability("unlisted"), 0.5);
}

TEST(ProxyConfig, DisabledPrefetch) {
  ProxyConfig config;
  SignaturePolicy p;
  p.hash = "ar93ba";
  p.prefetch = false;
  p.expiration_time = std::nullopt;  // "none"
  config.set_policy(p);
  EXPECT_FALSE(config.prefetch_enabled("ar93ba"));
  EXPECT_FALSE(config.expiration("ar93ba").has_value());
}

TEST(ProxyConfig, RejectsBadPolicies) {
  ProxyConfig config;
  SignaturePolicy no_hash;
  EXPECT_THROW(config.set_policy(no_hash), InvalidArgumentError);
  SignaturePolicy bad_prob;
  bad_prob.hash = "h";
  bad_prob.probability = 1.5;
  EXPECT_THROW(config.set_policy(bad_prob), InvalidArgumentError);
}

TEST(ProxyConfig, AddedHeaderNamesAggregated) {
  ProxyConfig config;
  SignaturePolicy a;
  a.hash = "a";
  a.add_headers = {{"X-Prefetch", "1"}, {"X-Tier", "gold"}};
  config.set_policy(a);
  SignaturePolicy b;
  b.hash = "b";
  b.add_headers = {{"X-Prefetch", "1"}};
  config.set_policy(b);
  const auto names = config.all_added_header_names();
  EXPECT_EQ(names.size(), 2u);
}

TEST(ProxyConfig, JsonRoundTrip) {
  ProxyConfig config;
  config.global_probability = 0.9;
  config.default_expiration = seconds(30);
  config.data_budget = megabytes(10);
  config.max_outstanding_prefetches = 8;

  SignaturePolicy p;
  p.hash = "3853be";
  p.uri = ".*/product/get";
  p.prefetch = true;
  p.expiration_time = seconds(86400);
  p.probability = 0.8;
  p.add_headers = {{"proxy", "prefetch"}};
  p.conditions = {{"price", FieldCondition::Op::kGt, "1000"}};
  config.set_policy(p);

  SignaturePolicy q;
  q.hash = "ar93ba";
  q.uri = ".*/api/get-feed";
  q.prefetch = false;
  q.expiration_time = std::nullopt;
  config.set_policy(q);

  const ProxyConfig back = ProxyConfig::from_json(config.to_json());
  EXPECT_DOUBLE_EQ(back.global_probability, 0.9);
  EXPECT_EQ(back.default_expiration, seconds(30));
  EXPECT_EQ(back.data_budget, megabytes(10));
  EXPECT_EQ(back.max_outstanding_prefetches, 8u);
  EXPECT_EQ(back.policy_count(), 2u);

  const auto* bp = back.policy_for("3853be");
  ASSERT_NE(bp, nullptr);
  EXPECT_EQ(bp->uri, ".*/product/get");
  EXPECT_EQ(bp->expiration_time, seconds(86400));
  EXPECT_DOUBLE_EQ(bp->probability, 0.8);
  ASSERT_EQ(bp->add_headers.size(), 1u);
  EXPECT_EQ(bp->add_headers[0].first, "proxy");
  ASSERT_EQ(bp->conditions.size(), 1u);
  EXPECT_EQ(bp->conditions[0].op, FieldCondition::Op::kGt);

  const auto* bq = back.policy_for("ar93ba");
  ASSERT_NE(bq, nullptr);
  EXPECT_FALSE(bq->prefetch);
  EXPECT_FALSE(bq->expiration_time.has_value());
}

TEST(ProxyConfig, FromJsonMinimalDocument) {
  const ProxyConfig config = ProxyConfig::from_json("{}");
  EXPECT_DOUBLE_EQ(config.global_probability, 1.0);
  EXPECT_EQ(config.policy_count(), 0u);
}

TEST(ProxyConfig, FromJsonRejectsGarbage) {
  EXPECT_THROW(ProxyConfig::from_json("not json"), ParseError);
}

TEST(ProxyConfig, HostAppsRoutingAndRoundTrip) {
  ProxyConfig config;
  config.host_apps = {{"api.wish.example", "com.wish.app"},
                      {"api.geek.example", "com.geek.app"}};
  EXPECT_EQ(config.app_for_host("api.wish.example"), "com.wish.app");
  EXPECT_EQ(config.app_for_host("unknown.example"), "");

  const ProxyConfig back = ProxyConfig::from_json(config.to_json());
  EXPECT_EQ(back.host_apps, config.host_apps);
}

TEST(ProxyConfig, ResourceBoundsRoundTrip) {
  ProxyConfig config;
  config.cache_max_entries = 123;
  config.cache_max_bytes = kilobytes(512);
  config.max_users = 77;
  config.user_idle_timeout = minutes(5);
  const ProxyConfig back = ProxyConfig::from_json(config.to_json());
  EXPECT_EQ(back.cache_max_entries, 123u);
  EXPECT_EQ(back.cache_max_bytes, kilobytes(512));
  EXPECT_EQ(back.max_users, 77u);
  EXPECT_EQ(back.user_idle_timeout, minutes(5));

  // Unbounded (disabled) settings survive the trip too.
  config.cache_max_entries = 0;
  config.cache_max_bytes = 0;
  config.max_users = 0;
  config.user_idle_timeout = std::nullopt;
  const ProxyConfig unbounded = ProxyConfig::from_json(config.to_json());
  EXPECT_EQ(unbounded.cache_max_entries, 0u);
  EXPECT_EQ(unbounded.cache_max_bytes, 0);
  EXPECT_EQ(unbounded.max_users, 0u);
  EXPECT_FALSE(unbounded.user_idle_timeout.has_value());
}

TEST(ProxyConfig, SchedulerWeightsRoundTrip) {
  ProxyConfig config;
  config.scheduler_time_weight = 0;
  config.scheduler_hit_weight = 42.5;
  const ProxyConfig back = ProxyConfig::from_json(config.to_json());
  EXPECT_DOUBLE_EQ(back.scheduler_time_weight, 0);
  EXPECT_DOUBLE_EQ(back.scheduler_hit_weight, 42.5);
}

TEST(ProxyConfig, PolicyEngineJsonRoundTrip) {
  ProxyConfig config;
  config.policy.enabled = true;
  config.policy.min_value = 0.25;
  config.policy.max_threshold = 12.5;
  config.policy.threshold_growth = 1.5;
  config.policy.threshold_decay = 0.75;
  config.policy.target_queue_depth = 1024;
  config.policy.budget_window = seconds(90);
  config.policy.hit_byte_refund = 0.8;
  config.policy.learn_expiry = false;
  config.policy.min_learned_expiry = seconds(7);
  config.max_queued_prefetches = 48;

  const ProxyConfig back = ProxyConfig::from_json(config.to_json());
  EXPECT_TRUE(back.policy.enabled);
  EXPECT_DOUBLE_EQ(back.policy.min_value, 0.25);
  EXPECT_DOUBLE_EQ(back.policy.max_threshold, 12.5);
  EXPECT_DOUBLE_EQ(back.policy.threshold_growth, 1.5);
  EXPECT_DOUBLE_EQ(back.policy.threshold_decay, 0.75);
  EXPECT_EQ(back.policy.target_queue_depth, 1024);
  EXPECT_EQ(back.policy.budget_window, seconds(90));
  EXPECT_DOUBLE_EQ(back.policy.hit_byte_refund, 0.8);
  EXPECT_FALSE(back.policy.learn_expiry);
  EXPECT_EQ(back.policy.min_learned_expiry, seconds(7));
  EXPECT_EQ(back.max_queued_prefetches, 48u);
}

TEST(ProxyConfig, PolicySectionAbsentKeepsDefaults) {
  // Pre-policy configs (no `global.policy` object) still parse, with the
  // engine disabled — upgrading a deployment must not change behaviour.
  const ProxyConfig config = ProxyConfig::from_json(R"({"global": {"probability": 0.7}})");
  EXPECT_DOUBLE_EQ(config.global_probability, 0.7);
  EXPECT_FALSE(config.policy.enabled);
  EXPECT_DOUBLE_EQ(config.policy.min_value, policy::PolicyOptions{}.min_value);
}

TEST(FieldCondition, NumericVsStringFallsBackToLexicographic) {
  // One side numeric, the other not: the comparison degrades to string
  // ordering instead of failing ("Silk" > "100" lexicographically).
  FieldCondition c{"data.contest.merchant_name", FieldCondition::Op::kGt, "100"};
  EXPECT_TRUE(c.evaluate(product_body(1, "Silk")));
  c.op = FieldCondition::Op::kLt;
  EXPECT_FALSE(c.evaluate(product_body(1, "Silk")));

  // Both numeric strings: numeric semantics win (9 < 10 numerically even
  // though "9" > "10" as strings).
  FieldCondition numeric{"data.contest.price", FieldCondition::Op::kLt, "10"};
  EXPECT_TRUE(numeric.evaluate(product_body(9)));
}

TEST(FieldCondition, ContainsOnNonStringScalars) {
  // kContains works on the scalar's textual form (price 1234 contains "23")
  // but fails conservatively on arrays/objects.
  FieldCondition c{"data.contest.price", FieldCondition::Op::kContains, "23"};
  EXPECT_TRUE(c.evaluate(product_body(1234)));
  c.value = "56";
  EXPECT_FALSE(c.evaluate(product_body(1234)));

  FieldCondition container{"data", FieldCondition::Op::kContains, "contest"};
  EXPECT_FALSE(container.evaluate(product_body(1234)));
}

TEST(FieldCondition, EmptyAndOvershootingPaths) {
  // An empty path is a configuration error and throws at parse time; a path
  // that descends *through* a scalar simply fails the condition.
  FieldCondition empty{"", FieldCondition::Op::kEq, "x"};
  EXPECT_THROW(empty.evaluate(product_body(1)), ParseError);
  FieldCondition deep{"data.contest.price.sub", FieldCondition::Op::kEq, "1"};
  EXPECT_FALSE(deep.evaluate(product_body(1)));
}

}  // namespace
}  // namespace appx::core
