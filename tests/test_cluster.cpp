// Cluster mode (DESIGN.md §5k): consistent-hash ring + membership units, and
// the multi-process kill/restart integration test — N `appx node` processes
// under wish-flow load, one killed and warm-restarted from its snapshot.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "apps/server.hpp"
#include "cluster/membership.hpp"
#include "cluster/ring.hpp"
#include "json/json.hpp"
#include "net/http_io.hpp"
#include "net/socket.hpp"
#include "util/byte_io.hpp"
#include "util/error.hpp"

namespace appx::cluster {
namespace {

// --- Ring units ------------------------------------------------------------------

TEST(Ring, RoutingIsDeterministic) {
  const Ring ring({"n0", "n1", "n2"});
  for (int i = 0; i < 64; ++i) {
    const std::string user = "user-" + std::to_string(i);
    EXPECT_EQ(ring.node_for(user), ring.node_for(user));
  }
}

TEST(Ring, SpreadsUsersAcrossNodes) {
  const Ring ring({"n0", "n1", "n2", "n3"});
  std::map<std::string, int> per_node;
  const int kUsers = 4000;
  for (int i = 0; i < kUsers; ++i) ++per_node[ring.node_for("user-" + std::to_string(i))];
  ASSERT_EQ(per_node.size(), 4u);  // nobody starves
  for (const auto& [node, count] : per_node) {
    // Vnode placement is hash-uniform, not perfect; 2x bounds are loose
    // enough to be stable across hash tweaks yet still catch gross skew.
    EXPECT_GT(count, kUsers / 8) << node;
    EXPECT_LT(count, kUsers / 2) << node;
  }
}

TEST(Ring, RemovingANodeOnlyMovesItsOwnUsers) {
  const Ring full({"n0", "n1", "n2", "n3"});
  const Ring reduced = full.without("n2");
  EXPECT_EQ(reduced.size(), 3u);
  int moved = 0, total = 2000;
  for (int i = 0; i < total; ++i) {
    const std::string user = "user-" + std::to_string(i);
    const std::string& before = full.node_for(user);
    const std::string& after = reduced.node_for(user);
    if (before == "n2") {
      // Displaced users land exactly on the advertised successor.
      EXPECT_EQ(after, full.successor("n2", user));
      ++moved;
    } else {
      EXPECT_EQ(after, before) << user;  // everyone else stays put
    }
  }
  EXPECT_GT(moved, 0);
}

TEST(Ring, SuccessorIsNeverTheDepartingNode) {
  const Ring ring({"a", "b", "c"});
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(ring.successor("b", "user-" + std::to_string(i)), "b");
  }
}

TEST(Ring, RejectsBadConfigurations) {
  EXPECT_THROW(Ring({"a", "a"}), InvalidArgumentError);
  EXPECT_THROW(Ring({""}), InvalidArgumentError);
  EXPECT_THROW(Ring({"a"}, 0), InvalidArgumentError);
  EXPECT_THROW(Ring(std::vector<std::string>{}).node_for("u"), InvalidStateError);
  EXPECT_THROW(Ring({"only"}).successor("only", "u"), InvalidStateError);
}

// --- Membership units ------------------------------------------------------------

constexpr const char* kMembershipJson = R"({
  "generation": 7,
  "nodes": [
    {"name": "n0", "host": "127.0.0.1", "port": 7100},
    {"name": "n1", "host": "127.0.0.1", "port": 7101},
    {"name": "n2", "host": "127.0.0.1", "port": 7102}
  ]
})";

TEST(Membership, ParsesAndRoundTrips) {
  const Membership m = Membership::parse(kMembershipJson);
  EXPECT_EQ(m.generation(), 7u);
  ASSERT_EQ(m.nodes().size(), 3u);
  const MemberNode* n1 = m.find("n1");
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->host, "127.0.0.1");
  EXPECT_EQ(n1->port, 7101);
  EXPECT_EQ(m.find("nope"), nullptr);

  const Membership again = Membership::parse(m.dump());
  EXPECT_EQ(again.generation(), m.generation());
  ASSERT_EQ(again.nodes().size(), m.nodes().size());
  EXPECT_EQ(again.find("n2")->port, 7102);
}

TEST(Membership, RingRoutesOverItsNodes) {
  const Membership m = Membership::parse(kMembershipJson);
  const Ring ring = m.ring();
  EXPECT_EQ(ring.size(), 3u);
  const std::string& owner = ring.node_for("some-user");
  EXPECT_NE(m.find(owner), nullptr);
}

TEST(Membership, RejectsStructuralProblems) {
  EXPECT_THROW(Membership::parse("{not json"), ParseError);
  EXPECT_THROW(Membership::parse(R"({"nodes":[]})"), InvalidArgumentError);
  EXPECT_THROW(Membership::parse(R"({"generation":1,"nodes":[]})"), InvalidArgumentError);
  EXPECT_THROW(Membership::parse(
                   R"({"generation":1,"nodes":[{"name":"a","host":"h","port":1},
                       {"name":"a","host":"h","port":2}]})"),
               InvalidArgumentError);
  EXPECT_THROW(Membership::parse(R"({"generation":1,"nodes":[{"name":"a","host":"h"}]})"),
               InvalidArgumentError);
  EXPECT_THROW(Membership::load("/nonexistent/membership.json"), Error);
}

// --- multi-process kill/restart integration --------------------------------------

#ifndef APPX_CLI_PATH
#define APPX_CLI_PATH ""
#endif

struct NodeProc {
  std::string name;
  pid_t pid = -1;
  int stdin_fd = -1;   // held open; closing it asks the node to exit
  int stdout_fd = -1;  // READY line + logs
  std::uint16_t port = 0;
};

// Spawn `appx node` and wait for its READY line. Returns pid -1 on failure.
NodeProc spawn_node(const std::string& name, const std::string& membership_path,
                    const std::string& state_path, std::uint16_t expected_port) {
  NodeProc node;
  node.name = name;
  int to_child[2], from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) return node;
  const pid_t pid = fork();
  if (pid < 0) return node;
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    execl(APPX_CLI_PATH, "appx", "node", "wish", "--name", name.c_str(), "--membership",
          membership_path.c_str(), "--state", state_path.c_str(), "--snapshot-ms", "200",
          "--shards", "2", static_cast<char*>(nullptr));
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  node.pid = pid;
  node.stdin_fd = to_child[1];
  node.stdout_fd = from_child[0];

  // Wait for "READY ... proxy=<port>" (analysis of the app model takes a
  // moment on a loaded CI box).
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    char chunk[256];
    const ssize_t n = read(node.stdout_fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // child died or closed stdout
    buffer.append(chunk, static_cast<std::size_t>(n));
    const auto ready = buffer.find("READY ");
    if (ready == std::string::npos) continue;
    const auto eol = buffer.find('\n', ready);
    if (eol == std::string::npos) continue;
    const auto at = buffer.find("proxy=", ready);
    if (at != std::string::npos) {
      node.port = static_cast<std::uint16_t>(std::stoi(buffer.substr(at + 6)));
    }
    break;
  }
  if (node.port == 0) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    node.pid = -1;
    return node;
  }
  EXPECT_EQ(node.port, expected_port);
  // Drain the child's stdout in the background so node logging can never
  // fill the pipe and wedge the process.
  std::thread([fd = node.stdout_fd] {
    char sink[1024];
    while (read(fd, sink, sizeof(sink)) > 0) {
    }
  }).detach();
  return node;
}

void stop_node(NodeProc& node) {
  if (node.pid < 0) return;
  close(node.stdin_fd);  // EOF on stdin: clean shutdown (final snapshot)
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (waitpid(node.pid, nullptr, WNOHANG) == node.pid) {
      node.pid = -1;
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  kill(node.pid, SIGKILL);
  waitpid(node.pid, nullptr, 0);
  node.pid = -1;
}

void kill_node(NodeProc& node) {
  if (node.pid < 0) return;
  kill(node.pid, SIGKILL);  // a crash, not a shutdown: no final snapshot
  waitpid(node.pid, nullptr, 0);
  close(node.stdin_fd);
  node.pid = -1;
}

// One request over a fresh loopback connection (nodes restart mid-test, so
// per-call connections keep the client trivially correct).
http::Response send_one(std::uint16_t port, http::Request request, const std::string& user) {
  net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port, seconds(5));
  stream.set_read_timeout(seconds(10));
  stream.set_write_timeout(seconds(10));
  if (!user.empty()) request.headers.set("X-Appx-User", user);
  net::write_request(stream, request);
  net::HttpReader reader(&stream);
  const auto response = reader.read_response();
  if (!response) throw Error("cluster test: connection closed by node");
  return *response;
}

bool served_from_cache(const http::Response& response) {
  return response.headers.get("X-Appx-Cache").value_or("") == "hit";
}

struct PrefetchCounters {
  std::int64_t issued = 0;
  std::int64_t resolved = 0;  // responses + failures + dropped
};

PrefetchCounters scrape_prefetch_counters(std::uint16_t port) {
  http::Request req;
  req.method = "GET";
  req.uri.path = "/appx/metrics.json";
  req.headers.set("Host", "127.0.0.1");
  const auto resp = send_one(port, req, "");
  const json::Value root = json::parse(resp.body);
  const json::Object& counters = root.as_object().at("counters").as_object();
  const auto counter = [&](const char* name) -> std::int64_t {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.as_int();
  };
  PrefetchCounters out;
  out.issued = counter("appx_prefetch_issued_total");
  out.resolved = counter("appx_prefetch_responses_total") +
                 counter("appx_prefetch_failures_total") +
                 counter("appx_prefetch_dropped_total");
  return out;
}

class ClusterIntegration : public ::testing::Test {
 protected:
  ClusterIntegration()
      : spec_(apps::make_wish()), origin_(&spec_) {}

  http::Request feed_request() const {
    http::Request req;
    req.method = "POST";
    req.uri = http::Uri::parse("https://" + spec_.endpoint("feed").host + "/api/get-feed");
    req.uri.add_query_param("offset", "0");
    req.uri.add_query_param("count", "30");
    req.headers.set("Cookie", "c0");
    req.headers.set("User-Agent", "ua");
    req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
    return req;
  }

  // The detail request the app would issue for feed item `index`, derived
  // from a local OriginServer twin (deterministic, same spec as the nodes').
  http::Request detail_request(std::size_t index) {
    http::Request req;
    req.method = "POST";
    req.uri = http::Uri::parse("https://" + spec_.endpoint("detail").host + "/product/get");
    req.headers.set("Cookie", "c0");
    req.headers.set("User-Agent", "ua");
    const auto feed_body = json::parse(origin_.serve(feed_request()).body);
    http::FormFields fields;
    for (const apps::FieldSpec& f : spec_.endpoint("detail").fields) {
      if (f.loc != core::FieldLocation::kBody || f.conditional) continue;
      if (f.value.kind == apps::ValueSpec::Kind::kDep) {
        std::string path = f.value.dep_path;
        const auto star = path.find("[*]");
        if (star != std::string::npos) {
          path.replace(star, 3, "[" + std::to_string(index) + "]");
        }
        fields.emplace_back(f.name,
                            json::Path(path).resolve_first(feed_body)->scalar_to_string());
      } else if (f.value.kind == apps::ValueSpec::Kind::kEnv) {
        fields.emplace_back(f.name, spec_.env_defaults.at(f.value.text));
      } else {
        fields.emplace_back(f.name, f.value.text);
      }
    }
    req.set_form_fields(fields);
    return req;
  }

  // Feed + first detail: teaches the node this user's run-time values.
  void teach(std::uint16_t port, const std::string& user) {
    ASSERT_TRUE(send_one(port, feed_request(), user).ok());
    ASSERT_TRUE(send_one(port, detail_request(0), user).ok());
  }

  // Re-arm with a feed, wait for the node's prefetch pipeline to drain, then
  // count how many sibling details are served from cache.
  double hit_ratio(std::uint16_t port, const std::string& user) {
    const PrefetchCounters before = scrape_prefetch_counters(port);
    if (!send_one(port, feed_request(), user).ok()) return 0.0;
    // Deterministic, not a fixed sleep (sanitized CI runs are slow): wait
    // until this feed's prefetches were issued AND everything issued has
    // resolved. Other users' concurrent load can only push `issued` higher,
    // which just makes the wait stricter.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (std::chrono::steady_clock::now() < deadline) {
      const PrefetchCounters now = scrape_prefetch_counters(port);
      if (now.issued > before.issued && now.issued == now.resolved) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    int hits = 0;
    const int kProbes = 4;
    for (int i = 0; i < kProbes; ++i) {
      const auto resp = send_one(port, detail_request(1 + static_cast<std::size_t>(i)), user);
      if (served_from_cache(resp)) ++hits;
    }
    return static_cast<double>(hits) / kProbes;
  }

  // Fleet-wide prefetch balance: on every node, issued == responses +
  // failures + dropped once in-flight work drains.
  ::testing::AssertionResult balance_holds(const std::vector<NodeProc*>& nodes) {
    for (const NodeProc* node : nodes) {
      PrefetchCounters last;
      for (int attempt = 0; attempt < 50; ++attempt) {
        last = scrape_prefetch_counters(node->port);
        if (last.issued == last.resolved) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      if (last.issued != last.resolved) {
        return ::testing::AssertionFailure()
               << node->name << ": issued=" << last.issued << " resolved=" << last.resolved;
      }
    }
    return ::testing::AssertionSuccess();
  }

  apps::AppSpec spec_;
  apps::OriginServer origin_;
};

TEST_F(ClusterIntegration, KillRestartWarmRecoveryUnderLoad) {
  if (std::string(APPX_CLI_PATH).empty() || access(APPX_CLI_PATH, X_OK) != 0) {
    GTEST_SKIP() << "appx CLI not built";
  }

  // Workspace + membership with three pre-reserved loopback ports.
  char dir_template[] = "/tmp/appx-cluster-XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);
  std::vector<std::uint16_t> ports;
  {
    std::vector<std::unique_ptr<net::TcpListener>> reserved;
    for (int i = 0; i < 3; ++i) reserved.push_back(std::make_unique<net::TcpListener>(0));
    for (auto& l : reserved) ports.push_back(l->port());
  }
  std::string membership_json = R"({"generation": 1, "nodes": [)";
  for (int i = 0; i < 3; ++i) {
    if (i > 0) membership_json += ",";
    membership_json += R"({"name": "n)" + std::to_string(i) +
                       R"(", "host": "127.0.0.1", "port": )" + std::to_string(ports[i]) + "}";
  }
  membership_json += "]}";
  const std::string membership_path = dir + "/membership.json";
  write_file(membership_path,
             std::vector<std::uint8_t>(membership_json.begin(), membership_json.end()));
  const Membership membership = Membership::parse(membership_json);
  const Ring ring = membership.ring();

  std::map<std::string, NodeProc> nodes;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "n" + std::to_string(i);
    nodes[name] = spawn_node(name, membership_path, dir + "/" + name + ".snap",
                             membership.find(name)->port);
    ASSERT_GE(nodes[name].pid, 0) << name << " failed to start";
  }
  const auto port_of = [&](const std::string& user) {
    return nodes[ring.node_for(user)].port;
  };

  // Enough users that every node owns at least two.
  std::vector<std::string> users;
  std::map<std::string, int> owned;
  for (int i = 0; owned.size() < 3 || i < 12; ++i) {
    ASSERT_LT(i, 200);
    const std::string user = "user-" + std::to_string(i);
    users.push_back(user);
    ++owned[ring.node_for(user)];
  }
  const std::string victim = "n1";
  std::vector<std::string> victim_users, other_users;
  for (const std::string& user : users) {
    (ring.node_for(user) == victim ? victim_users : other_users).push_back(user);
  }
  ASSERT_GE(victim_users.size(), 2u);

  // Phase 1: teach every user, then measure the pre-kill hit ratio.
  for (const std::string& user : users) teach(port_of(user), user);
  double pre_kill = 0.0;
  for (const std::string& user : victim_users) pre_kill += hit_ratio(port_of(user), user);
  pre_kill /= static_cast<double>(victim_users.size());
  ASSERT_GT(pre_kill, 0.0) << "fixture broken: no prefetch hits before the kill";

  // Give the victim's 200ms snapshot cadence a couple of beats so its last
  // dump includes everything phase 1 taught it.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));

  // Phase 2: open-loop load on the survivors' users while n1 is killed and
  // warm-restarted from its snapshot.
  std::atomic<bool> stop_load{false};
  std::thread load([&] {
    std::size_t i = 0;
    while (!stop_load.load()) {
      const std::string& user = other_users[i++ % other_users.size()];
      try {
        send_one(port_of(user), feed_request(), user);
        send_one(port_of(user), detail_request(i % 6), user);
      } catch (const Error&) {
        // Transient refusals while the fleet churns are the load's problem,
        // not the invariant's.
      }
    }
  });

  kill_node(nodes[victim]);
  nodes[victim] = spawn_node(victim, membership_path, dir + "/" + victim + ".snap",
                             membership.find(victim)->port);
  ASSERT_GE(nodes[victim].pid, 0) << "victim failed to restart";

  // Phase 3: recovery. No re-teaching — the restored wildcards/flows must
  // drive prefetching on the first feed after restart.
  double post_restart = 0.0;
  for (const std::string& user : victim_users) {
    post_restart += hit_ratio(nodes[victim].port, user);
  }
  post_restart /= static_cast<double>(victim_users.size());
  stop_load.store(true);
  load.join();
  EXPECT_GE(post_restart, 0.9 * pre_kill)
      << "cold-learning storm: post-restart " << post_restart << " vs pre-kill " << pre_kill;

  // Phase 4: ring handoff — export a survivor's user to another node over
  // the admin surface and verify the importer serves it warm.
  const std::string& mover = other_users.front();
  const std::string owner = ring.node_for(mover);
  const std::string target = owner == "n0" ? "n2" : "n0";
  http::Request export_req;
  export_req.method = "GET";
  export_req.uri.path = "/appx/export";
  export_req.uri.add_query_param("user", mover);
  export_req.headers.set("Host", "127.0.0.1");
  const auto exported = send_one(nodes[owner].port, export_req, "");
  ASSERT_EQ(exported.status, 200);
  http::Request import_req;
  import_req.method = "POST";
  import_req.uri.path = "/appx/import";
  import_req.headers.set("Host", "127.0.0.1");
  import_req.body = std::string(exported.body.view());
  EXPECT_EQ(send_one(nodes[target].port, import_req, "").status, 200);
  EXPECT_GT(hit_ratio(nodes[target].port, mover), 0.0);

  // Phase 5: the fleet-wide prefetch balance invariant held throughout —
  // each node's counters must reconcile once in-flight prefetches drain.
  std::vector<NodeProc*> all;
  for (auto& [_, node] : nodes) all.push_back(&node);
  EXPECT_TRUE(balance_holds(all));

  for (auto& [_, node] : nodes) stop_node(node);
}

}  // namespace
}  // namespace appx::cluster
