// Unit tests for the util subsystem: rng, strings, hash, stats, byte_io.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string_view>
#include <set>
#include <thread>
#include <vector>

#include "util/arena.hpp"
#include "util/byte_io.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace appx {
namespace {

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversFullRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), InvalidArgumentError);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsAboutHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbabilityApproximation) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), InvalidArgumentError);
  EXPECT_THROW(rng.exponential(-1.0), InvalidArgumentError);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ZipfSkewPrefersLowRanks) {
  Rng rng(19);
  int first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(100, 1.2) == 0) ++first;
  }
  // With s=1.2 the top rank should draw a clearly dominant share.
  EXPECT_GT(first, n / 10);
}

TEST(Rng, ZipfZeroSkewIsUniformish) {
  Rng rng(23);
  int first = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(10, 0.0) == 0) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.1, 0.02);
}

TEST(Rng, IndexThrowsOnEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), InvalidArgumentError);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

// --- strings -----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = strings::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitByString) {
  const auto parts = strings::split("x::y::z", "::");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "z");
}

TEST(Strings, SplitEmptySeparatorThrows) {
  EXPECT_THROW(strings::split("abc", ""), InvalidArgumentError);
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(strings::join(parts, "-"), "a-b-c");
  EXPECT_EQ(strings::join({}, "-"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(strings::trim("  hi \t\n"), "hi");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
  EXPECT_EQ(strings::trim("x"), "x");
}

TEST(Strings, StartsEndsContains) {
  EXPECT_TRUE(strings::starts_with("foobar", "foo"));
  EXPECT_FALSE(strings::starts_with("fo", "foo"));
  EXPECT_TRUE(strings::ends_with("foobar", "bar"));
  EXPECT_FALSE(strings::ends_with("ar", "bar"));
  EXPECT_TRUE(strings::contains("foobar", "oba"));
  EXPECT_FALSE(strings::contains("foobar", "baz"));
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(strings::to_lower("AbC-9"), "abc-9");
  EXPECT_EQ(strings::to_upper("AbC-9"), "ABC-9");
  EXPECT_TRUE(strings::iequals("Content-Type", "content-type"));
  EXPECT_FALSE(strings::iequals("a", "ab"));
}

TEST(Strings, ToInt) {
  EXPECT_EQ(strings::to_int("42").value(), 42);
  EXPECT_EQ(strings::to_int("-17").value(), -17);
  EXPECT_EQ(strings::to_int(" 8 ").value(), 8);
  EXPECT_FALSE(strings::to_int("4x").has_value());
  EXPECT_FALSE(strings::to_int("").has_value());
}

TEST(Strings, ToDouble) {
  EXPECT_DOUBLE_EQ(strings::to_double("2.5").value(), 2.5);
  EXPECT_FALSE(strings::to_double("2.5f").has_value());
}

TEST(Strings, UrlEncodeDecodeRoundTrip) {
  const std::string original = "a b&c=d/%?#";
  const std::string encoded = strings::url_encode(original);
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  EXPECT_EQ(strings::url_decode(encoded), original);
}

TEST(Strings, UrlDecodePlusAsSpace) { EXPECT_EQ(strings::url_decode("a+b"), "a b"); }

TEST(Strings, UrlDecodeRejectsBadEscape) {
  EXPECT_THROW(strings::url_decode("%zz"), ParseError);
  EXPECT_THROW(strings::url_decode("%2"), ParseError);
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(strings::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(strings::replace_all("none", "x", "y"), "none");
  EXPECT_THROW(strings::replace_all("a", "", "y"), InvalidArgumentError);
}

TEST(Strings, ToHex) {
  const unsigned char bytes[] = {0x00, 0xff, 0x1a};
  EXPECT_EQ(strings::to_hex(bytes, 3), "00ff1a");
  EXPECT_EQ(strings::to_hex(std::uint64_t{0x0102030405060708ULL}), "0102030405060708");
}

// --- hash ----------------------------------------------------------------------

TEST(Hash, Fnv1aIsStable) {
  // Known FNV-1a 64-bit test vector.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, DifferentInputsDiffer) { EXPECT_NE(fnv1a("abc"), fnv1a("abd")); }

TEST(Hash, ShortDigestLength) {
  EXPECT_EQ(short_digest("hello").size(), 12u);
  EXPECT_EQ(short_digest("hello", 6).size(), 6u);
  EXPECT_EQ(short_digest("hello"), short_digest("hello"));
  EXPECT_NE(short_digest("hello"), short_digest("world"));
}

// --- stats ----------------------------------------------------------------------

TEST(SampleSet, BasicMoments) {
  SampleSet s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(SampleSet, EmptyThrows) {
  SampleSet s;
  EXPECT_THROW(s.mean(), InvalidStateError);
  EXPECT_THROW(s.percentile(0.5), InvalidStateError);
}

TEST(SampleSet, PercentileInterpolation) {
  SampleSet s;
  s.add_all({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 37.0);
}

TEST(SampleSet, PercentileRejectsOutOfRangeQ) {
  SampleSet s;
  s.add(1);
  EXPECT_THROW(s.percentile(-0.1), InvalidArgumentError);
  EXPECT_THROW(s.percentile(1.1), InvalidArgumentError);
}

TEST(SampleSet, PercentileAfterAppend) {
  SampleSet s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.median(), 10);
  s.add(20);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(s.median(), 15);
}

TEST(SampleSet, CdfIsMonotone) {
  SampleSet s;
  s.add_all({3, 1, 2, 2, 5});
  const auto cdf = s.cdf();
  ASSERT_EQ(cdf.size(), 4u);  // distinct values
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
}

TEST(RunningAverage, FirstValueTakenAsIs) {
  RunningAverage avg(0.5);
  EXPECT_FALSE(avg.has_value());
  avg.add(10);
  EXPECT_DOUBLE_EQ(avg.value(), 10);
  avg.add(20);
  EXPECT_DOUBLE_EQ(avg.value(), 15);
}

TEST(RunningAverage, RejectsBadAlpha) {
  EXPECT_THROW(RunningAverage(0.0), InvalidArgumentError);
  EXPECT_THROW(RunningAverage(1.5), InvalidArgumentError);
}

TEST(RatioTracker, LaplaceSmoothedRate) {
  RatioTracker t;
  EXPECT_DOUBLE_EQ(t.rate(), 0.5);  // prior
  t.record(true);
  t.record(true);
  t.record(false);
  EXPECT_DOUBLE_EQ(t.rate(), 3.0 / 5.0);
  EXPECT_EQ(t.hits(), 2u);
  EXPECT_EQ(t.total(), 3u);
}

// --- units ---------------------------------------------------------------------

TEST(Units, Conversions) {
  EXPECT_EQ(milliseconds(1.5), 1500);
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(minutes(1), 60'000'000);
  EXPECT_DOUBLE_EQ(to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_seconds(2'000'000), 2.0);
  EXPECT_EQ(kilobytes(1), 1024);
}

TEST(Units, TransmissionDelay) {
  // 25 Mbps, 315 KB -> about 103 ms.
  const Duration d = transmission_delay(kilobytes(315), mbps(25));
  EXPECT_NEAR(to_ms(d), 103.2, 0.5);
  EXPECT_EQ(transmission_delay(0, mbps(25)), 0);
}

// --- byte_io --------------------------------------------------------------------

TEST(ByteIo, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello \x01 world");
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello \x01 world");
  EXPECT_TRUE(r.at_end());
}

TEST(ByteIo, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_THROW(r.u32(), ParseError);
}

TEST(ByteIo, TruncatedStringThrows) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes, provides none
  ByteReader r(w.data());
  EXPECT_THROW(r.str(), ParseError);
}

TEST(ByteIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/appx_byteio_test.bin";
  ByteWriter w;
  w.str("persisted");
  write_file(path, w.data());
  const auto data = read_file(path);
  ByteReader r(data);
  EXPECT_EQ(r.str(), "persisted");
  std::remove(path.c_str());
}

TEST(ByteIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/appx/file.bin"), Error);
}

// --- Logger -------------------------------------------------------------------------

// Restores the global logger configuration on scope exit so tests compose.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(LogLevel level) : saved_level_(Logger::level()) {
    Logger::set_level(level);
    Logger::set_sink([this](LogLevel, const std::string& line) {
      const std::lock_guard<std::mutex> lock(mutex_);
      lines_.push_back(line);
    });
  }
  ~ScopedLogCapture() {
    Logger::set_sink(nullptr);
    Logger::set_level(saved_level_);
  }

  std::vector<std::string> lines() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  LogLevel saved_level_;
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

TEST(Logger, SinkReceivesFormattedLine) {
  ScopedLogCapture capture(LogLevel::kInfo);
  log_info("util.test") << "hello " << 42;
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("[INFO] util.test: hello 42"), std::string::npos) << lines[0];
  // Monotonic timestamp and thread id prefixes are present.
  EXPECT_EQ(lines[0].front(), '[');
  EXPECT_NE(lines[0].find("[T"), std::string::npos);
}

TEST(Logger, LevelFiltersRecords) {
  ScopedLogCapture capture(LogLevel::kWarn);
  log_debug("util.test") << "invisible";
  log_warn("util.test") << "visible";
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("visible"), std::string::npos);
}

TEST(Logger, ThreadIdsAreDenseAndStable) {
  const int own = Logger::thread_id();
  EXPECT_GE(own, 1);
  EXPECT_EQ(Logger::thread_id(), own);  // stable within a thread
  int other = 0;
  std::thread t([&] { other = Logger::thread_id(); });
  t.join();
  EXPECT_NE(other, own);
}

TEST(Logger, ElapsedIsMonotonic) {
  const auto a = Logger::elapsed_us();
  const auto b = Logger::elapsed_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(Logger, ConcurrentWritersNeverInterleave) {
  ScopedLogCapture capture(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        log_info("util.race") << "writer=" << t << " line=" << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kThreads * kLines));
  for (const std::string& line : lines) {
    // Each record arrived whole: exactly one writer tag, suffix intact.
    EXPECT_NE(line.find("util.race: writer="), std::string::npos) << line;
    EXPECT_EQ(line.find("writer="), line.rfind("writer=")) << line;
  }
}

// --- Arena -------------------------------------------------------------------

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  util::Arena arena(64);
  auto* a = static_cast<char*>(arena.alloc(10, 1));
  auto* b = static_cast<char*>(arena.alloc(10, 1));
  EXPECT_NE(a, b);
  std::memset(a, 0xaa, 10);
  std::memset(b, 0xbb, 10);
  EXPECT_EQ(static_cast<unsigned char>(a[9]), 0xaa);  // no overlap

  auto* aligned = arena.alloc(24, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(aligned) % 16, 0u);
}

TEST(Arena, GrowsAcrossBlocksAndRetainsCapacityOnReset) {
  util::Arena arena(64);
  for (int i = 0; i < 50; ++i) arena.alloc(16);
  const std::size_t blocks = arena.block_count();
  const std::size_t capacity = arena.capacity();
  EXPECT_GT(blocks, 1u);
  EXPECT_GE(capacity, 50u * 16u);

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), capacity);

  // A warm arena absorbs the same allocation pattern without growing.
  for (int i = 0; i < 50; ++i) arena.alloc(16);
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.capacity(), capacity);
}

TEST(Arena, OversizedRequestGetsDedicatedBlock) {
  util::Arena arena(64);
  auto* big = static_cast<char*>(arena.alloc(1 << 20));
  ASSERT_NE(big, nullptr);
  big[0] = 'x';
  big[(1 << 20) - 1] = 'y';  // whole range writable
  EXPECT_GE(arena.capacity(), static_cast<std::size_t>(1 << 20));
}

TEST(Arena, CopyPlacesBytesThatSurviveFurtherAllocation) {
  util::Arena arena(32);
  const std::string_view copied = arena.copy("hello arena");
  for (int i = 0; i < 100; ++i) arena.alloc(64);  // force several new blocks
  EXPECT_EQ(copied, "hello arena");
}

TEST(Arena, ResetRecyclesLargestBlockFirst) {
  util::Arena arena(64);
  // Grow through doubling blocks, then reset: the next request's first
  // allocations must land in recycled capacity, not new blocks.
  for (int i = 0; i < 200; ++i) arena.alloc(32);
  arena.reset();
  const std::size_t blocks = arena.block_count();
  arena.alloc(1024);
  EXPECT_EQ(arena.block_count(), blocks);
}

}  // namespace
}  // namespace appx
